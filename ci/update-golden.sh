#!/bin/sh
# Regenerate the pinned golden checksums for the fig3 CI smoke runs.
#
# The smoke run (abilene, 3 trials, seed 11) is bit-deterministic, so its
# reliability-curve CSV can be pinned — once per slice strategy: the
# default perturbed-spf gate plus the `tree` and `arc` strategy gates.
# CI verifies each build against ci/golden/fig3_abilene_s11*.sha256
# whenever the file is non-empty. Run this script after any *intentional*
# change to the curves (new semantics, new RNG stream, changed sweep,
# changed slice construction) and commit the result; an unintentional
# change will then fail the `build and test` job.
set -eu
cd "$(dirname "$0")/.."

out=ci-golden-tmp
rm -rf "$out"
cargo run --release -p splice-bench --bin splice-lab -- \
    run fig3_reliability --topology abilene --trials 3 --seed 11 --out "$out"
(cd "$out" && sha256sum fig3_reliability_abilene_union.csv) \
    > ci/golden/fig3_abilene_s11.sha256
rm -rf "$out"

for s in tree arc; do
    rm -rf "$out"
    cargo run --release -p splice-bench --bin splice-lab -- \
        run fig3_reliability --topology abilene --trials 3 --seed 11 \
        --strategy "$s" --out "$out"
    (cd "$out" && sha256sum fig3_reliability_abilene_union.csv) \
        > "ci/golden/fig3_abilene_s11_$s.sha256"
    rm -rf "$out"
done

echo "pinned:"
cat ci/golden/fig3_abilene_s11.sha256 \
    ci/golden/fig3_abilene_s11_tree.sha256 \
    ci/golden/fig3_abilene_s11_arc.sha256
