//! Quickstart: build path splicing over a real backbone, break a link,
//! and watch the forwarding bits route around it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use path_splicing::graph::EdgeMask;
use path_splicing::splicing::prelude::*;
use path_splicing::topology::abilene::abilene;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A topology: the 11-node Abilene backbone.
    let topo = abilene();
    let g = topo.graph();
    println!(
        "topology: {} ({} nodes, {} links)",
        topo.name,
        topo.node_count(),
        topo.link_count()
    );

    // 2. Five slices: slice 0 is plain shortest paths; slices 1..5 come
    //    from degree-based Weight(0,3) link-weight perturbations (§3.1).
    let cfg = SplicingConfig::degree_based(5, 0.0, 3.0);
    let splicing = Splicing::build(&g, &cfg, 3);
    println!("built {} slices", splicing.k());

    let src = topo.node_by_name("Seattle").unwrap();
    let dst = topo.node_by_name("New York").unwrap();

    // 3. Forward a packet along the default slice. The header pins the
    //    packet to slice 0 (Algorithm 1 reads 2 bits per hop).
    let mask = EdgeMask::all_up(g.edge_count());
    let fwd = Forwarder::new(&splicing, &g, &mask);
    let out = fwd.forward(
        src,
        dst,
        ForwardingBits::stay_in_slice(0, splicing.k()),
        &ForwarderOptions::default(),
    );
    let trace = match out {
        ForwardingOutcome::Delivered(t) => t,
        other => panic!("clean network must deliver: {other:?}"),
    };
    print!("default path : ");
    print_path(&topo, &trace);

    // 4. Fail the first link on that path.
    let broken = trace.steps[0].edge;
    let mask = EdgeMask::from_failed(g.edge_count(), &[broken]);
    println!(
        "failing link  : {} - {}",
        topo.node_name(g.edge(broken).u),
        topo.node_name(g.edge(broken).v)
    );
    let fwd = Forwarder::new(&splicing, &g, &mask);
    let out = fwd.forward(
        src,
        dst,
        ForwardingBits::stay_in_slice(0, splicing.k()),
        &ForwarderOptions::default(),
    );
    println!("slice 0 alone : {}", outcome_name(&out));

    // 5. End-system recovery (§4.3): re-toss the forwarding bits — each
    //    hop switches slice with probability 0.5 — up to five times.
    let mut rng = StdRng::seed_from_u64(7);
    let recovery = EndSystemRecovery::default();
    let result = recovery.recover(&fwd, src, dst, 0, &ForwarderOptions::default(), &mut rng);
    assert!(result.recovered, "splicing should route around one failure");
    println!(
        "recovered in  : {} trial(s) by randomizing the forwarding bits",
        result.trials
    );
    let spliced = result.delivery.unwrap();
    print!("spliced path  : ");
    print_path(&topo, &spliced);
    println!(
        "stretch       : {:.2}x latency, {} -> {} hops, slices used: {}",
        spliced.length(&topo.latencies()) / trace.length(&topo.latencies()),
        trace.hop_count(),
        spliced.hop_count(),
        spliced.slices_used()
    );
}

fn print_path(topo: &path_splicing::topology::Topology, trace: &Trace) {
    let names: Vec<&str> = trace
        .steps
        .iter()
        .map(|s| topo.node_name(s.node))
        .chain(std::iter::once(topo.node_name(trace.last)))
        .collect();
    println!("{}", names.join(" -> "));
}

fn outcome_name(out: &ForwardingOutcome) -> &'static str {
    match out {
        ForwardingOutcome::Delivered(_) => "delivered",
        ForwardingOutcome::LinkDown { .. } => "dropped at the failed link",
        ForwardingOutcome::DeadEnd(_) => "dead end",
        ForwardingOutcome::PersistentLoop(_) => "persistent loop",
        ForwardingOutcome::TtlExceeded(_) => "ttl exceeded",
    }
}
