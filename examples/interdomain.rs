//! Interdomain splicing (§5): BGP keeps the k best valley-free routes per
//! destination; the forwarding bits choose among them, surviving inter-AS
//! link failures without waiting for BGP to reconverge.
//!
//! ```text
//! cargo run --release --example interdomain
//! ```

use path_splicing::bgp::asgraph::{AsGraph, AsId};
use path_splicing::bgp::bgp_sim::BgpSim;
use path_splicing::bgp::splice_bgp::{spliced_reachability, AsLinkFailures};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A small internet: 3 tier-1s, 8 mid-tier providers, 25 stubs.
    let g = AsGraph::internet_like(3, 8, 25, 7);
    println!(
        "AS graph: {} ASes, {} inter-AS links",
        g.as_count(),
        g.link_count()
    );

    let dest = AsId(20); // some stub AS hosting the content
    for k in [1usize, 2, 3] {
        let sim = BgpSim::converge(&g, dest, k);
        println!(
            "\nk = {k}: converged in {} rounds; route counts per AS (sample):",
            sim.rounds
        );
        for a in [AsId(0), AsId(5), AsId(30)] {
            let routes = &sim.ribs[a.index()];
            let desc: Vec<String> = routes
                .iter()
                .map(|r| {
                    format!(
                        "[{}]",
                        r.path
                            .iter()
                            .map(|x| x.0.to_string())
                            .collect::<Vec<_>>()
                            .join(" ")
                    )
                })
                .collect();
            println!("  AS{:<3} -> AS{}: {}", a.0, dest.0, desc.join("  "));
        }

        // Storm: 10% of inter-AS links fail; who still delivers with the
        // routes already installed?
        let mut survived = 0usize;
        let trials: usize = 300;
        for t in 0..trials as u64 {
            let mut rng = StdRng::seed_from_u64(t);
            let failures = AsLinkFailures::sample(&g, 0.10, &mut rng);
            let reach = spliced_reachability(&g, &sim, k, &failures);
            survived += reach.iter().filter(|&&r| r).count() - 1; // minus dest
        }
        let frac = survived as f64 / (trials * (g.as_count() - 1)) as f64;
        println!(
            "  under 10% link failures: {:.1}% of ASes still reach AS{} pre-reconvergence",
            100.0 * frac,
            dest.0
        );
    }
    println!("\nmore installed routes -> more ASes ride out failures on stale state alone.");
}
