//! Multipath transfer (§5 "other applications"): an end host sets the
//! splicing bits to use several paths *simultaneously*, pushing
//! throughput toward the underlying graph's capacity instead of a single
//! shortest path's.
//!
//! ```text
//! cargo run --release --example multipath_transfer
//! ```

use path_splicing::graph::maxflow::{edge_connectivity_st, succ_connectivity};
use path_splicing::graph::EdgeMask;
use path_splicing::splicing::prelude::*;
use path_splicing::topology::geant::geant;

fn main() {
    let topo = geant();
    let g = topo.graph();
    println!(
        "topology: {} ({} nodes, {} links)",
        topo.name,
        topo.node_count(),
        topo.link_count()
    );

    let src = topo.node_by_name("pt").unwrap(); // Lisbon
    let dst = topo.node_by_name("se").unwrap(); // Stockholm
    let capacity = edge_connectivity_st(&g, src, dst);
    println!("pt -> se: the graph supports {capacity} edge-disjoint paths (unit capacities)");

    let up = EdgeMask::all_up(g.edge_count());
    println!("\n  k | parallel paths usable via splicing bits");
    println!("  --+----------------------------------------");
    for k in 1..=8usize {
        let splicing = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), 11);
        let succ = splicing.successors_toward(dst, k, &up);
        let usable = succ_connectivity(&succ, src, dst);
        let bar = "#".repeat(usable);
        println!("  {k} | {usable} {bar}");
    }
    println!("\nwith one slice a host gets exactly one path; adding slices exposes");
    println!("disjoint paths it can drive concurrently by varying the header bits,");
    println!("approaching the graph capacity of {capacity}.");

    // Demonstrate two concrete disjoint spliced paths.
    let k = 8;
    let splicing = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), 11);
    let fwd = Forwarder::new(&splicing, &g, &up);
    let mut seen_paths: Vec<Vec<String>> = Vec::new();
    for slice in 0..k {
        let out = fwd.forward(
            src,
            dst,
            ForwardingBits::stay_in_slice(slice, k),
            &ForwarderOptions::default(),
        );
        if let ForwardingOutcome::Delivered(tr) = out {
            let names: Vec<String> = tr
                .steps
                .iter()
                .map(|s| topo.node_name(s.node).to_string())
                .chain(std::iter::once(topo.node_name(tr.last).to_string()))
                .collect();
            if !seen_paths.contains(&names) {
                seen_paths.push(names);
            }
        }
    }
    println!("\ndistinct per-slice paths pt -> se:");
    for p in &seen_paths {
        println!("  {}", p.join(" -> "));
    }
}
