//! Failure storm on the Sprint backbone: packet-level simulation of a
//! burst of link failures, comparing plain routing, end-system recovery,
//! and in-network deflection — the scenario the paper's introduction
//! motivates ("an Internet that is always on in the face of fiber cuts").
//!
//! ```text
//! cargo run --release --example failure_storm
//! ```

use bytes::Bytes;
use path_splicing::dataplane::{Packet, RouterConfig, SimNetwork};
use path_splicing::sim::failure::FailureModel;
use path_splicing::splicing::prelude::*;
use path_splicing::topology::sprint::sprint;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let topo = sprint();
    let g = topo.graph();
    println!(
        "topology: {} ({} nodes, {} links)",
        topo.name,
        topo.node_count(),
        topo.link_count()
    );

    let k = 5;
    let splicing = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), 42);

    // A storm: each link fails independently with 8% probability.
    let mut rng = StdRng::seed_from_u64(2008);
    let mask = FailureModel::IidLinks { p: 0.08 }.sample(&g, &mut rng);
    println!(
        "storm: {} of {} links down",
        mask.failed_count(),
        g.edge_count()
    );

    // Three deployments of the same network.
    let plain_cfg = RouterConfig {
        splicing_enabled: false,
        network_recovery: false,
    };
    let deflect_cfg = RouterConfig {
        splicing_enabled: true,
        network_recovery: true,
    };
    let mut plain = SimNetwork::new(g.clone(), &splicing, topo.latencies(), plain_cfg);
    let mut deflecting = SimNetwork::new(g.clone(), &splicing, topo.latencies(), deflect_cfg);
    for e in mask.failed_edges() {
        plain.fail_link(e);
        deflecting.fail_link(e);
    }
    let fwd = Forwarder::new(&splicing, &g, &mask);
    let recovery = EndSystemRecovery::default();

    let (mut total, mut plain_ok, mut end_ok, mut net_ok) = (0u32, 0u32, 0u32, 0u32);
    let mut end_trials = 0u32;
    for s in g.nodes() {
        for t in g.nodes() {
            if s == t {
                continue;
            }
            total += 1;
            // Plain destination-based routing (legacy routers, slice 0).
            let pkt = Packet::plain(s, t, 64, Bytes::new());
            if plain.inject(pkt).delivered {
                plain_ok += 1;
                end_ok += 1; // no recovery needed
                net_ok += 1;
                continue;
            }
            // End-system recovery: retry with randomized forwarding bits.
            let out = recovery.recover(&fwd, s, t, 0, &ForwarderOptions::default(), &mut rng);
            if out.recovered {
                end_ok += 1;
                end_trials += out.trials as u32;
            }
            // Network-based recovery: routers deflect locally.
            let pkt = Packet::spliced(s, t, 64, ForwardingBits::stay_in_slice(0, k), Bytes::new());
            if deflecting.inject(pkt).delivered {
                net_ok += 1;
            }
        }
    }

    let pct = |x: u32| 100.0 * x as f64 / total as f64;
    println!("pairs delivered:");
    println!("  plain shortest-path routing : {:>6.2}%", pct(plain_ok));
    println!(
        "  + end-system recovery (k={k}) : {:>6.2}%  (avg {:.2} extra trials per broken pair)",
        pct(end_ok),
        end_trials as f64 / (end_ok - plain_ok).max(1) as f64
    );
    println!("  + in-network deflection     : {:>6.2}%", pct(net_ok));

    // How close is that to the best any routing could do?
    let best = {
        let n = g.node_count();
        let pairs = (n * (n - 1)) as f64;
        let disc = path_splicing::graph::traversal::disconnected_pairs(&g, &mask) as f64;
        100.0 * (1.0 - disc / pairs)
    };
    println!("  best possible (graph cuts)  : {best:>6.2}%");
}
