//! Bring your own topology: load an edge-list file (or a Rocketfuel
//! `weights` file), build slices over it, and check what splicing buys
//! you on *your* network.
//!
//! ```text
//! cargo run --release --example custom_topology [path/to/file.topo]
//! ```
//!
//! Without an argument, uses the shipped `data/geant.topo` — the same
//! file format `splice info --file …` accepts.

use path_splicing::graph::mincut::min_cut_links;
use path_splicing::graph::EdgeMask;
use path_splicing::sim::failure::FailureModel;
use path_splicing::splicing::prelude::*;
use path_splicing::topology::parse::parse_edge_list;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "data/geant.topo".to_string());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run from the repo root)"));
    let topo = parse_edge_list(&path, &text).expect("valid topology file");
    let g = topo.graph();
    println!(
        "loaded {}: {} nodes, {} links, min cut {} link(s)",
        path,
        g.node_count(),
        g.edge_count(),
        min_cut_links(&g).unwrap_or(0)
    );

    // How much does each slice buy on this topology?
    let kmax = 8;
    let splicing = Splicing::build(&g, &SplicingConfig::degree_based(kmax, 0.0, 3.0), 1);
    let trials = 300;
    let p = 0.05;
    let n = g.node_count();
    let pairs = (n * (n - 1)) as f64;

    println!("\nfraction of pairs disconnected at p = {p} ({trials} trials):");
    let mut best_total = 0.0;
    let mut per_k = vec![0.0f64; kmax];
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(trial);
        let mask = FailureModel::IidLinks { p }.sample(&g, &mut rng);
        for (ki, acc) in per_k.iter_mut().enumerate() {
            *acc += splicing.union_disconnected_pairs(ki + 1, &mask) as f64 / pairs;
        }
        best_total += path_splicing::graph::traversal::disconnected_pairs(&g, &mask) as f64 / pairs;
    }
    for (ki, acc) in per_k.iter().enumerate() {
        let avg = acc / trials as f64;
        let bar = "#".repeat((avg * 400.0) as usize);
        println!("  k = {:<2} {:.4}  {}", ki + 1, avg, bar);
    }
    println!(
        "  best   {:.4}  (the graph itself)",
        best_total / trials as f64
    );

    // And the forwarding story: fail the first link of some shortest path
    // and watch the bits route around it.
    let (src, dst) = (
        path_splicing::graph::NodeId(0),
        path_splicing::graph::NodeId((n - 1) as u32),
    );
    if let Some((_, edge)) = splicing.next_hop(0, src, dst) {
        let mask = EdgeMask::from_failed(g.edge_count(), &[edge]);
        let fwd = Forwarder::new(&splicing, &g, &mask);
        let mut rng = StdRng::seed_from_u64(9);
        let out = EndSystemRecovery::default().recover(
            &fwd,
            src,
            dst,
            0,
            &ForwarderOptions::default(),
            &mut rng,
        );
        println!(
            "\nfailed the first link of {} -> {}'s default path: {}",
            topo.node_name(src),
            topo.node_name(dst),
            if out.recovered {
                format!("recovered in {} trial(s)", out.trials)
            } else {
                "not recoverable with these slices".to_string()
            }
        );
    }
}
