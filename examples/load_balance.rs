//! "Automatic" load balancing (§5): Algorithm 1's hash-default slice
//! selection spreads flows across trees even with no failures, without
//! any Fortz–Thorup-style weight tuning.
//!
//! ```text
//! cargo run --release --example load_balance
//! ```

use path_splicing::graph::EdgeMask;
use path_splicing::splicing::prelude::*;
use path_splicing::topology::sprint::sprint;
use path_splicing::traffic::load::{link_loads, RoutingMode};
use path_splicing::traffic::matrix::TrafficMatrix;

fn main() {
    let topo = sprint();
    let g = topo.graph();
    println!(
        "topology: {} ({} nodes, {} links); gravity traffic matrix, 1000 units total",
        topo.name,
        topo.node_count(),
        topo.link_count()
    );

    let splicing = Splicing::build(&g, &SplicingConfig::degree_based(5, 0.0, 3.0), 1);
    let tm = TrafficMatrix::gravity(&g, 1000.0, 5);
    let up = EdgeMask::all_up(g.edge_count());

    println!("\n  mode            peak load   mean   cv      (lower cv = better balanced)");
    for (name, mode) in [
        ("shortest-path ", RoutingMode::ShortestPath),
        ("hash-spread   ", RoutingMode::HashSpread),
        ("equal-split   ", RoutingMode::EqualSplit),
    ] {
        let r = link_loads(&splicing, &g, &tm, mode, &up);
        println!(
            "  {name}  {:>8.1}  {:>6.1}  {:.3}",
            r.max(),
            r.mean(),
            r.cv()
        );
    }

    // Show the hottest links under single-path routing and where their
    // traffic went once flows spread across slices.
    let single = link_loads(&splicing, &g, &tm, RoutingMode::ShortestPath, &up);
    let spread = link_loads(&splicing, &g, &tm, RoutingMode::HashSpread, &up);
    let mut hottest: Vec<(usize, f64)> = single.per_edge.iter().cloned().enumerate().collect();
    hottest.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\n  hottest links under single-path routing, and after hash-spread:");
    for &(i, load) in hottest.iter().take(5) {
        let e = g.edge(path_splicing::graph::EdgeId(i as u32));
        println!(
            "  {:>18} - {:<18} {:>8.1} -> {:>8.1}",
            topo.node_name(e.u),
            topo.node_name(e.v),
            load,
            spread.per_edge[i]
        );
    }
}
