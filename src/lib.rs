//! # path-splicing
//!
//! Facade crate for the Path Splicing reproduction (Motiwala, Feamster,
//! Vempala — *Path Splicing: Reliable Connectivity with Rapid Recovery*).
//!
//! This crate re-exports the workspace's public API under stable module
//! names so that downstream users depend on a single crate:
//!
//! ```
//! use path_splicing::graph::{GraphBuilder, NodeId};
//!
//! let mut b = GraphBuilder::new().with_nodes(2);
//! b.add_edge(NodeId(0), NodeId(1), 1.0);
//! let g = b.build();
//! assert_eq!(g.edge_count(), 1);
//! ```
//!
//! See the `examples/` directory for end-to-end usage: building slices
//! from an ISP topology, forwarding packets with splicing headers, and
//! recovering from link failures.

/// Interdomain (BGP) splicing extension (re-export of `splice-bgp`).
pub use splice_bgp as bgp;
/// The path-splicing primitive itself (re-export of `splice-core`).
pub use splice_core as splicing;
/// Packet-level data plane (re-export of `splice-dataplane`).
pub use splice_dataplane as dataplane;
/// Graph algorithms substrate (re-export of `splice-graph`).
pub use splice_graph as graph;
/// Overlay-routing application (re-export of `splice-overlay`).
pub use splice_overlay as overlay;
/// Link-state routing simulator (re-export of `splice-routing`).
pub use splice_routing as routing;
/// Monte-Carlo evaluation engine (re-export of `splice-sim`).
pub use splice_sim as sim;
/// ISP topologies, generators, and parsers (re-export of `splice-topology`).
pub use splice_topology as topology;
/// Traffic-engineering extension (re-export of `splice-traffic`).
pub use splice_traffic as traffic;
