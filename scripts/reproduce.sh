#!/bin/bash
# Regenerate every figure, table, and extension experiment of the paper.
# Artifacts land in results/. Full paper scale (1000 trials for Figure 3;
# recovery figures at 200 which already gives <1% confidence intervals);
# pass a number to scale every trial count, e.g. `scripts/reproduce.sh 4`.
#
# Every experiment runs through the one `splice-lab` engine; the explicit
# per-experiment lines (rather than `splice-lab run-all`) carry the
# paper-scale trial counts and the geant/directed variants.
set -u
cd "$(dirname "$0")/.."
SCALE=${1:-1}
t() { echo $(( $2 * SCALE )); }
cargo build --release -p splice-bench || exit 1
LAB=target/release/splice-lab
run() { echo "=== $* ==="; "$@" || echo "FAILED: $*"; }

# The paper's own artifacts.
run $LAB run fig3_reliability --trials "$(t fig3 1000)"
run $LAB run fig3_reliability --trials "$(t fig3 1000)" --topology geant
run $LAB run fig3_reliability --trials "$(t fig3 500)" --semantics directed
run $LAB run fig4_end_system_recovery --trials "$(t fig4 200)"
run $LAB run fig4_end_system_recovery --trials "$(t fig4 150)" --semantics directed
run $LAB run fig5_network_recovery --trials "$(t fig5 200)"
run $LAB run table1 --trials "$(t table1 150)"
run $LAB run stretch_stats --trials "$(t stretch 100)"
run $LAB run loop_stats --trials "$(t loops 300)"
run $LAB run scaling_lognslices --trials "$(t scaling 60)"
run $LAB run theorem_b1
run $LAB run state_vs_diversity

# Everything §5-§6 sketch, built and measured.
run $LAB run te_load_balance
run $LAB run te_vs_tuning --trials "$(t tune 1500)"
run $LAB run capacity_multipath
run $LAB run bgp_splicing --trials "$(t bgp 200)"
run $LAB run overlay_splicing --trials "$(t overlay 250)"
run $LAB run slicing_vs_mrc --trials "$(t mrc 250)"
run $LAB run coverage_ablation --trials "$(t coverage 100)"
run $LAB run loopfree_ablation --trials "$(t loopfree 60)"
run $LAB run perturbation_ablation --trials "$(t perturb 120)"
run $LAB run header_encoding_ablation --trials "$(t header 100)"
run $LAB run node_failures --trials "$(t nodes 200)"
run $LAB run srlg_failures --trials "$(t srlg 200)"
run $LAB run convergence_window
run $LAB run routing_dynamics
run $LAB run ecmp_baseline --trials "$(t ecmp 200)"
run $LAB run explicit_paths_baseline
echo "all experiments done; see results/"
