#!/bin/bash
# Regenerate every figure, table, and extension experiment of the paper.
# Artifacts land in results/. Full paper scale (1000 trials for Figure 3;
# recovery figures at 200 which already gives <1% confidence intervals);
# pass a number to scale every trial count, e.g. `scripts/reproduce.sh 4`.
set -u
cd "$(dirname "$0")/.."
SCALE=${1:-1}
t() { echo $(( $2 * SCALE )); }
cargo build --release -p splice-bench || exit 1
B=target/release
run() { echo "=== $* ==="; "$@" || echo "FAILED: $*"; }

# The paper's own artifacts.
run $B/fig3_reliability --trials "$(t fig3 1000)"
run $B/fig3_reliability --trials "$(t fig3 1000)" --topology geant
run $B/fig3_reliability --trials "$(t fig3 500)" --semantics directed
run $B/fig4_end_system_recovery --trials "$(t fig4 200)"
run $B/fig4_end_system_recovery --trials "$(t fig4 150)" --semantics directed
run $B/fig5_network_recovery --trials "$(t fig5 200)"
run $B/table1 --trials "$(t table1 150)"
run $B/stretch_stats --trials "$(t stretch 100)"
run $B/loop_stats --trials "$(t loops 300)"
run $B/scaling_lognslices --trials "$(t scaling 60)"
run $B/theorem_b1
run $B/state_vs_diversity

# Everything §5-§6 sketch, built and measured.
run $B/te_load_balance
run $B/te_vs_tuning --trials "$(t tune 1500)"
run $B/capacity_multipath
run $B/bgp_splicing --trials "$(t bgp 200)"
run $B/overlay_splicing --trials "$(t overlay 250)"
run $B/slicing_vs_mrc --trials "$(t mrc 250)"
run $B/coverage_ablation --trials "$(t coverage 100)"
run $B/loopfree_ablation --trials "$(t loopfree 60)"
run $B/perturbation_ablation --trials "$(t perturb 120)"
run $B/header_encoding_ablation --trials "$(t header 100)"
run $B/node_failures --trials "$(t nodes 200)"
run $B/srlg_failures --trials "$(t srlg 200)"
run $B/convergence_window
run $B/routing_dynamics
run $B/ecmp_baseline --trials "$(t ecmp 200)"
run $B/explicit_paths_baseline
echo "all experiments done; see results/"
