//! Workspace-level property tests: splicing invariants under arbitrary
//! topologies, failure sets, and headers.

use path_splicing::graph::NodeId;
use path_splicing::splicing::prelude::*;
use path_splicing::splicing::slices::SplicingConfig;
use proptest::prelude::*;
// Ring-backbone graph + failure mask + seed, from the shared testkit
// strategy library.
use splice_testkit::strategies::arb_backbone_scenario as arb_scenario;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the topology, failures, and seed: spliced reachability is
    /// monotone in k, bounded by the union semantics, and never exceeds
    /// plain graph connectivity.
    #[test]
    fn reachability_sandwich((g, mask, seed) in arb_scenario()) {
        let k = 4;
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), seed);
        let mut last = usize::MAX;
        for kk in 1..=k {
            let d = sp.disconnected_pairs(kk, &mask);
            prop_assert!(d <= last, "not monotone in k");
            last = d;
            let u = sp.union_disconnected_pairs(kk, &mask);
            prop_assert!(u <= d, "union disconnects more than directed");
            let best = path_splicing::graph::traversal::disconnected_pairs(&g, &mask);
            prop_assert!(best <= u, "splicing beats physics");
        }
    }

    /// Any delivered forwarding walk is a valid walk over up edges ending
    /// at the destination, and its recorded metrics are self-consistent.
    #[test]
    fn delivered_traces_are_valid((g, mask, seed) in arb_scenario(), hops in proptest::collection::vec(0u8..4, 1..20)) {
        let k = 4;
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), seed);
        let fwd = Forwarder::new(&sp, &g, &mask);
        let opts = ForwarderOptions::default();
        let n = g.node_count() as u32;
        for s in 0..n {
            for t in 0..n {
                if s == t { continue; }
                let header = ForwardingBits::from_hops(&hops, k);
                if let ForwardingOutcome::Delivered(tr) =
                    fwd.forward(NodeId(s), NodeId(t), header, &opts)
                {
                    prop_assert_eq!(tr.src, NodeId(s));
                    prop_assert_eq!(tr.last, NodeId(t));
                    let mut at = NodeId(s);
                    for step in &tr.steps {
                        prop_assert_eq!(step.node, at);
                        let e = g.edge(step.edge);
                        prop_assert!(mask.is_up(step.edge), "walked a failed link");
                        prop_assert!(e.touches(at));
                        at = e.other(at);
                        prop_assert!(step.slice < k);
                    }
                    prop_assert_eq!(at, NodeId(t));
                }
            }
        }
    }

    /// Recovery never succeeds across a physical cut, and any success it
    /// reports comes with a genuine delivered trace avoiding failed links.
    #[test]
    fn recovery_success_is_honest((g, mask, seed) in arb_scenario()) {
        let k = 3;
        let sp = Splicing::build(&g, &SplicingConfig::uniform(k, 2.0), seed);
        let fwd = Forwarder::new(&sp, &g, &mask);
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let rec = EndSystemRecovery { max_trials: 3, ..Default::default() };
        let n = g.node_count() as u32;
        for s in 0..n.min(4) {
            for t in 0..n.min(4) {
                if s == t { continue; }
                let out = rec.recover(&fwd, NodeId(s), NodeId(t), 0, &ForwarderOptions::default(), &mut rng);
                if out.recovered {
                    let tr = out.delivery.as_ref().unwrap();
                    prop_assert!(tr.steps.iter().all(|st| mask.is_up(st.edge)));
                    prop_assert!(
                        path_splicing::graph::traversal::connected(&g, NodeId(s), NodeId(t), &mask),
                        "recovered across a cut"
                    );
                }
            }
        }
    }

    /// Header round-trips: arbitrary hop sequences encode, serialize, and
    /// decode to the same per-hop slice choices.
    #[test]
    fn header_roundtrip_arbitrary(hops in proptest::collection::vec(0u8..8, 0..16), kexp in 1u32..=3) {
        let k = 1usize << kexp; // 2, 4, 8
        let clamped: Vec<u8> = hops.iter().map(|&h| h % k as u8).collect();
        let header = ForwardingBits::from_hops(&clamped, k);
        let mut wire = ForwardingBits::from_bytes(&header.to_bytes()).unwrap();
        for &expect in &clamped {
            prop_assert_eq!(wire.read_and_shift(k), Some(expect as usize));
        }
        prop_assert_eq!(wire.read_and_shift(k), None);
    }
}
