//! End-to-end integration: topology → routing substrate → splicing →
//! packet data plane, exercised together on the paper's topologies.

use bytes::Bytes;
use path_splicing::dataplane::{Packet, RouterConfig, SimNetwork};
use path_splicing::graph::{EdgeMask, NodeId};
use path_splicing::routing::MultiTopology;
use path_splicing::splicing::prelude::*;
use path_splicing::topology::{geant::geant, sprint::sprint};

/// The full pipeline on Sprint: converge the routing protocol per slice,
/// check the protocol's tables equal the simulator's fast path, then
/// deliver wire packets over them.
#[test]
fn protocol_and_fast_path_agree_end_to_end() {
    let topo = sprint();
    let g = topo.graph();
    let splicing = Splicing::build(&g, &SplicingConfig::degree_based(3, 0.0, 3.0), 8);

    // Full flooding + SPF per slice.
    let weights: Vec<Vec<f64>> = (0..splicing.k())
        .map(|i| splicing.weights(i).to_vec())
        .collect();
    let mt = MultiTopology::converge(&g, weights);
    for (slice, rt) in mt.tables.iter().enumerate() {
        assert_eq!(
            rt,
            &splicing.tables(slice),
            "protocol-converged tables differ from direct SPF in slice {slice}"
        );
    }

    // Wire-level delivery across the whole network.
    let mut net = SimNetwork::new(
        g.clone(),
        &splicing,
        topo.latencies(),
        RouterConfig::default(),
    );
    for (s, t) in [(0u32, 51u32), (17, 3), (40, 22)] {
        let pkt = Packet::spliced(
            NodeId(s),
            NodeId(t),
            64,
            ForwardingBits::stay_in_slice(0, splicing.k()),
            Bytes::from_static(b"integration"),
        );
        let report = net.inject(pkt);
        assert!(report.delivered, "{s} -> {t} failed: {report:?}");
        assert_eq!(
            report.final_packet.unwrap().payload,
            Bytes::from_static(b"integration")
        );
    }
}

/// The paper's Figure 1 motif, end to end: failures that would kill both
/// vanilla paths are survivable by splicing unless they form a cut.
#[test]
fn splicing_survives_non_cut_failures_on_geant() {
    let topo = geant();
    let g = topo.graph();
    let k = 6;
    let splicing = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), 21);

    // Find a pair whose slices diverge at the source, so that failing the
    // slice-0 first hop is survivable by splicing. (Not every pair is:
    // stub PoPs whose alternative egress is far longer route identically
    // in every perturbed slice — the reliability shortfall splicing
    // cannot close, see EXPERIMENTS.md.)
    let mut chosen = None;
    'outer: for src in g.nodes() {
        for dst in g.nodes() {
            if src == dst {
                continue;
            }
            let Some((_, e0)) = splicing.next_hop(0, src, dst) else {
                continue;
            };
            let mask = EdgeMask::from_failed(g.edge_count(), &[e0]);
            if splicing.reachable_to(dst, k, &mask)[src.index()] {
                chosen = Some((src, dst, e0, mask));
                break 'outer;
            }
        }
    }
    let (src, dst, _e0, mask) =
        chosen.expect("GEANT with 6 slices must have some survivable first-hop failure");
    assert!(
        path_splicing::graph::traversal::connected(&g, src, dst, &mask),
        "directed spliced reachability implies graph connectivity"
    );

    // And an actual recovery walk finds it.
    let fwd = Forwarder::new(&splicing, &g, &mask);
    let mut rng = rand::SeedableRng::seed_from_u64(5);
    let out = EndSystemRecovery {
        max_trials: 25,
        ..Default::default()
    }
    .recover(&fwd, src, dst, 0, &ForwarderOptions::default(), &mut rng);
    assert!(
        out.recovered,
        "recovery failed on a reachable pair: {out:?}"
    );
}

/// Cut failures are not survivable by anything — splicing must not claim
/// otherwise (no false recovery).
#[test]
fn splicing_never_recovers_across_a_cut() {
    let topo = sprint();
    let g = topo.graph();
    let k = 5;
    let splicing = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), 4);

    // Cut off Tacoma entirely (its 2 incident links).
    let tacoma = topo.node_by_name("Tacoma").unwrap();
    let incident: Vec<_> = g.neighbors(tacoma).iter().map(|&(_, e)| e).collect();
    let mask = EdgeMask::from_failed(g.edge_count(), &incident);

    for t in g.nodes() {
        if t == tacoma {
            continue;
        }
        let reach = splicing.reachable_to(t, k, &mask);
        assert!(
            !reach[tacoma.index()],
            "claimed to reach {t:?} across a cut"
        );
        let union = splicing.union_reachable_to(t, k, &mask);
        assert!(!union[tacoma.index()]);
    }

    let fwd = Forwarder::new(&splicing, &g, &mask);
    let mut rng = rand::SeedableRng::seed_from_u64(9);
    let out = EndSystemRecovery::default().recover(
        &fwd,
        tacoma,
        topo.node_by_name("Chicago").unwrap(),
        0,
        &ForwarderOptions::default(),
        &mut rng,
    );
    assert!(!out.recovered);
}

/// Slice 0 must behave exactly like vanilla OSPF: same next hops, same
/// path costs, for every pair on both paper topologies.
#[test]
fn slice_zero_is_vanilla_shortest_path_routing() {
    for topo in [sprint(), geant()] {
        let g = topo.graph();
        let splicing = Splicing::build(&g, &SplicingConfig::degree_based(4, 0.0, 3.0), 77);
        let w = g.base_weights();
        for t in g.nodes() {
            let spt = path_splicing::graph::dijkstra(&g, t, &w);
            for s in g.nodes() {
                if s == t {
                    continue;
                }
                assert_eq!(
                    splicing.next_hop(0, s, t).map(|(n, _)| n),
                    spt.next_hop(s),
                    "{}: slice-0 FIB diverges at {s:?} -> {t:?}",
                    topo.name
                );
            }
        }
    }
}

/// Wire header and abstract header must stay in lockstep through a
/// multi-hop journey with slice switches.
#[test]
fn wire_and_abstract_headers_agree() {
    let topo = sprint();
    let g = topo.graph();
    let k = 4;
    let splicing = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), 15);
    let mask = EdgeMask::all_up(g.edge_count());
    let fwd = Forwarder::new(&splicing, &g, &mask);
    let mut net = SimNetwork::new(
        g.clone(),
        &splicing,
        topo.latencies(),
        RouterConfig::default(),
    );

    let hops: Vec<u8> = (0..20).map(|i| ((i * 7) % k) as u8).collect();
    for (s, t) in [(0u32, 35u32), (12, 44), (50, 2)] {
        let header = ForwardingBits::from_hops(&hops, k);
        let abstract_out = fwd.forward(NodeId(s), NodeId(t), header, &ForwarderOptions::default());
        let pkt = Packet::spliced(
            NodeId(s),
            NodeId(t),
            64,
            ForwardingBits::from_hops(&hops, k),
            Bytes::new(),
        );
        let wire_out = net.inject(pkt);
        match abstract_out {
            ForwardingOutcome::Delivered(tr) => {
                assert!(wire_out.delivered);
                let abstract_path: Vec<NodeId> = std::iter::once(NodeId(s))
                    .chain(tr.steps.iter().skip(1).map(|st| st.node))
                    .chain(std::iter::once(NodeId(t)))
                    .collect();
                assert_eq!(wire_out.path, abstract_path);
                let abstract_slices: Vec<usize> = tr.steps.iter().map(|st| st.slice).collect();
                assert_eq!(wire_out.slices, abstract_slices);
            }
            other => panic!("abstract forwarding failed on clean net: {other:?}"),
        }
    }
}
