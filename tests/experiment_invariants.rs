//! Cross-crate invariants of the evaluation pipeline: the orderings and
//! bounds that must hold between the paper's curves whatever the seed.

use path_splicing::sim::recovery::{recovery_experiment, RecoveryConfig, RecoveryScheme};
use path_splicing::sim::reliability::{reliability_experiment, ReliabilityConfig, SpliceSemantics};
use path_splicing::splicing::prelude::*;
use path_splicing::splicing::slices::SplicingConfig;
use path_splicing::topology::geant::geant;

fn rel_cfg(semantics: SpliceSemantics, seed: u64) -> ReliabilityConfig {
    ReliabilityConfig {
        ks: vec![1, 2, 5],
        ps: vec![0.02, 0.05, 0.1],
        trials: 40,
        splicing: SplicingConfig::degree_based(5, 0.0, 3.0),
        semantics,
        seed,
    }
}

/// For any seed: best-possible <= union <= directed <= k=1, and all
/// monotone in k.
#[test]
fn curve_ordering_chain_on_geant() {
    let g = geant().graph();
    for seed in [1u64, 99, 12345] {
        let union = reliability_experiment(&g, &rel_cfg(SpliceSemantics::UnionGraph, seed));
        let directed = reliability_experiment(&g, &rel_cfg(SpliceSemantics::Directed, seed));
        for pi in 0..3 {
            let best = union.best_possible.points[pi].1;
            for ki in 0..3 {
                let u = union.curves[ki].points[pi].1;
                let d = directed.curves[ki].points[pi].1;
                assert!(best <= u + 1e-12, "seed {seed}: best > union");
                assert!(u <= d + 1e-12, "seed {seed}: union > directed");
            }
            // k-monotonicity within each semantics.
            for curves in [&union.curves, &directed.curves] {
                assert!(curves[1].points[pi].1 <= curves[0].points[pi].1 + 1e-12);
                assert!(curves[2].points[pi].1 <= curves[1].points[pi].1 + 1e-12);
            }
        }
    }
}

/// Recovery sits between no-splicing and the reliability bound, for both
/// schemes, and the recovered-path stats match the paper's qualitative
/// claims (avg trials small, stretch modest).
#[test]
fn recovery_bounds_and_stats_on_geant() {
    let topo = geant();
    let g = topo.graph();
    for scheme in [
        RecoveryScheme::EndSystem(EndSystemRecovery::default()),
        RecoveryScheme::Network(NetworkRecovery::default()),
    ] {
        let cfg = RecoveryConfig {
            ks: vec![3, 5],
            ps: vec![0.03, 0.08],
            trials: 30,
            splicing: SplicingConfig::degree_based(5, 0.0, 3.0),
            scheme,
            semantics: SpliceSemantics::UnionGraph,
            seed: 6,
        };
        let out = recovery_experiment(&g, &topo.latencies(), &cfg);
        for ki in 0..2 {
            for pi in 0..2 {
                let ns = out.no_splicing.points[pi].1;
                let rec = out.recovery[ki].points[pi].1;
                let rel = out.reliability[ki].points[pi].1;
                assert!(rec <= ns + 1e-12);
                assert!(rel <= rec + 1e-12);
            }
        }
        for st in &out.stats {
            if st.recovered > 0 {
                assert!(st.avg_trials <= 5.0);
                assert!(
                    (1.0..4.0).contains(&st.avg_latency_stretch),
                    "{}",
                    st.avg_latency_stretch
                );
                assert!(st.avg_hop_stretch >= 1.0);
            }
        }
    }
}

/// The whole reliability pipeline is reproducible: same seed, same
/// curves, across semantics.
#[test]
fn pipeline_reproducibility() {
    let g = geant().graph();
    for semantics in [SpliceSemantics::UnionGraph, SpliceSemantics::Directed] {
        let a = reliability_experiment(&g, &rel_cfg(semantics, 7));
        let b = reliability_experiment(&g, &rel_cfg(semantics, 7));
        for (ca, cb) in a.curves.iter().zip(&b.curves) {
            assert_eq!(ca.points, cb.points);
        }
        assert_eq!(a.best_possible.points, b.best_possible.points);
    }
}
