//! Cross-crate invariants of the alternative slice constructions: MRC
//! configurations, coverage-aware perturbation, metric-based overlay
//! slices, and ECMP all plug into the same `Splicing` machinery — these
//! tests pin that they compose correctly with forwarding and recovery.

use path_splicing::graph::{EdgeMask, NodeId};
use path_splicing::routing::ecmp::{ecmp_disconnected_pairs, ecmp_sets};
use path_splicing::splicing::coverage::{build_coverage_aware, CoverageConfig};
use path_splicing::splicing::mrc::{
    build_mrc, isolating_slice, mrc_assignment, protected_fraction,
};
use path_splicing::splicing::prelude::*;
use path_splicing::splicing::slices::SplicingConfig;
use path_splicing::topology::geant::geant;

/// MRC slices drive the standard forwarder: pinning the header to the
/// isolating slice routes around the failed link end-to-end.
#[test]
fn mrc_slices_work_with_forwarding_bits() {
    let topo = geant();
    let g = topo.graph();
    // Find a k that protects every GEANT link.
    let k = (2..=12)
        .find(|&k| protected_fraction(&mrc_assignment(&g, k - 1)) == 1.0)
        .expect("GEANT is bridge-free");
    let mrc = build_mrc(&g, k);
    let opts = ForwarderOptions::default();

    for e in g.edge_ids().step_by(5) {
        let slice = isolating_slice(&g, k, e).expect("protected");
        let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
        let fwd = Forwarder::new(&mrc, &g, &mask);
        for (s, t) in [(0u32, 12u32), (17, 3), (9, 20)] {
            let out = fwd.forward(
                NodeId(s),
                NodeId(t),
                ForwardingBits::stay_in_slice(slice, k),
                &opts,
            );
            assert!(
                out.is_delivered(),
                "isolating slice {slice} must deliver {s}->{t} around {e:?}: {out:?}"
            );
            // And the delivered walk avoids the failed link by construction.
            assert!(out.trace().steps.iter().all(|st| st.edge != e));
        }
    }
}

/// Coverage-aware and MRC constructions both keep slice 0 = vanilla
/// shortest paths, so `k = 1` behaves identically across constructions.
#[test]
fn all_constructions_share_the_base_slice() {
    let g = geant().graph();
    let random = Splicing::build(&g, &SplicingConfig::degree_based(4, 0.0, 3.0), 5);
    let aware = build_coverage_aware(
        &g,
        &CoverageConfig {
            base: SplicingConfig::degree_based(4, 0.0, 3.0),
            penalty: 1.0,
        },
        5,
    );
    let mrc = build_mrc(&g, 4);
    let mask = EdgeMask::all_up(g.edge_count());
    for t in g.nodes() {
        let a = random.reachable_to(t, 1, &mask);
        let b = aware.reachable_to(t, 1, &mask);
        let c = mrc.reachable_to(t, 1, &mask);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
    assert_eq!(random.weights(0), mrc.weights(0));
}

/// The k=1 spliced disconnection equals ECMP disconnection whenever the
/// weights have no equal-cost ties (single next hops on both sides).
#[test]
fn ecmp_equals_single_slice_without_ties() {
    let g = geant().graph();
    let w = g.base_weights();
    // Verify tie-freeness first (distance weights are continuous).
    let tie_free = g
        .nodes()
        .all(|t| ecmp_sets(&g, t, &w).sets.iter().all(|s| s.len() <= 1));
    assert!(tie_free, "GEANT distance weights should have no exact ties");

    let sp = Splicing::build(&g, &SplicingConfig::degree_based(1, 0.0, 3.0), 1);
    for seed in [1u64, 2, 3] {
        let mut mask = EdgeMask::all_up(g.edge_count());
        // Deterministic pseudo-random failures.
        for e in g.edge_ids() {
            if (seed.wrapping_mul(0x9e3779b97f4a7c15)
                ^ (e.0 as u64).wrapping_mul(0x517cc1b727220a95))
            .is_multiple_of(10)
            {
                mask.fail(e);
            }
        }
        assert_eq!(
            sp.disconnected_pairs(1, &mask),
            ecmp_disconnected_pairs(&g, &w, &mask),
            "seed {seed}: tie-free ECMP must equal single-path routing"
        );
    }
}

/// Recovery strategies accept any construction: counter recovery over
/// MRC slices finds the engineered detours too.
#[test]
fn counter_recovery_over_mrc() {
    use path_splicing::splicing::recovery::CounterRecovery;
    let g = geant().graph();
    let k = (2..=12)
        .find(|&k| protected_fraction(&mrc_assignment(&g, k - 1)) == 1.0)
        .unwrap();
    let mrc = build_mrc(&g, k);
    // Fail the hash-slice first hop of a pair and sweep counters.
    let (s, t) = (NodeId(2), NodeId(18));
    let hash_slice = path_splicing::splicing::hash::slice_for_flow(s, t, k);
    let (_, edge) = mrc.next_hop(hash_slice, s, t).unwrap();
    let mask = EdgeMask::from_failed(g.edge_count(), &[edge]);
    let fwd = Forwarder::new(&mrc, &g, &mask);
    let out =
        CounterRecovery { max_trials: k + 2 }.recover(&fwd, s, t, &ForwarderOptions::default());
    assert!(out.recovered, "{out:?}");
}
