//! Telemetry must be observation-only: an instrumented run produces
//! bit-identical results to a plain run, and the thread count never
//! changes what a trial computes — only who computes it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use splice_core::prelude::*;
use splice_sim::parallel::{run_trials_instrumented, run_trials_with_threads};
use splice_sim::recovery::{
    recovery_experiment, recovery_experiment_instrumented, RecoveryConfig, RecoveryScheme,
};
use splice_sim::reliability::{
    reliability_experiment, reliability_experiment_instrumented, ReliabilityConfig, SpliceSemantics,
};
use splice_sim::telemetry::{ExperimentTelemetry, TrialTelemetry};
use splice_telemetry::Registry;
use splice_topology::abilene::abilene;

#[test]
fn thread_count_and_telemetry_do_not_change_trial_results() {
    let job = |_: usize, seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..32).map(|_| rng.gen::<u64>()).collect::<Vec<u64>>()
    };
    let baseline = run_trials_with_threads(40, 17, 1, job);
    for threads in [2, 4, 8] {
        assert_eq!(
            run_trials_with_threads(40, 17, threads, job),
            baseline,
            "{threads} threads diverged from serial"
        );
    }
    let reg = Registry::new();
    let tel = TrialTelemetry::register(&reg);
    assert_eq!(
        run_trials_instrumented(40, 17, Some(&tel), job),
        baseline,
        "instrumentation changed trial results"
    );
    assert_eq!(tel.trials_total.get(), 40);
    assert_eq!(tel.trial_seconds.count(), 40);
}

fn quick_reliability() -> ReliabilityConfig {
    ReliabilityConfig {
        ks: vec![1, 3],
        ps: vec![0.05, 0.1],
        trials: 24,
        splicing: SplicingConfig::degree_based(3, 0.0, 3.0),
        semantics: SpliceSemantics::UnionGraph,
        seed: 99,
    }
}

#[test]
fn reliability_curves_unchanged_by_telemetry() {
    let g = abilene().graph();
    let plain = reliability_experiment(&g, &quick_reliability());
    let reg = Registry::new();
    let tel = ExperimentTelemetry::register(&reg);
    let instrumented = reliability_experiment_instrumented(&g, &quick_reliability(), Some(&tel));
    for (a, b) in plain.curves.iter().zip(&instrumented.curves) {
        assert_eq!(a.points, b.points, "curve {} changed", a.label);
    }
    assert_eq!(
        plain.best_possible.points,
        instrumented.best_possible.points
    );
    // One trial observation per trial, one fused SPF+FIB observation per
    // slice built (kmax = 3 slices per trial), and one arena-size
    // observation per splicing build. The arena path emits FIB entries
    // inside the SPF pass, so `fib_build_seconds` stays empty.
    assert_eq!(tel.trials.trials_total.get(), 24);
    assert_eq!(tel.trials.trial_seconds.count(), 24);
    assert_eq!(tel.spf.spf_seconds.count(), 24 * 3);
    assert_eq!(tel.spf.fib_build_seconds.count(), 0);
    assert_eq!(tel.spf.arena_bytes.count(), 24);
}

#[test]
fn recovery_curves_unchanged_by_telemetry() {
    let topo = abilene();
    let g = topo.graph();
    let cfg = RecoveryConfig {
        ks: vec![3],
        ps: vec![0.06],
        trials: 10,
        splicing: SplicingConfig::degree_based(3, 0.0, 3.0),
        scheme: RecoveryScheme::EndSystem(EndSystemRecovery::default()),
        semantics: SpliceSemantics::UnionGraph,
        seed: 4,
    };
    let plain = recovery_experiment(&g, &topo.latencies(), &cfg);
    let reg = Registry::new();
    let tel = ExperimentTelemetry::register(&reg);
    let instrumented = recovery_experiment_instrumented(&g, &topo.latencies(), &cfg, Some(&tel));
    assert_eq!(plain.no_splicing.points, instrumented.no_splicing.points);
    assert_eq!(plain.stats, instrumented.stats);
    for (a, b) in plain.recovery.iter().zip(&instrumented.recovery) {
        assert_eq!(a.points, b.points);
    }
    for (a, b) in plain.reliability.iter().zip(&instrumented.reliability) {
        assert_eq!(a.points, b.points);
    }
    assert_eq!(tel.trials.trials_total.get(), 10);
}
