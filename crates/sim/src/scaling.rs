//! Theorem A.1's scaling claim, empirically.
//!
//! The theorem says `k = O(log n)` slices suffice for the spliced graph's
//! connectivity to approach the underlying graph's. Splicing converges to
//! an asymptote that may sit above best-possible (some links are on *no*
//! perturbed tree, e.g. short local links whose alternatives are far
//! longer), so the meaningful question is how fast the achievable
//! improvement is realized: [`slices_needed`] finds the smallest `k`
//! capturing `target_fraction` of the gap closed between `k = 1` and
//! `k = kmax`. The bench binary sweeps graph families of growing `n` and
//! reports `k*` against `log₂ n`.

use crate::failure::FailureModel;
use crate::parallel::run_trials;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_core::slices::{Splicing, SplicingConfig};
use splice_graph::traversal::disconnected_pairs;
use splice_graph::Graph;

/// Configuration of the slices-needed search.
#[derive(Clone, Debug)]
pub struct ScalingConfig {
    /// Failure probability to test at.
    pub p: f64,
    /// Monte-Carlo trials per k.
    pub trials: usize,
    /// Fraction of the k=1 → k=kmax improvement that must be realized
    /// (e.g. 0.9 = "within 90% of what splicing can achieve here").
    pub target_fraction: f64,
    /// Largest k to try (the asymptote estimate).
    pub kmax: usize,
    /// Slice construction template.
    pub splicing: SplicingConfig,
    /// Base seed.
    pub seed: u64,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            p: 0.05,
            trials: 100,
            target_fraction: 0.9,
            kmax: 16,
            splicing: SplicingConfig::degree_based(16, 0.0, 3.0),
            seed: 0,
        }
    }
}

/// Mean disconnection gap (spliced minus best-possible) for each k in
/// `1..=kmax`, under common random failures.
pub fn disconnection_gaps(g: &Graph, cfg: &ScalingConfig) -> Vec<f64> {
    let n = g.node_count();
    let pairs = (n * (n - 1)) as f64;
    let mut scfg = cfg.splicing.clone();
    scfg.k = cfg.kmax;

    let per_trial: Vec<Vec<f64>> = run_trials(cfg.trials, cfg.seed, |_, trial_seed| {
        let splicing = Splicing::build(g, &scfg, trial_seed);
        let mut rng = StdRng::seed_from_u64(trial_seed ^ 0x5bd1e995);
        let mask = FailureModel::IidLinks { p: cfg.p }.sample(g, &mut rng);
        let best = disconnected_pairs(g, &mask) as f64 / pairs;
        // Union semantics: Theorem A.1 is a statement about the undirected
        // union graph's connectivity.
        (1..=cfg.kmax)
            .map(|k| splicing.union_disconnected_pairs(k, &mask) as f64 / pairs - best)
            .collect()
    });

    (0..cfg.kmax)
        .map(|ki| per_trial.iter().map(|t| t[ki]).sum::<f64>() / cfg.trials as f64)
        .collect()
}

/// The smallest `k` realizing `cfg.target_fraction` of the improvement
/// between `k = 1` and `k = kmax`. Always succeeds (k = kmax realizes the
/// full improvement); returns 1 when splicing cannot improve at all on
/// this topology (e.g. a ring, where alternate trees barely differ).
pub fn slices_needed(g: &Graph, cfg: &ScalingConfig) -> usize {
    let gaps = disconnection_gaps(g, cfg);
    let (g1, ginf) = (gaps[0], gaps[cfg.kmax - 1]);
    let achievable = g1 - ginf;
    if achievable <= 1e-12 {
        return 1;
    }
    let threshold = g1 - cfg.target_fraction * achievable;
    gaps.iter()
        .position(|&g| g <= threshold + 1e-15)
        .map(|i| i + 1)
        .expect("kmax always meets its own asymptote")
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_topology::abilene::abilene;
    use splice_topology::generators::{connected_erdos_renyi, ring};

    fn quick() -> ScalingConfig {
        ScalingConfig {
            trials: 40,
            ..Default::default()
        }
    }

    #[test]
    fn gaps_decrease_in_k() {
        let g = abilene().graph();
        let gaps = disconnection_gaps(&g, &quick());
        for w in gaps.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!(
            gaps.iter().all(|&g| g >= -1e-12),
            "splicing can't beat optimal"
        );
    }

    #[test]
    fn few_slices_suffice_on_abilene() {
        let g = abilene().graph();
        let k = slices_needed(&g, &quick());
        assert!((1..=16).contains(&k));
        // The paper's message: most of the benefit arrives with few slices.
        let relaxed = slices_needed(
            &g,
            &ScalingConfig {
                target_fraction: 0.5,
                ..quick()
            },
        );
        assert!(relaxed <= 5, "half the benefit needed {relaxed} slices");
        assert!(relaxed <= k);
    }

    #[test]
    fn ring_has_no_improvement_to_capture() {
        // On a ring the perturbed trees barely differ (the alternative to a
        // short arc is the whole long way around), so k* collapses to 1 or
        // converges immediately.
        let g = ring(16);
        let k = slices_needed(&g, &quick());
        assert!(k <= 16);
    }

    #[test]
    fn er_graph_converges() {
        let g = connected_erdos_renyi(24, 0.25, 5);
        let k = slices_needed(&g, &quick());
        assert!((1..=16).contains(&k));
    }
}
