//! Per-slice stretch distributions (§4.3's "99% of all paths in each tree
//! have stretch of less than 2.6").

use splice_core::slices::{Splicing, SplicingConfig};
use splice_core::stretch::{per_slice_stretch, StretchStats};
use splice_graph::Graph;

/// Stretch distribution of every slice of a deployment, averaged over
/// `seeds` independent slice constructions (the paper's statement is about
/// a typical tree, so one seed is noisy).
pub fn slice_stretch_experiment(
    g: &Graph,
    latencies: &[f64],
    template: &SplicingConfig,
    seeds: &[u64],
) -> Vec<StretchStats> {
    let mut all: Vec<Vec<f64>> = vec![Vec::new(); template.k];
    for &seed in seeds {
        let splicing = Splicing::build(g, template, seed);
        for (si, samples) in per_slice_stretch(&splicing, g, latencies)
            .into_iter()
            .enumerate()
        {
            all[si].extend(samples);
        }
    }
    all.into_iter()
        .map(|samples| StretchStats::from_samples(samples).expect("connected topology"))
        .collect()
}

/// The paper's headline number: the worst 99th-percentile stretch over all
/// perturbed slices.
pub fn worst_slice_p99(stats: &[StretchStats]) -> f64 {
    stats
        .iter()
        .skip(1) // slice 0 is the base tree, stretch 1 by construction
        .map(|s| s.p99)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_topology::abilene::abilene;

    #[test]
    fn slice_zero_stretch_is_one() {
        let topo = abilene();
        let g = topo.graph();
        let template = SplicingConfig::degree_based(4, 0.0, 3.0);
        let stats = slice_stretch_experiment(&g, &topo.latencies(), &template, &[1, 2]);
        assert_eq!(stats.len(), 4);
        assert!(stats[0].max < 1.01);
    }

    #[test]
    fn p99_bounded_by_perturbation_budget() {
        let topo = abilene();
        let g = topo.graph();
        let template = SplicingConfig::degree_based(5, 0.0, 3.0);
        let stats = slice_stretch_experiment(&g, &topo.latencies(), &template, &[3]);
        let p99 = worst_slice_p99(&stats);
        // Weight(0,3) multiplies weights by at most 4, bounding stretch.
        assert!(p99 <= 4.0 + 1e-9, "p99 = {p99}");
        assert!(p99 >= 1.0);
    }

    #[test]
    fn stronger_perturbation_stretches_more() {
        let topo = abilene();
        let g = topo.graph();
        let weak = SplicingConfig::uniform(3, 0.5);
        let strong = SplicingConfig::uniform(3, 3.0);
        let seeds: Vec<u64> = (0..5).collect();
        let sw = slice_stretch_experiment(&g, &topo.latencies(), &weak, &seeds);
        let ss = slice_stretch_experiment(&g, &topo.latencies(), &strong, &seeds);
        let mean_w: f64 = sw.iter().skip(1).map(|s| s.mean).sum::<f64>() / 2.0;
        let mean_s: f64 = ss.iter().skip(1).map(|s| s.mean).sum::<f64>() / 2.0;
        assert!(mean_s >= mean_w, "{mean_s} < {mean_w}");
    }
}
