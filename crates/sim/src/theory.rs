//! Empirical validation of Theorem B.1 (Appendix B).
//!
//! The theorem bounds how far the *perturbed* length of a path can drift
//! from its base length: with per-link perturbations uniform in
//! `[-c·L_i, c·L_i]`, Chebyshev gives
//!
//! ```text
//! P( |X - ||L||₁| ≥ r · (c/√3) · ||L||₂ ) < 1 / r²
//! ```
//!
//! We draw perturbed lengths for real shortest paths of the topology and
//! verify the violation rate stays below the bound for every `r` — the
//! concentration that keeps stretch small and long loops improbable.

use crate::parallel::run_trials;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use splice_graph::{dijkstra, Graph};

/// One row of the validation table.
#[derive(Clone, Debug, PartialEq)]
pub struct TheoremB1Row {
    /// Deviation multiplier `r`.
    pub r: f64,
    /// Chebyshev bound `1/r²`.
    pub bound: f64,
    /// Observed violation fraction.
    pub observed: f64,
    /// Paths sampled.
    pub samples: usize,
}

/// Validate the bound on `g`'s shortest paths with perturbation scale `c`,
/// for each `r` in `rs`, using `samples` perturbation draws per `r`
/// (spread over all ordered pairs, cycling).
pub fn theorem_b1_experiment(
    g: &Graph,
    c: f64,
    rs: &[f64],
    samples: usize,
    seed: u64,
) -> Vec<TheoremB1Row> {
    assert!((0.0..1.0).contains(&c), "theorem requires 0 <= c < 1");
    let w = g.base_weights();
    // Collect all shortest paths' edge-length vectors once.
    let mut paths: Vec<Vec<f64>> = Vec::new();
    for t in g.nodes() {
        let spt = dijkstra(g, t, &w);
        for s in g.nodes() {
            if s == t {
                continue;
            }
            if let Some(p) = spt.path_from(s) {
                paths.push(p.edges.iter().map(|e| w[e.index()]).collect());
            }
        }
    }
    assert!(!paths.is_empty(), "graph has no connected pairs");

    rs.iter()
        .map(|&r| {
            let violations: Vec<usize> = run_trials(samples, seed, |i, s| {
                let lens = &paths[i % paths.len()];
                let mut rng = StdRng::seed_from_u64(s ^ (r.to_bits()));
                let l1: f64 = lens.iter().sum();
                let l2: f64 = lens.iter().map(|l| l * l).sum::<f64>().sqrt();
                let x: f64 = lens
                    .iter()
                    .map(|&l| l + rng.gen_range(-c * l..=c * l))
                    .sum();
                let threshold = r * c / 3f64.sqrt() * l2;
                usize::from((x - l1).abs() >= threshold)
            });
            let observed = violations.iter().sum::<usize>() as f64 / samples as f64;
            TheoremB1Row {
                r,
                bound: 1.0 / (r * r),
                observed,
                samples,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_topology::abilene::abilene;

    #[test]
    fn chebyshev_bound_holds() {
        let g = abilene().graph();
        let rows = theorem_b1_experiment(&g, 0.5, &[1.5, 2.0, 3.0, 5.0], 4000, 9);
        for row in &rows {
            assert!(
                row.observed <= row.bound,
                "r={}: observed {} > bound {}",
                row.r,
                row.observed,
                row.bound
            );
        }
    }

    #[test]
    fn bound_tightens_with_r() {
        let g = abilene().graph();
        let rows = theorem_b1_experiment(&g, 0.5, &[1.5, 3.0], 2000, 9);
        assert!(rows[0].bound > rows[1].bound);
        assert!(rows[0].observed >= rows[1].observed);
    }

    #[test]
    #[should_panic(expected = "theorem requires")]
    fn c_must_be_below_one() {
        let g = abilene().graph();
        theorem_b1_experiment(&g, 1.0, &[2.0], 10, 1);
    }

    #[test]
    fn deterministic() {
        let g = abilene().graph();
        let a = theorem_b1_experiment(&g, 0.4, &[2.0], 500, 7);
        let b = theorem_b1_experiment(&g, 0.4, &[2.0], 500, 7);
        assert_eq!(a, b);
    }
}
