//! Node-failure reliability (extension).
//!
//! The paper's model fails links; real outages also take whole routers
//! (power, maintenance, software). A failed node removes every incident
//! link, and pairs involving the failed node itself are excluded — the
//! question is whether *surviving* routers stay connected. Same
//! common-random-number methodology as Figure 3.

use crate::failure::FailureModel;
use crate::parallel::{derive_seed, run_trials};
use crate::reliability::SpliceSemantics;
use crate::stats::Series;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_core::slices::{RepairEvent, Splicing, SplicingConfig};
use splice_graph::Graph;

/// Configuration for the node-failure sweep.
#[derive(Clone, Debug)]
pub struct NodeFailureConfig {
    /// Slice counts to evaluate.
    pub ks: Vec<usize>,
    /// Node-failure probabilities.
    pub ps: Vec<f64>,
    /// Monte-Carlo trials.
    pub trials: usize,
    /// Slice construction template (`k` overridden by `max(ks)`).
    pub splicing: SplicingConfig,
    /// Spliced-path semantics.
    pub semantics: SpliceSemantics,
    /// Base seed.
    pub seed: u64,
}

/// Result: disconnection among surviving pairs, per k, plus best possible.
#[derive(Clone, Debug)]
pub struct NodeFailureCurves {
    /// One curve per k.
    pub curves: Vec<Series>,
    /// The surviving graph's own disconnection.
    pub best_possible: Series,
}

/// Run the node-failure experiment.
pub fn node_failure_experiment(g: &Graph, cfg: &NodeFailureConfig) -> NodeFailureCurves {
    let kmax = cfg.ks.iter().copied().max().expect("at least one k");
    let mut scfg = cfg.splicing.clone();
    scfg.k = kmax;
    let n = g.node_count();

    type Row = (Vec<Vec<f64>>, Vec<f64>);
    let per_trial: Vec<Row> = run_trials(cfg.trials, cfg.seed, |_, trial_seed| {
        let splicing = Splicing::build(g, &scfg, trial_seed);
        let mut rows = Vec::with_capacity(cfg.ps.len());
        let mut best = Vec::with_capacity(cfg.ps.len());
        for (pi, &p) in cfg.ps.iter().enumerate() {
            // One collision-free stream per failure probability.
            let mut rng = StdRng::seed_from_u64(derive_seed(trial_seed, pi as u64, 0));
            let (mask, down) = FailureModel::IidNodes { p }.sample_nodes(g, &mut rng);
            let alive = |i: usize| !down.contains(&splice_graph::NodeId(i as u32));
            let survivors: Vec<usize> = (0..n).filter(|&i| alive(i)).collect();
            let pair_count = survivors.len().saturating_sub(1) * survivors.len();
            if pair_count == 0 {
                rows.push(vec![0.0; cfg.ks.len()]);
                best.push(0.0);
                continue;
            }
            // Splicing disconnection among surviving ordered pairs.
            let row: Vec<f64> = cfg
                .ks
                .iter()
                .map(|&k| {
                    let mut disc = 0usize;
                    for &t in &survivors {
                        let t = splice_graph::NodeId(t as u32);
                        let reach = match cfg.semantics {
                            SpliceSemantics::UnionGraph => splicing.union_reachable_to(t, k, &mask),
                            SpliceSemantics::Directed => splicing.reachable_to(t, k, &mask),
                        };
                        disc += survivors
                            .iter()
                            .filter(|&&s| s != t.index() && !reach[s])
                            .count();
                    }
                    disc as f64 / pair_count as f64
                })
                .collect();
            rows.push(row);
            // Best possible among survivors: a fully reconverged
            // single-slice deployment, delta-SPF-repaired onto the failed
            // topology — measured on the forwarding substrate instead of
            // read off graph components (same quantity: reconverged
            // shortest paths deliver exactly within components).
            let event = RepairEvent::LinkSetFailure(mask.failed_edges().collect());
            let repaired = splicing.prefix(1).repair(g, &event);
            let mut disc = 0usize;
            for &t in &survivors {
                let t = splice_graph::NodeId(t as u32);
                let reach = repaired.reachable_to(t, 1, &mask);
                disc += survivors
                    .iter()
                    .filter(|&&s| s != t.index() && !reach[s])
                    .count();
            }
            best.push(disc as f64 / pair_count as f64);
        }
        (rows, best)
    });

    let curves = cfg
        .ks
        .iter()
        .enumerate()
        .map(|(ki, &k)| {
            let points = cfg
                .ps
                .iter()
                .enumerate()
                .map(|(pi, &p)| {
                    let avg =
                        per_trial.iter().map(|(r, _)| r[pi][ki]).sum::<f64>() / cfg.trials as f64;
                    (p, avg)
                })
                .collect();
            Series::new(format!("k = {k}"), points)
        })
        .collect();
    let best_points = cfg
        .ps
        .iter()
        .enumerate()
        .map(|(pi, &p)| {
            let avg = per_trial.iter().map(|(_, b)| b[pi]).sum::<f64>() / cfg.trials as f64;
            (p, avg)
        })
        .collect();

    NodeFailureCurves {
        curves,
        best_possible: Series::new("Best possible", best_points),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_topology::abilene::abilene;

    fn cfg() -> NodeFailureConfig {
        NodeFailureConfig {
            ks: vec![1, 3, 5],
            ps: vec![0.05, 0.1],
            trials: 30,
            splicing: SplicingConfig::degree_based(5, 0.0, 3.0),
            semantics: SpliceSemantics::UnionGraph,
            seed: 13,
        }
    }

    #[test]
    fn orderings_hold_under_node_failures() {
        let g = abilene().graph();
        let out = node_failure_experiment(&g, &cfg());
        for pi in 0..2 {
            let best = out.best_possible.points[pi].1;
            // curves are ordered k = 1, 3, 5: disconnection must shrink.
            let ys: Vec<f64> = out.curves.iter().map(|c| c.points[pi].1).collect();
            for y in &ys {
                assert!(*y >= best - 1e-12, "beat best possible");
            }
            assert!(ys[1] <= ys[0] + 1e-12);
            assert!(ys[2] <= ys[1] + 1e-12);
        }
    }

    #[test]
    fn zero_probability_is_perfect() {
        let g = abilene().graph();
        let mut c = cfg();
        c.ps = vec![0.0];
        c.trials = 5;
        let out = node_failure_experiment(&g, &c);
        for curve in &out.curves {
            assert_eq!(curve.points[0].1, 0.0);
        }
        assert_eq!(out.best_possible.points[0].1, 0.0);
    }

    #[test]
    fn deterministic() {
        let g = abilene().graph();
        let a = node_failure_experiment(&g, &cfg());
        let b = node_failure_experiment(&g, &cfg());
        for (x, y) in a.curves.iter().zip(&b.curves) {
            assert_eq!(x.points, y.points);
        }
    }
}
