//! Table 1 — the paper's summary of results, regenerated from the actual
//! experiment outputs.

use crate::loops::LoopStats;
use crate::recovery::RecoveryCurves;
use crate::reliability::ReliabilityCurves;

/// The three headline claims of Table 1, with our measured numbers.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// Mean gap (fraction of pairs) between splicing at the largest
    /// evaluated k and best-possible, averaged over the p sweep.
    pub reliability_gap: f64,
    /// Which k that gap was measured at.
    pub reliability_k: usize,
    /// Mean trials to recover (end-system scheme, largest k).
    pub avg_recovery_trials: f64,
    /// Two-hop loop rate per recovery trial at k = 2.
    pub loop_rate_k2: f64,
    /// Two-hop loop rate at the largest evaluated k.
    pub loop_rate_khigh: f64,
    /// The largest k loops were evaluated at.
    pub loop_khigh: usize,
}

impl Table1 {
    /// Assemble the table from the three experiments' outputs.
    pub fn assemble(
        reliability: &ReliabilityCurves,
        recovery: &RecoveryCurves,
        loops: &[LoopStats],
    ) -> Table1 {
        let kbig = *reliability.ks.iter().max().expect("ks nonempty");
        let big = reliability.for_k(kbig).expect("curve exists");
        let gap = big
            .points
            .iter()
            .zip(&reliability.best_possible.points)
            .map(|(a, b)| a.1 - b.1)
            .sum::<f64>()
            / big.points.len() as f64;

        let rec_stats = recovery
            .stats
            .iter()
            .max_by_key(|s| s.k)
            .expect("recovery stats nonempty");

        let k2 = loops.iter().find(|l| l.k == 2);
        let khigh = loops
            .iter()
            .max_by_key(|l| l.k)
            .expect("loop stats nonempty");

        Table1 {
            reliability_gap: gap,
            reliability_k: kbig,
            avg_recovery_trials: rec_stats.avg_trials,
            loop_rate_k2: k2.map(|l| l.two_hop_rate()).unwrap_or(0.0),
            loop_rate_khigh: khigh.two_hop_rate(),
            loop_khigh: khigh.k,
        }
    }

    /// Render in the shape of the paper's Table 1.
    pub fn render(&self) -> String {
        format!(
            "Result                              | Measured\n\
             ------------------------------------+---------------------------\n\
             Reliability approaches optimal      | mean gap to best possible at k={}: {:.4}\n\
             Recovery is fast                    | avg trials to recover: {:.2}\n\
             Loops are rare                      | 2-hop loop rate: {:.4}/trial (k=2), {:.4}/trial (k={})\n",
            self.reliability_k,
            self.reliability_gap,
            self.avg_recovery_trials,
            self.loop_rate_k2,
            self.loop_rate_khigh,
            self.loop_khigh,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::{loop_experiment, LoopConfig};
    use crate::recovery::{recovery_experiment, RecoveryConfig, RecoveryScheme};
    use crate::reliability::{reliability_experiment, ReliabilityConfig};
    use splice_core::prelude::*;
    use splice_core::slices::SplicingConfig;
    use splice_topology::abilene::abilene;

    #[test]
    fn assembles_from_real_experiments() {
        let topo = abilene();
        let g = topo.graph();
        let rel = reliability_experiment(
            &g,
            &ReliabilityConfig {
                ks: vec![1, 2, 5],
                ps: vec![0.03, 0.08],
                trials: 20,
                splicing: SplicingConfig::degree_based(5, 0.0, 3.0),
                semantics: Default::default(),
                seed: 1,
            },
        );
        let rec = recovery_experiment(
            &g,
            &topo.latencies(),
            &RecoveryConfig {
                ks: vec![3, 5],
                ps: vec![0.05],
                trials: 15,
                splicing: SplicingConfig::degree_based(5, 0.0, 3.0),
                scheme: RecoveryScheme::EndSystem(EndSystemRecovery::default()),
                semantics: Default::default(),
                seed: 2,
            },
        );
        let loops = loop_experiment(&g, &LoopConfig::paper(vec![2, 5], 15, 3));
        let t1 = Table1::assemble(&rel, &rec, &loops);
        assert!(t1.reliability_gap >= 0.0);
        assert_eq!(t1.reliability_k, 5);
        assert!(t1.avg_recovery_trials >= 1.0);
        assert!((0.0..=1.0).contains(&t1.loop_rate_k2));
        let shown = t1.render();
        assert!(shown.contains("Reliability approaches optimal"));
        assert!(shown.contains("Recovery is fast"));
        assert!(shown.contains("Loops are rare"));
    }
}
