//! Failure models.
//!
//! The paper's model is i.i.d. link failures with probability `p`
//! (Definition 2.1, §4.1). Beyond that, the engine supports exact-count
//! failures, node failures (all incident links), and shared-risk link
//! groups — the correlated-failure patterns real backbones exhibit (a
//! conduit cut takes every fiber in it).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use splice_graph::{EdgeId, EdgeMask, Graph, NodeId};

/// A generative model of failure scenarios.
#[derive(Clone, Debug, PartialEq)]
pub enum FailureModel {
    /// Fail each link independently with probability `p` (the paper's).
    IidLinks {
        /// Per-link failure probability in `[0, 1]`.
        p: f64,
    },
    /// Fail exactly `count` links chosen uniformly at random.
    ExactLinks {
        /// Number of links to fail.
        count: usize,
    },
    /// Fail each node independently with probability `p`; a failed node
    /// takes all incident links down.
    IidNodes {
        /// Per-node failure probability in `[0, 1]`.
        p: f64,
    },
    /// Shared-risk link groups: fail each group independently with
    /// probability `p`; a failed group takes all member links down.
    Srlg {
        /// Link groups (may overlap).
        groups: Vec<Vec<EdgeId>>,
        /// Per-group failure probability.
        p: f64,
    },
}

impl FailureModel {
    /// Sample one failure scenario.
    pub fn sample(&self, g: &Graph, rng: &mut StdRng) -> EdgeMask {
        let mut mask = EdgeMask::all_up(g.edge_count());
        match self {
            FailureModel::IidLinks { p } => {
                for e in g.edge_ids() {
                    if rng.gen_bool(p.clamp(0.0, 1.0)) {
                        mask.fail(e);
                    }
                }
            }
            FailureModel::ExactLinks { count } => {
                let mut ids: Vec<EdgeId> = g.edge_ids().collect();
                ids.shuffle(rng);
                for e in ids.into_iter().take(*count) {
                    mask.fail(e);
                }
            }
            FailureModel::IidNodes { p } => {
                for n in g.nodes() {
                    if rng.gen_bool(p.clamp(0.0, 1.0)) {
                        for &(_, e) in g.neighbors(n) {
                            mask.fail(e);
                        }
                    }
                }
            }
            FailureModel::Srlg { groups, p } => {
                for group in groups {
                    if rng.gen_bool(p.clamp(0.0, 1.0)) {
                        for &e in group {
                            mask.fail(e);
                        }
                    }
                }
            }
        }
        mask
    }

    /// Sampled failed-node list for [`FailureModel::IidNodes`]; other
    /// models fail no nodes. (Node-failure experiments need to exclude
    /// failed endpoints from the pair count.)
    pub fn sample_nodes(&self, g: &Graph, rng: &mut StdRng) -> (EdgeMask, Vec<NodeId>) {
        match self {
            FailureModel::IidNodes { p } => {
                let mut mask = EdgeMask::all_up(g.edge_count());
                let mut down = Vec::new();
                for n in g.nodes() {
                    if rng.gen_bool(p.clamp(0.0, 1.0)) {
                        down.push(n);
                        for &(_, e) in g.neighbors(n) {
                            mask.fail(e);
                        }
                    }
                }
                (mask, down)
            }
            other => (other.sample(g, rng), Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use splice_graph::graph::from_edges;

    fn ring(n: usize) -> Graph {
        let edges: Vec<(u32, u32, f64)> = (0..n as u32)
            .map(|i| (i, (i + 1) % n as u32, 1.0))
            .collect();
        from_edges(n, &edges)
    }

    #[test]
    fn iid_links_rate() {
        let g = ring(100);
        let mut rng = StdRng::seed_from_u64(1);
        let model = FailureModel::IidLinks { p: 0.1 };
        let total: usize = (0..200)
            .map(|_| model.sample(&g, &mut rng).failed_count())
            .sum();
        let rate = total as f64 / (200.0 * 100.0);
        assert!((0.08..0.12).contains(&rate), "rate {rate}");
    }

    #[test]
    fn iid_extremes() {
        let g = ring(20);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            FailureModel::IidLinks { p: 0.0 }
                .sample(&g, &mut rng)
                .failed_count(),
            0
        );
        assert_eq!(
            FailureModel::IidLinks { p: 1.0 }
                .sample(&g, &mut rng)
                .failed_count(),
            20
        );
    }

    #[test]
    fn exact_links_count() {
        let g = ring(30);
        let mut rng = StdRng::seed_from_u64(3);
        for count in [0, 1, 5, 30] {
            let mask = FailureModel::ExactLinks { count }.sample(&g, &mut rng);
            assert_eq!(mask.failed_count(), count);
        }
        // Requesting more than exist caps at the edge count.
        let mask = FailureModel::ExactLinks { count: 99 }.sample(&g, &mut rng);
        assert_eq!(mask.failed_count(), 30);
    }

    #[test]
    fn node_failure_takes_incident_links() {
        let g = ring(10);
        let mut rng = StdRng::seed_from_u64(4);
        let model = FailureModel::IidNodes { p: 1.0 };
        let (mask, down) = model.sample_nodes(&g, &mut rng);
        assert_eq!(down.len(), 10);
        assert_eq!(mask.failed_count(), 10); // every ring edge dies
    }

    #[test]
    fn srlg_groups_fail_together() {
        let g = ring(6);
        let groups = vec![vec![EdgeId(0), EdgeId(3)], vec![EdgeId(1)]];
        let model = FailureModel::Srlg { groups, p: 1.0 };
        let mut rng = StdRng::seed_from_u64(5);
        let mask = model.sample(&g, &mut rng);
        assert!(mask.is_failed(EdgeId(0)));
        assert!(mask.is_failed(EdgeId(3)));
        assert!(mask.is_failed(EdgeId(1)));
        assert!(mask.is_up(EdgeId(2)));
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let g = ring(50);
        let model = FailureModel::IidLinks { p: 0.3 };
        let a = model.sample(&g, &mut StdRng::seed_from_u64(9));
        let b = model.sample(&g, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
