//! Forwarding-loop frequency (§4.4).
//!
//! The paper reports that with random end-system recovery headers, two-hop
//! loops appear in roughly 1 in 100 recovery trials at `k = 2` and up to
//! 1 in 10 at larger `k`, while longer loops are extremely rare — and that
//! strategies like never revisiting a slice eliminate persistent loops.
//! This experiment counts exactly that: each *trial* is one randomized
//! header forwarded for one broken pair.

use crate::failure::FailureModel;
use crate::parallel::run_trials;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_core::prelude::*;
use splice_core::recovery::HeaderStrategy;
use splice_core::slices::SplicingConfig;
use splice_graph::Graph;

/// Configuration of a loop-frequency run.
#[derive(Clone, Debug)]
pub struct LoopConfig {
    /// Slice counts to evaluate.
    pub ks: Vec<usize>,
    /// Link-failure probability used to generate broken pairs.
    pub p: f64,
    /// Monte-Carlo trials (failure scenarios).
    pub trials: usize,
    /// Slice construction; `k` overridden by `max(ks)`.
    pub splicing: SplicingConfig,
    /// Header randomization under test.
    pub strategy: HeaderStrategy,
    /// Recovery header length in hops.
    pub header_hops: usize,
    /// Base seed.
    pub seed: u64,
}

impl LoopConfig {
    /// The §4.4 setting: Bernoulli(0.5) headers, 20 hops, p mid-range.
    pub fn paper(ks: Vec<usize>, trials: usize, seed: u64) -> LoopConfig {
        let kmax = ks.iter().copied().max().unwrap_or(2);
        LoopConfig {
            ks,
            p: 0.05,
            trials,
            splicing: SplicingConfig::degree_based(kmax, 0.0, 3.0),
            strategy: HeaderStrategy::Bernoulli { flip_prob: 0.5 },
            header_hops: 20,
            seed,
        }
    }
}

/// Loop counts for one `k`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoopStats {
    /// Slice count.
    pub k: usize,
    /// Recovery trials executed (one randomized header each).
    pub attempts: usize,
    /// Trials whose trace contained a two-hop loop.
    pub with_two_hop: usize,
    /// Trials whose trace contained a loop longer than two hops.
    pub with_longer: usize,
    /// Trials that ended in a detected persistent loop.
    pub persistent: usize,
}

impl LoopStats {
    /// Two-hop loop rate per trial.
    pub fn two_hop_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.with_two_hop as f64 / self.attempts as f64
        }
    }

    /// Longer-loop rate per trial.
    pub fn longer_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.with_longer as f64 / self.attempts as f64
        }
    }
}

/// Run the loop-frequency experiment.
pub fn loop_experiment(g: &Graph, cfg: &LoopConfig) -> Vec<LoopStats> {
    let kmax = cfg.ks.iter().copied().max().expect("at least one k");
    let mut scfg = cfg.splicing.clone();
    scfg.k = kmax;
    let opts = ForwarderOptions::default();

    let per_trial: Vec<Vec<LoopStats>> = run_trials(cfg.trials, cfg.seed, |_, trial_seed| {
        let splicing = Splicing::build(g, &scfg, trial_seed);
        let mut rng = StdRng::seed_from_u64(trial_seed ^ 0xabcdef1234567890);
        let mask = FailureModel::IidLinks { p: cfg.p }.sample(g, &mut rng);
        let mut out: Vec<LoopStats> = cfg
            .ks
            .iter()
            .map(|&k| LoopStats {
                k,
                ..Default::default()
            })
            .collect();

        for (ki, &k) in cfg.ks.iter().enumerate() {
            if k < 2 {
                continue; // single slice: headers cannot switch, no loops
            }
            let prefix = splicing.prefix(k);
            let fwd = Forwarder::new(&prefix, g, &mask);
            for t in g.nodes() {
                for s in g.nodes() {
                    if s == t {
                        continue;
                    }
                    // Only broken default paths enter recovery.
                    let default = fwd.forward(s, t, ForwardingBits::stay_in_slice(0, k), &opts);
                    if default.is_delivered() {
                        continue;
                    }
                    let header = cfg.strategy.generate(0, cfg.header_hops, k, &mut rng);
                    let outcome = fwd.forward(s, t, header, &opts);
                    let st = &mut out[ki];
                    st.attempts += 1;
                    let loops = outcome.trace().loop_lengths();
                    if loops.contains(&2) {
                        st.with_two_hop += 1;
                    }
                    if loops.iter().any(|&l| l > 2) {
                        st.with_longer += 1;
                    }
                    if matches!(outcome, ForwardingOutcome::PersistentLoop(_))
                        || matches!(outcome, ForwardingOutcome::TtlExceeded(_))
                    {
                        st.persistent += 1;
                    }
                }
            }
        }
        out
    });

    // Merge.
    cfg.ks
        .iter()
        .enumerate()
        .map(|(ki, &k)| {
            let mut m = LoopStats {
                k,
                ..Default::default()
            };
            for trial in &per_trial {
                m.attempts += trial[ki].attempts;
                m.with_two_hop += trial[ki].with_two_hop;
                m.with_longer += trial[ki].with_longer;
                m.persistent += trial[ki].persistent;
            }
            m
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_topology::abilene::abilene;

    #[test]
    fn loops_are_rare_and_rates_bounded() {
        let g = abilene().graph();
        let cfg = LoopConfig::paper(vec![2, 5], 30, 3);
        let out = loop_experiment(&g, &cfg);
        assert_eq!(out.len(), 2);
        for st in &out {
            assert!(st.with_two_hop <= st.attempts);
            assert!((0.0..=1.0).contains(&st.two_hop_rate()));
            assert!(st.longer_rate() <= 0.5, "long loops should not dominate");
        }
    }

    #[test]
    fn no_revisit_strategy_eliminates_persistent_loops() {
        let g = abilene().graph();
        let mut cfg = LoopConfig::paper(vec![5], 30, 3);
        cfg.strategy = HeaderStrategy::NoRevisit { flip_prob: 0.5 };
        let out = loop_experiment(&g, &cfg);
        assert_eq!(
            out[0].persistent, 0,
            "no-revisit headers cannot loop persistently"
        );
    }

    #[test]
    fn k1_trivially_loop_free() {
        let g = abilene().graph();
        let cfg = LoopConfig::paper(vec![1], 10, 3);
        let out = loop_experiment(&g, &cfg);
        assert_eq!(out[0].attempts, 0);
        assert_eq!(out[0].two_hop_rate(), 0.0);
    }

    #[test]
    fn deterministic() {
        let g = abilene().graph();
        let cfg = LoopConfig::paper(vec![2], 15, 8);
        assert_eq!(loop_experiment(&g, &cfg), loop_experiment(&g, &cfg));
    }
}
