//! Splicing during protocol convergence (§6's open question, answered
//! by measurement).
//!
//! While link-state routing reconverges after a failure, routers run a
//! mix of old and new tables: destination-based forwarding suffers
//! blackholes and transient micro-loops ([`splice_routing::dynamics`]).
//! Path splicing changes the picture: a router whose next hop is dead
//! deflects into an alternate slice *whose stale tables are still
//! perfectly usable* — no reconvergence required. This experiment walks
//! every pair over the mixed-table network, with and without splicing
//! deflection, and integrates pair-downtime over the episode.

use splice_core::slices::{RepairEvent, Splicing, SplicingConfig};
use splice_graph::{EdgeId, EdgeMask, Graph, NodeId};
use splice_routing::dynamics::{failure_timeline, DynamicsConfig, TransientCensus};
use splice_routing::fib::RoutingTables;
use std::collections::HashSet;

/// Per-slice mixed-table state for one convergence episode: every slice
/// reconverges on the same timeline (routers batch their SPF runs).
pub struct SplicedTimeline {
    /// Shared install times and the failed link (from slice 0's view).
    pub base: splice_routing::dynamics::ConvergenceTimeline,
    /// Per-slice (old, new) tables.
    pub per_slice: Vec<(RoutingTables, RoutingTables)>,
}

impl SplicedTimeline {
    /// Next hop of `r` toward `dst` in `slice` at time `t`.
    fn next_hop_at(
        &self,
        slice: usize,
        r: NodeId,
        dst: NodeId,
        t: f64,
    ) -> Option<(NodeId, EdgeId)> {
        let (old, new) = &self.per_slice[slice];
        let tables = if self.base.is_updated(r, t) { new } else { old };
        tables.fib(r).entries[dst.index()]
    }
}

/// Build the spliced convergence state for failing `e`.
pub fn spliced_timeline(
    g: &Graph,
    latencies: &[f64],
    splicing: &Splicing,
    e: EdgeId,
    cfg: &DynamicsConfig,
) -> SplicedTimeline {
    let base = failure_timeline(g, latencies, splicing.weights(0), e, cfg);
    // The post-convergence tables come from delta-SPF repair, not k·n
    // fresh Dijkstras — the repaired arena is next-hop-identical to a
    // from-scratch rebuild on the failed topology, so the sweep's numbers
    // are unchanged while each episode only pays for the failed link's
    // dirty subtrees.
    let repaired = splicing.repair(g, &RepairEvent::LinkFailure(e));
    let per_slice = (0..splicing.k())
        .map(|i| (splicing.tables(i), repaired.tables(i)))
        .collect();
    SplicedTimeline { base, per_slice }
}

/// Walk every pair at time `t` with splicing deflection over the mixed
/// tables: a dead next hop triggers a switch to the first alternate
/// slice with a live next hop (network-based recovery on stale state).
pub fn transient_outcomes_with_splicing(
    g: &Graph,
    tl: &SplicedTimeline,
    t: f64,
) -> TransientCensus {
    let mask = EdgeMask::from_failed(g.edge_count(), &[tl.base.failed]);
    let k = tl.per_slice.len();
    let mut census = TransientCensus::default();
    for dst in g.nodes() {
        for src in g.nodes() {
            if src == dst {
                continue;
            }
            let mut at = src;
            let mut slice = 0usize;
            let mut seen: HashSet<(NodeId, usize)> = HashSet::new();
            let fate = loop {
                if at == dst {
                    break Fate::Delivered;
                }
                if !seen.insert((at, slice)) {
                    break Fate::MicroLoop;
                }
                let usable = |s: usize| {
                    tl.next_hop_at(s, at, dst, t)
                        .filter(|&(_, e)| mask.is_up(e))
                };
                let step = usable(slice).map(|h| (slice, h)).or_else(|| {
                    (0..k)
                        .filter(|&s| s != slice)
                        .find_map(|s| usable(s).map(|h| (s, h)))
                });
                match step {
                    Some((s, (next, _))) => {
                        slice = s;
                        at = next;
                    }
                    None => {
                        break if tl.next_hop_at(slice, at, dst, t).is_some() {
                            Fate::Blackholed
                        } else {
                            Fate::NoRoute
                        }
                    }
                }
            };
            match fate {
                Fate::Delivered => census.delivered += 1,
                Fate::Blackholed => census.blackholed += 1,
                Fate::MicroLoop => census.microlooped += 1,
                Fate::NoRoute => census.no_route += 1,
            }
        }
    }
    census
}

enum Fate {
    Delivered,
    Blackholed,
    MicroLoop,
    NoRoute,
}

/// Downtime integral (pair·ms) over the episode, with splicing deflection.
pub fn downtime_pair_ms_with_splicing(g: &Graph, tl: &SplicedTimeline) -> f64 {
    let times = tl.base.sample_times();
    let mut total = 0.0;
    for w in times.windows(2) {
        let census = transient_outcomes_with_splicing(g, tl, w[0]);
        let down = census.blackholed + census.microlooped;
        total += down as f64 * (w[1] - w[0]);
    }
    total
}

/// Compare plain vs spliced transient downtime for every single-link
/// failure; returns `(plain, spliced)` pair·ms per link.
pub fn downtime_sweep(
    g: &Graph,
    latencies: &[f64],
    splicing_cfg: &SplicingConfig,
    cfg: &DynamicsConfig,
    seed: u64,
) -> Vec<(EdgeId, f64, f64)> {
    let splicing = Splicing::build(g, splicing_cfg, seed);
    g.edge_ids()
        .map(|e| {
            let plain_tl = failure_timeline(g, latencies, splicing.weights(0), e, cfg);
            let plain = splice_routing::dynamics::downtime_pair_ms(g, &plain_tl);
            let spliced_tl = spliced_timeline(g, latencies, &splicing, e, cfg);
            let spliced = downtime_pair_ms_with_splicing(g, &spliced_tl);
            (e, plain, spliced)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_topology::abilene::abilene;

    fn dyncfg() -> DynamicsConfig {
        DynamicsConfig::default()
    }

    #[test]
    fn splicing_reduces_transient_downtime() {
        let topo = abilene();
        let g = topo.graph();
        let sweep = downtime_sweep(
            &g,
            &topo.latencies(),
            &SplicingConfig::degree_based(5, 0.0, 3.0),
            &dyncfg(),
            3,
        );
        assert_eq!(sweep.len(), g.edge_count());
        let plain: f64 = sweep.iter().map(|&(_, p, _)| p).sum();
        let spliced: f64 = sweep.iter().map(|&(_, _, s)| s).sum();
        assert!(plain > 0.0);
        assert!(
            spliced < plain,
            "splicing must cut transient downtime: {spliced} vs {plain}"
        );
    }

    #[test]
    fn k1_splicing_changes_nothing() {
        let topo = abilene();
        let g = topo.graph();
        let sweep = downtime_sweep(
            &g,
            &topo.latencies(),
            &SplicingConfig::degree_based(1, 0.0, 3.0),
            &dyncfg(),
            3,
        );
        for (e, plain, spliced) in sweep {
            assert!(
                (plain - spliced).abs() < 1e-9,
                "{e:?}: k=1 deflection should be a no-op ({plain} vs {spliced})"
            );
        }
    }

    #[test]
    fn after_convergence_spliced_census_is_clean() {
        let topo = abilene();
        let g = topo.graph();
        let splicing = Splicing::build(&g, &SplicingConfig::degree_based(3, 0.0, 3.0), 1);
        let e = EdgeId(0);
        let tl = spliced_timeline(&g, &topo.latencies(), &splicing, e, &dyncfg());
        let census = transient_outcomes_with_splicing(&g, &tl, tl.base.converged_at() + 1.0);
        let n = g.node_count();
        assert_eq!(census.delivered, n * (n - 1), "{census:?}");
    }
}
