//! Parallel Monte-Carlo trial execution.
//!
//! Trials are embarrassingly parallel and individually seeded, so results
//! are bit-identical regardless of thread count. Built on crossbeam's
//! scoped threads (the approved concurrency substrate); a work index is
//! handed out through an atomic counter so stragglers don't serialize the
//! tail.

use crate::telemetry::TrialTelemetry;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

pub use splice_core::hash::splitmix64;

/// Derive the seed of trial `index` in RNG stream `stream` of experiment
/// `base_seed`.
///
/// All per-trial seeding funnels through this one mixer. The naive
/// alternatives collide: `base + index` makes adjacent trials of one
/// stream overlap a sibling stream based at `base ^ stream` (e.g. the
/// k-sweep streams), silently correlating "independent" samples. Chained
/// SplitMix64 avalanches each component, so distinct `(base, stream,
/// index)` triples give unrelated seeds.
pub fn derive_seed(base_seed: u64, stream: u64, index: u64) -> u64 {
    let mut h = splitmix64(base_seed);
    h = splitmix64(h ^ stream);
    splitmix64(h ^ index)
}

/// Run `trials` independent jobs in stream 0, each seeded via
/// [`derive_seed`], and collect results in trial order.
///
/// `job(trial_index, trial_seed)` must be pure given its seed.
pub fn run_trials<T, F>(trials: usize, base_seed: u64, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    run_trials_stream(trials, base_seed, 0, job)
}

/// [`run_trials`] in a named RNG stream: experiments that run several
/// trial batches from one experiment seed (one per `k`, per failure
/// probability, ...) give each batch its own `stream` so no two batches
/// share a trial seed.
pub fn run_trials_stream<T, F>(trials: usize, base_seed: u64, stream: u64, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    run_trials_stream_with_threads(trials, base_seed, stream, threads, job)
}

/// [`run_trials`] with an explicit worker count. Results are bit-identical
/// for any `threads >= 1` — the thread pool only changes who computes a
/// trial, never its seed or its slot.
pub fn run_trials_with_threads<T, F>(
    trials: usize,
    base_seed: u64,
    threads: usize,
    job: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    run_trials_stream_with_threads(trials, base_seed, 0, threads, job)
}

/// [`run_trials_stream`] with an explicit worker count.
pub fn run_trials_stream_with_threads<T, F>(
    trials: usize,
    base_seed: u64,
    stream: u64,
    threads: usize,
    job: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    let threads = threads.max(1).min(trials.max(1));
    let mut results: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    if trials == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        return (0..trials)
            .map(|i| job(i, derive_seed(base_seed, stream, i as u64)))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<parking_lot::Mutex<&mut Option<T>>> =
        results.iter_mut().map(parking_lot::Mutex::new).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let out = job(i, derive_seed(base_seed, stream, i as u64));
                **slots[i].lock() = Some(out);
            });
        }
    })
    .expect("worker panicked");
    drop(slots);
    results
        .into_iter()
        .map(|r| r.expect("every trial filled"))
        .collect()
}

/// [`run_trials`] with optional instrumentation: per-trial wall-time
/// histogram samples, a completed-trials counter, and (when enabled) a
/// periodic stderr heartbeat with throughput.
///
/// With `None` this is exactly [`run_trials`]. With `Some` the job is
/// wrapped in timing only — seeding and slot order are untouched, so the
/// returned vector is bit-identical either way.
pub fn run_trials_instrumented<T, F>(
    trials: usize,
    base_seed: u64,
    telemetry: Option<&TrialTelemetry>,
    job: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    let Some(tel) = telemetry else {
        return run_trials(trials, base_seed, job);
    };
    let started = Instant::now();
    let done = AtomicU64::new(0);
    let total = trials as u64;
    run_trials(trials, base_seed, move |i, seed| {
        let t0 = Instant::now();
        let out = job(i, seed);
        tel.trial_seconds.record_duration(t0.elapsed());
        tel.trials_total.inc();
        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(every) = tel.heartbeat_every {
            if finished % every == 0 || finished == total {
                let rate = finished as f64 / started.elapsed().as_secs_f64().max(1e-9);
                eprintln!("[splice-sim] {finished}/{total} trials ({rate:.1}/s)");
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_trial_order() {
        let out = run_trials(100, 7, |i, seed| (i, seed));
        for (i, &(idx, seed)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(seed, derive_seed(7, 0, i as u64));
        }
    }

    #[test]
    fn streams_do_not_share_trial_seeds() {
        // The regression this seeding exists to prevent: with `base +
        // index` trial seeds and `base ^ stream` stream bases, trial
        // seeds of nearby streams collide (e.g. stream 1 trial 0 ==
        // stream 0 trial 1). Distinct (stream, index) pairs must now give
        // distinct seeds.
        let mut seen = std::collections::HashSet::new();
        for stream in 0..16u64 {
            for index in 0..64u64 {
                assert!(
                    seen.insert(derive_seed(42, stream, index)),
                    "seed collision at stream {stream} index {index}"
                );
            }
        }
        // And the whole batch reseeds when the experiment seed moves.
        assert_ne!(derive_seed(1, 0, 0), derive_seed(2, 0, 0));
        // Deterministic: same triple, same seed.
        assert_eq!(derive_seed(9, 3, 5), derive_seed(9, 3, 5));
    }

    #[test]
    fn stream_zero_is_the_default() {
        let plain = run_trials(32, 11, |i, seed| (i, seed));
        let stream0 = run_trials_stream(32, 11, 0, |i, seed| (i, seed));
        assert_eq!(plain, stream0);
        let stream1 = run_trials_stream(32, 11, 1, |i, seed| (i, seed));
        assert_ne!(plain, stream1, "streams must differ");
    }

    #[test]
    fn deterministic_across_runs() {
        let f = |i: usize, seed: u64| seed.wrapping_mul(i as u64 + 1) % 1013;
        let a = run_trials(256, 42, f);
        let b = run_trials(256, 42, f);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_and_one_trials() {
        assert!(run_trials(0, 1, |i, _| i).is_empty());
        assert_eq!(run_trials(1, 5, |_, s| s), vec![derive_seed(5, 0, 0)]);
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let f = |i: usize, seed: u64| seed.rotate_left((i % 13) as u32);
        let one = run_trials_with_threads(128, 9, 1, f);
        for threads in [2, 4, 8] {
            assert_eq!(run_trials_with_threads(128, 9, threads, f), one);
        }
    }

    #[test]
    fn instrumentation_does_not_change_results() {
        use splice_telemetry::Registry;
        let f = |i: usize, seed: u64| seed.wrapping_mul(i as u64 | 1);
        let plain = run_trials_instrumented(64, 3, None, f);
        let reg = Registry::new();
        let tel = TrialTelemetry::register(&reg);
        let instrumented = run_trials_instrumented(64, 3, Some(&tel), f);
        assert_eq!(plain, instrumented);
        assert_eq!(tel.trials_total.get(), 64);
        assert_eq!(tel.trial_seconds.count(), 64);
    }

    #[test]
    fn actually_parallel_work_is_correct() {
        // Heavier jobs to exercise the scheduler.
        let out = run_trials(64, 0, |i, _| {
            let mut acc = 0u64;
            for j in 0..10_000u64 {
                acc = acc.wrapping_add(j ^ i as u64);
            }
            acc
        });
        let serial: Vec<u64> = (0..64)
            .map(|i| {
                let mut acc = 0u64;
                for j in 0..10_000u64 {
                    acc = acc.wrapping_add(j ^ i as u64);
                }
                acc
            })
            .collect();
        assert_eq!(out, serial);
    }
}
