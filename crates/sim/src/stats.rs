//! Summary statistics for Monte-Carlo output.

/// Mean of a sample (NaN for empty input is avoided by returning 0).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample standard deviation (0 for fewer than two samples).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// The `p`-th percentile (0 < p ≤ 1) by the nearest-rank method.
/// Returns 0 for empty input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Half-width of a 95% normal-approximation confidence interval on the
/// mean.
pub fn ci95_halfwidth(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * stddev(xs) / (xs.len() as f64).sqrt()
}

/// A labelled (x, y) series — one curve of a figure.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Series {
    /// Legend label ("k = 3 (recovery)").
    pub label: String,
    /// The curve's points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Construct from label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The y value at the given x (exact match), if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-12)
            .map(|&(_, y)| y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.138089935299395).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(ci95_halfwidth(&[1.0]), 0.0);
    }

    #[test]
    fn percentiles() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.5), 5.0);
        assert_eq!(percentile(&xs, 0.99), 10.0);
        assert_eq!(percentile(&xs, 0.1), 1.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few = vec![1.0, 2.0, 3.0, 4.0];
        let many: Vec<f64> = few.iter().cycle().take(400).cloned().collect();
        assert!(ci95_halfwidth(&many) < ci95_halfwidth(&few));
    }

    #[test]
    fn series_lookup() {
        let s = Series::new("k = 2", vec![(0.01, 0.1), (0.02, 0.2)]);
        assert_eq!(s.y_at(0.02), Some(0.2));
        assert_eq!(s.y_at(0.03), None);
        assert_eq!(s.label, "k = 2");
    }
}
