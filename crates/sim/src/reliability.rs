//! The reliability experiment (Figure 3).
//!
//! For each failure probability `p` and slice count `k`, measure the mean
//! fraction of ordered source–destination pairs that path splicing cannot
//! connect, and compare with the *best possible* — the fraction of pairs
//! disconnected in the underlying graph itself (no routing scheme can do
//! better, Definition 2.1).
//!
//! Faithful to §4.1's method: per trial, one failure set per `p` is drawn
//! and shared across **all** values of `k` (common random numbers), and
//! slice `i`'s weights are independent of `k`, so the `k = 2` spliced
//! graph is literally the `k = 1` graph plus one tree.

use crate::failure::FailureModel;
use crate::parallel::run_trials_instrumented;
use crate::stats::Series;
use crate::telemetry::ExperimentTelemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_core::slices::{Splicing, SplicingConfig};
use splice_graph::traversal::disconnected_pairs;
use splice_graph::Graph;

/// Which notion of "a spliced path exists" an experiment uses.
///
/// The paper's simulator and Theorem A.1 reason about the **undirected
/// union** of the k trees ("taking the union of k link-perturbed
/// shortest-path trees … the connectivity of H"); actual forwarding can
/// only follow next hops *toward* the destination, a strictly directed
/// relation. Union is therefore an upper bound on what the data plane
/// can deliver — our reproduction exposes both.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SpliceSemantics {
    /// The paper's accounting: undirected connectivity of the union of
    /// trees rooted at the destination.
    #[default]
    UnionGraph,
    /// Operationally exact: directed reachability over per-slice next
    /// hops (what the forwarding bits can actually exercise).
    Directed,
}

/// Configuration of a reliability run.
#[derive(Clone, Debug)]
pub struct ReliabilityConfig {
    /// Slice counts to evaluate (e.g. the paper's `[1, 2, 3, 4, 5, 10]`).
    pub ks: Vec<usize>,
    /// Failure probabilities (the paper sweeps 0..0.1).
    pub ps: Vec<f64>,
    /// Monte-Carlo trials per point (the paper uses 1000).
    pub trials: usize,
    /// Splicing configuration template; its `k` is overridden by
    /// `max(ks)`.
    pub splicing: SplicingConfig,
    /// Spliced-path semantics (paper-faithful union by default).
    pub semantics: SpliceSemantics,
    /// Base seed.
    pub seed: u64,
}

impl ReliabilityConfig {
    /// The paper's Figure 3 setup (degree-based `Weight(0,3)`,
    /// k ∈ {1,2,3,4,5,10}, p ∈ {0.005, 0.01, …, 0.1}).
    pub fn figure3(trials: usize, seed: u64) -> ReliabilityConfig {
        ReliabilityConfig {
            ks: vec![1, 2, 3, 4, 5, 10],
            ps: (1..=20).map(|i| i as f64 * 0.005).collect(),
            trials,
            splicing: SplicingConfig::degree_based(10, 0.0, 3.0),
            semantics: SpliceSemantics::UnionGraph,
            seed,
        }
    }
}

/// Result: one disconnection curve per `k`, plus the best-possible curve.
#[derive(Clone, Debug)]
pub struct ReliabilityCurves {
    /// `curves[i]` corresponds to `ks[i]`.
    pub curves: Vec<Series>,
    /// The underlying graph's own disconnection curve.
    pub best_possible: Series,
    /// Echo of the evaluated `ks`.
    pub ks: Vec<usize>,
}

impl ReliabilityCurves {
    /// The curve for a specific `k`, if it was evaluated.
    pub fn for_k(&self, k: usize) -> Option<&Series> {
        self.ks
            .iter()
            .position(|&kk| kk == k)
            .map(|i| &self.curves[i])
    }
}

/// Run the reliability experiment.
pub fn reliability_experiment(g: &Graph, cfg: &ReliabilityConfig) -> ReliabilityCurves {
    reliability_experiment_instrumented(g, cfg, None)
}

/// [`reliability_experiment`] with optional telemetry: per-trial wall
/// times, SPF/FIB build histograms, and a heartbeat when configured.
/// Curves are bit-identical with telemetry on or off.
pub fn reliability_experiment_instrumented(
    g: &Graph,
    cfg: &ReliabilityConfig,
    telemetry: Option<&ExperimentTelemetry>,
) -> ReliabilityCurves {
    let kmax = cfg.ks.iter().copied().max().expect("at least one k");
    let mut splicing_cfg = cfg.splicing.clone();
    splicing_cfg.k = kmax;
    let n = g.node_count();
    let pairs = (n * (n - 1)) as f64;

    // Per trial: a matrix [p][k] of disconnected fractions + best possible.
    let trial_tel = telemetry.map(|t| &t.trials);
    let per_trial = run_trials_instrumented(cfg.trials, cfg.seed, trial_tel, |_, trial_seed| {
        let splicing =
            Splicing::build_with_telemetry(g, &splicing_cfg, trial_seed, telemetry.map(|t| &t.spf));
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(cfg.ps.len());
        let mut best: Vec<f64> = Vec::with_capacity(cfg.ps.len());
        for (pi, &p) in cfg.ps.iter().enumerate() {
            // Distinct RNG stream per (trial, p); shared across k.
            let mut rng = StdRng::seed_from_u64(
                trial_seed ^ (0xd1b54a32d192ed03u64.wrapping_mul(pi as u64 + 1)),
            );
            let mask = FailureModel::IidLinks { p }.sample(g, &mut rng);
            let row = cfg
                .ks
                .iter()
                .map(|&k| match cfg.semantics {
                    SpliceSemantics::UnionGraph => {
                        splicing.union_disconnected_pairs(k, &mask) as f64 / pairs
                    }
                    SpliceSemantics::Directed => {
                        splicing.disconnected_pairs(k, &mask) as f64 / pairs
                    }
                })
                .collect();
            rows.push(row);
            best.push(disconnected_pairs(g, &mask) as f64 / pairs);
        }
        (rows, best)
    });

    // Average over trials.
    let mut curves: Vec<Series> = cfg
        .ks
        .iter()
        .map(|&k| {
            Series::new(
                if k == 1 {
                    "k = 1 (normal)".to_string()
                } else {
                    format!("k = {k}")
                },
                Vec::new(),
            )
        })
        .collect();
    let mut best_points = Vec::new();
    for (pi, &p) in cfg.ps.iter().enumerate() {
        for (ki, curve) in curves.iter_mut().enumerate() {
            let avg =
                per_trial.iter().map(|(rows, _)| rows[pi][ki]).sum::<f64>() / cfg.trials as f64;
            curve.points.push((p, avg));
        }
        let avg_best = per_trial.iter().map(|(_, best)| best[pi]).sum::<f64>() / cfg.trials as f64;
        best_points.push((p, avg_best));
    }

    ReliabilityCurves {
        curves,
        best_possible: Series::new("Best possible", best_points),
        ks: cfg.ks.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_topology::abilene::abilene;

    fn quick_cfg() -> ReliabilityConfig {
        ReliabilityConfig {
            ks: vec![1, 2, 5],
            ps: vec![0.02, 0.06, 0.1],
            trials: 60,
            splicing: SplicingConfig::degree_based(5, 0.0, 3.0),
            semantics: SpliceSemantics::UnionGraph,
            seed: 11,
        }
    }

    #[test]
    fn union_semantics_at_least_as_reliable_as_directed() {
        let g = abilene().graph();
        let union = reliability_experiment(&g, &quick_cfg());
        let directed = reliability_experiment(
            &g,
            &ReliabilityConfig {
                semantics: SpliceSemantics::Directed,
                ..quick_cfg()
            },
        );
        for (cu, cd) in union.curves.iter().zip(&directed.curves) {
            for (pu, pd) in cu.points.iter().zip(&cd.points) {
                assert!(pu.1 <= pd.1 + 1e-12, "union must not disconnect more");
            }
        }
    }

    #[test]
    fn more_slices_never_hurt() {
        let g = abilene().graph();
        let out = reliability_experiment(&g, &quick_cfg());
        for (pi, _) in out.best_possible.points.iter().enumerate() {
            let y1 = out.curves[0].points[pi].1;
            let y2 = out.curves[1].points[pi].1;
            let y5 = out.curves[2].points[pi].1;
            assert!(y2 <= y1 + 1e-12, "k=2 worse than k=1 at index {pi}");
            assert!(y5 <= y2 + 1e-12, "k=5 worse than k=2 at index {pi}");
        }
    }

    #[test]
    fn splicing_never_beats_best_possible() {
        let g = abilene().graph();
        let out = reliability_experiment(&g, &quick_cfg());
        for curve in &out.curves {
            for (pt, best) in curve.points.iter().zip(&out.best_possible.points) {
                assert!(
                    pt.1 >= best.1 - 1e-12,
                    "{}: {} < best possible {}",
                    curve.label,
                    pt.1,
                    best.1
                );
            }
        }
    }

    #[test]
    fn disconnection_grows_with_p() {
        let g = abilene().graph();
        let out = reliability_experiment(&g, &quick_cfg());
        let c1 = &out.curves[0].points;
        assert!(c1[0].1 <= c1[1].1 + 1e-9);
        assert!(c1[1].1 <= c1[2].1 + 1e-9);
    }

    #[test]
    fn k1_label_and_lookup() {
        let g = abilene().graph();
        let out = reliability_experiment(&g, &quick_cfg());
        assert_eq!(out.for_k(1).unwrap().label, "k = 1 (normal)");
        assert_eq!(out.for_k(5).unwrap().label, "k = 5");
        assert!(out.for_k(7).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = abilene().graph();
        let a = reliability_experiment(&g, &quick_cfg());
        let b = reliability_experiment(&g, &quick_cfg());
        for (ca, cb) in a.curves.iter().zip(&b.curves) {
            assert_eq!(ca.points, cb.points);
        }
    }

    #[test]
    fn zero_p_means_zero_disconnection() {
        let g = abilene().graph();
        let mut cfg = quick_cfg();
        cfg.ps = vec![0.0];
        cfg.trials = 5;
        let out = reliability_experiment(&g, &cfg);
        for curve in &out.curves {
            assert_eq!(curve.points[0].1, 0.0);
        }
        assert_eq!(out.best_possible.points[0].1, 0.0);
    }
}
