//! Experiment instrumentation: trial timing, throughput, heartbeats.
//!
//! Telemetry here is strictly observational. Trial seeding, RNG streams
//! and result ordering are untouched, so an instrumented run produces
//! bit-identical curves to a plain one — `tests/determinism.rs` holds
//! that property across thread counts.

use splice_routing::spf::SpfTelemetry;
use splice_telemetry::{Counter, Histogram, Registry};
use std::sync::Arc;

/// Handles the Monte-Carlo driver records into: one histogram sample and
/// one counter increment per finished trial.
#[derive(Clone, Debug)]
pub struct TrialTelemetry {
    /// Wall time of one full trial closure.
    pub trial_seconds: Arc<Histogram>,
    /// Trials completed.
    pub trials_total: Arc<Counter>,
    /// Print a stderr progress line every this many trials (off = never).
    pub heartbeat_every: Option<u64>,
}

impl TrialTelemetry {
    /// Register (or re-acquire) the trial metrics in `registry`.
    pub fn register(registry: &Registry) -> TrialTelemetry {
        TrialTelemetry {
            trial_seconds: registry.histogram_seconds(
                "splice_trial_duration_seconds",
                "Wall time of one Monte-Carlo trial",
            ),
            trials_total: registry.counter("splice_trials_total", "Monte-Carlo trials completed"),
            heartbeat_every: None,
        }
    }

    /// Enable the stderr heartbeat: a `done/total (rate/s)` line every
    /// `every` trials (clamped to at least 1).
    pub fn with_heartbeat(mut self, every: u64) -> TrialTelemetry {
        self.heartbeat_every = Some(every.max(1));
        self
    }
}

/// Everything one experiment run records: per-trial wall times plus the
/// SPF/FIB build histograms the control plane fills in.
#[derive(Clone, Debug)]
pub struct ExperimentTelemetry {
    /// Per-slice SPF and FIB-build timing (control plane).
    pub spf: SpfTelemetry,
    /// Per-trial timing and throughput (Monte-Carlo driver).
    pub trials: TrialTelemetry,
}

impl ExperimentTelemetry {
    /// Register (or re-acquire) the full experiment metric set.
    pub fn register(registry: &Registry) -> ExperimentTelemetry {
        ExperimentTelemetry {
            spf: SpfTelemetry::register(registry),
            trials: TrialTelemetry::register(registry),
        }
    }

    /// Like [`ExperimentTelemetry::register`], but the SPF arena-size and
    /// repair histograms carry `strategy` as a label (see
    /// [`SpfTelemetry::register_for_strategy`]), so one registry can hold
    /// several strategies' control-plane metrics side by side.
    pub fn register_for_strategy(registry: &Registry, strategy: &str) -> ExperimentTelemetry {
        ExperimentTelemetry {
            spf: SpfTelemetry::register_for_strategy(registry, strategy),
            trials: TrialTelemetry::register(registry),
        }
    }

    /// Enable the trial heartbeat (see [`TrialTelemetry::with_heartbeat`]).
    pub fn with_heartbeat(mut self, every: u64) -> ExperimentTelemetry {
        self.trials = self.trials.with_heartbeat(every);
        self
    }

    /// Attach a flight recorder: repair triggers and per-plane repairs
    /// land in it alongside the histograms (see
    /// [`SpfTelemetry::with_flight`]).
    pub fn with_flight(mut self, flight: splice_telemetry::FlightRecorder) -> ExperimentTelemetry {
        self.spf = self.spf.with_flight(flight);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_trial_metrics() {
        let reg = Registry::new();
        let tel = TrialTelemetry::register(&reg);
        tel.trials_total.add(3);
        tel.trial_seconds.record(1_000_000); // 1 ms in ns
        let text = reg.render_prometheus();
        assert!(text.contains("splice_trials_total 3"));
        assert!(text.contains("splice_trial_duration_seconds_count 1"));
        assert!(tel.heartbeat_every.is_none(), "heartbeat is opt-in");
    }

    #[test]
    fn heartbeat_clamps_to_one() {
        let reg = Registry::new();
        let tel = TrialTelemetry::register(&reg).with_heartbeat(0);
        assert_eq!(tel.heartbeat_every, Some(1));
    }

    #[test]
    fn experiment_bundle_shares_the_registry() {
        let reg = Registry::new();
        let a = ExperimentTelemetry::register(&reg);
        let b = ExperimentTelemetry::register(&reg);
        a.trials.trials_total.inc();
        assert_eq!(b.trials.trials_total.get(), 1);
        a.spf.spf_seconds.record(10);
        assert_eq!(b.spf.spf_seconds.count(), 1);
    }
}
