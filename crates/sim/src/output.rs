//! Result serialization: CSV for plotting, JSON for archival, and fixed-
//! width tables for the terminal.

use crate::stats::Series;
use std::fmt;
use std::io::Write;
use std::path::Path;

/// A family of series cannot be rendered as one CSV table.
#[derive(Clone, Debug, PartialEq)]
pub enum CsvError {
    /// A series has a different number of points than the first one.
    LengthMismatch {
        /// Label of the offending series.
        label: String,
        /// Points in the first series.
        expected: usize,
        /// Points in the offending series.
        found: usize,
    },
    /// A series disagrees with the first one on an x value.
    GridMismatch {
        /// Label of the offending series.
        label: String,
        /// Row index of the disagreement.
        index: usize,
        /// x in the first series.
        expected: f64,
        /// x in the offending series.
        found: f64,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::LengthMismatch {
                label,
                expected,
                found,
            } => write!(
                f,
                "series {label} has a different x grid: {found} points where {expected} expected"
            ),
            CsvError::GridMismatch {
                label,
                index,
                expected,
                found,
            } => write!(
                f,
                "series {label} has a different x grid: x[{index}] = {found}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for CsvError {}

/// Render a family of series as CSV: first column is x, one column per
/// series. All series must share the same x grid; a mismatch is reported
/// as a [`CsvError`] instead of corrupting the table.
pub fn series_to_csv(series: &[Series]) -> Result<String, CsvError> {
    let mut out = String::from("x");
    for s in series {
        out.push(',');
        out.push_str(&s.label.replace(',', ";"));
    }
    out.push('\n');
    if series.is_empty() {
        return Ok(out);
    }
    let expected = series[0].points.len();
    for s in series {
        if s.points.len() != expected {
            return Err(CsvError::LengthMismatch {
                label: s.label.clone(),
                expected,
                found: s.points.len(),
            });
        }
    }
    for (i, &(x, _)) in series[0].points.iter().enumerate() {
        out.push_str(&format!("{x}"));
        for s in series {
            let (sx, sy) = s.points[i];
            if (sx - x).abs() >= 1e-12 {
                return Err(CsvError::GridMismatch {
                    label: s.label.clone(),
                    index: i,
                    expected: x,
                    found: sx,
                });
            }
            out.push_str(&format!(",{sy}"));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Write CSV text to a file, creating parent directories.
pub fn write_text(path: impl AsRef<Path>, text: &str) -> std::io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(text.as_bytes())
}

/// Serialize any `Serialize` value as pretty JSON to a file.
pub fn write_json<T: serde::Serialize>(path: impl AsRef<Path>, value: &T) -> std::io::Result<()> {
    let text = serde_json::to_string_pretty(value).expect("serializable");
    write_text(path, &text)
}

/// Render a fixed-width terminal table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_layout() {
        let series = vec![
            Series::new("k = 1", vec![(0.01, 0.1), (0.02, 0.2)]),
            Series::new("k = 2", vec![(0.01, 0.05), (0.02, 0.1)]),
        ];
        let csv = series_to_csv(&series).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,k = 1,k = 2");
        assert_eq!(lines[1], "0.01,0.1,0.05");
        assert_eq!(lines[2], "0.02,0.2,0.1");
    }

    #[test]
    fn mismatched_grids_rejected() {
        let series = vec![
            Series::new("a", vec![(0.01, 0.1)]),
            Series::new("b", vec![(0.05, 0.1)]),
        ];
        let err = series_to_csv(&series).unwrap_err();
        assert_eq!(
            err,
            CsvError::GridMismatch {
                label: "b".into(),
                index: 0,
                expected: 0.01,
                found: 0.05,
            }
        );
        assert!(err.to_string().contains("different x grid"));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let series = vec![
            Series::new("a", vec![(0.01, 0.1), (0.02, 0.2)]),
            Series::new("b", vec![(0.01, 0.1)]),
        ];
        let err = series_to_csv(&series).unwrap_err();
        assert_eq!(
            err,
            CsvError::LengthMismatch {
                label: "b".into(),
                expected: 2,
                found: 1,
            }
        );
        assert!(err.to_string().contains("different x grid"));
    }

    #[test]
    fn empty_series_list_is_just_a_header() {
        assert_eq!(series_to_csv(&[]).unwrap(), "x\n");
    }

    #[test]
    fn commas_in_labels_escaped() {
        let series = vec![Series::new("k = 1, normal", vec![(1.0, 2.0)])];
        let csv = series_to_csv(&series).unwrap();
        assert!(csv.lines().next().unwrap().ends_with("k = 1; normal"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("splice-sim-test");
        let path = dir.join("out.csv");
        write_text(&path, "a,b\n1,2\n").unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_write() {
        let dir = std::env::temp_dir().join("splice-sim-test-json");
        let path = dir.join("out.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains('1'));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_render() {
        let t = render_table(
            &["k", "value"],
            &[
                vec!["1".into(), "0.5".into()],
                vec!["10".into(), "0.25".into()],
            ],
        );
        assert!(t.contains("k "));
        assert!(t.lines().count() >= 4);
    }
}
