//! Result serialization: CSV for plotting, JSON for archival, and fixed-
//! width tables for the terminal.
//!
//! Experiments describe their results as structured [`Artifact`]s (a
//! series family, a table, or plain text); the engine renders each one
//! exactly once to the terminal ([`artifact_to_terminal`]) and once to
//! disk ([`write_artifact`]), so every driver shares identical CSV/JSON
//! and table formatting.

use crate::stats::Series;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A family of series cannot be rendered as one CSV table.
#[derive(Clone, Debug, PartialEq)]
pub enum CsvError {
    /// A series has a different number of points than the first one.
    LengthMismatch {
        /// Label of the offending series.
        label: String,
        /// Points in the first series.
        expected: usize,
        /// Points in the offending series.
        found: usize,
    },
    /// A series disagrees with the first one on an x value.
    GridMismatch {
        /// Label of the offending series.
        label: String,
        /// Row index of the disagreement.
        index: usize,
        /// x in the first series.
        expected: f64,
        /// x in the offending series.
        found: f64,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::LengthMismatch {
                label,
                expected,
                found,
            } => write!(
                f,
                "series {label} has a different x grid: {found} points where {expected} expected"
            ),
            CsvError::GridMismatch {
                label,
                index,
                expected,
                found,
            } => write!(
                f,
                "series {label} has a different x grid: x[{index}] = {found}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for CsvError {}

/// Render a family of series as CSV: first column is x, one column per
/// series. All series must share the same x grid; a mismatch is reported
/// as a [`CsvError`] instead of corrupting the table.
pub fn series_to_csv(series: &[Series]) -> Result<String, CsvError> {
    let mut out = String::from("x");
    for s in series {
        out.push(',');
        out.push_str(&s.label.replace(',', ";"));
    }
    out.push('\n');
    if series.is_empty() {
        return Ok(out);
    }
    let expected = series[0].points.len();
    for s in series {
        if s.points.len() != expected {
            return Err(CsvError::LengthMismatch {
                label: s.label.clone(),
                expected,
                found: s.points.len(),
            });
        }
    }
    for (i, &(x, _)) in series[0].points.iter().enumerate() {
        out.push_str(&format!("{x}"));
        for s in series {
            let (sx, sy) = s.points[i];
            if (sx - x).abs() >= 1e-12 {
                return Err(CsvError::GridMismatch {
                    label: s.label.clone(),
                    index: i,
                    expected: x,
                    found: sx,
                });
            }
            out.push_str(&format!(",{sy}"));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Write CSV text to a file, creating parent directories.
pub fn write_text(path: impl AsRef<Path>, text: &str) -> std::io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(text.as_bytes())
}

/// Serialize any `Serialize` value as pretty JSON to a file.
pub fn write_json<T: serde::Serialize>(path: impl AsRef<Path>, value: &T) -> std::io::Result<()> {
    let text = serde_json::to_string_pretty(value).expect("serializable");
    write_text(path, &text)
}

/// Render a fixed-width terminal table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// One experiment result: a file name plus the structured value that
/// renders into it (and onto the terminal).
#[derive(Clone, Debug)]
pub struct Artifact {
    /// File name relative to the run's output directory.
    pub file: String,
    /// What the file holds.
    pub kind: ArtifactKind,
}

/// The structured payload of an [`Artifact`].
#[derive(Clone, Debug)]
pub enum ArtifactKind {
    /// A family of series sharing one x grid: written as CSV (plus an
    /// optional pretty-JSON twin), shown as a fixed-width table.
    Series {
        /// The series, in column order.
        series: Vec<Series>,
        /// Header of the x column in the terminal table.
        x_label: String,
        /// Decimal places for x in the terminal table (CSV keeps full
        /// precision).
        x_decimals: usize,
        /// Also write `<stem>.json` next to the CSV.
        json_twin: bool,
    },
    /// A fixed-width table, written and shown verbatim.
    Table {
        /// Column headers.
        headers: Vec<String>,
        /// Row cells, one `Vec` per row.
        rows: Vec<Vec<String>>,
    },
    /// Preformatted text, written and shown verbatim.
    Text(String),
}

impl Artifact {
    /// A series-family artifact (CSV on disk, table on the terminal).
    pub fn series(
        file: impl Into<String>,
        x_label: impl Into<String>,
        x_decimals: usize,
        json_twin: bool,
        series: Vec<Series>,
    ) -> Artifact {
        Artifact {
            file: file.into(),
            kind: ArtifactKind::Series {
                series,
                x_label: x_label.into(),
                x_decimals,
                json_twin,
            },
        }
    }

    /// A table artifact.
    pub fn table(file: impl Into<String>, headers: &[&str], rows: Vec<Vec<String>>) -> Artifact {
        Artifact {
            file: file.into(),
            kind: ArtifactKind::Table {
                headers: headers.iter().map(|h| h.to_string()).collect(),
                rows,
            },
        }
    }

    /// A preformatted-text artifact.
    pub fn text(file: impl Into<String>, text: impl Into<String>) -> Artifact {
        Artifact {
            file: file.into(),
            kind: ArtifactKind::Text(text.into()),
        }
    }

    /// The file name without its final extension — the stem shared by a
    /// CSV, its JSON twin, and the run manifest.
    pub fn base_name(&self) -> &str {
        match self.file.rsplit_once('.') {
            Some((stem, ext)) if !stem.is_empty() && !ext.contains('/') => stem,
            _ => &self.file,
        }
    }
}

/// Why an [`Artifact`] failed to render or write.
#[derive(Debug)]
pub enum ArtifactError {
    /// The series family does not share one x grid.
    Csv(CsvError),
    /// Filesystem failure writing the artifact.
    Io(std::io::Error),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Csv(e) => write!(f, "{e}"),
            ArtifactError::Io(e) => write!(f, "writing artifact: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<CsvError> for ArtifactError {
    fn from(e: CsvError) -> ArtifactError {
        ArtifactError::Csv(e)
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> ArtifactError {
        ArtifactError::Io(e)
    }
}

/// Render an artifact for the terminal: series become the familiar
/// fixed-width table (x at `x_decimals`, y at 4 decimals), tables render
/// via [`render_table`], text passes through.
pub fn artifact_to_terminal(artifact: &Artifact) -> String {
    match &artifact.kind {
        ArtifactKind::Series {
            series,
            x_label,
            x_decimals,
            ..
        } => {
            let headers: Vec<&str> = std::iter::once(x_label.as_str())
                .chain(series.iter().map(|s| s.label.as_str()))
                .collect();
            let rows: Vec<Vec<String>> = match series.first() {
                None => Vec::new(),
                Some(first) => first
                    .points
                    .iter()
                    .enumerate()
                    .map(|(i, &(x, _))| {
                        std::iter::once(format!("{x:.prec$}", prec = x_decimals))
                            .chain(series.iter().map(|s| {
                                s.points
                                    .get(i)
                                    .map(|&(_, y)| format!("{y:.4}"))
                                    .unwrap_or_default()
                            }))
                            .collect()
                    })
                    .collect(),
            };
            render_table(&headers, &rows)
        }
        ArtifactKind::Table { headers, rows } => {
            let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
            render_table(&headers, rows)
        }
        ArtifactKind::Text(text) => text.clone(),
    }
}

/// Write an artifact under `dir`, returning every path written (a series
/// artifact with a JSON twin writes two files).
pub fn write_artifact(dir: &Path, artifact: &Artifact) -> Result<Vec<PathBuf>, ArtifactError> {
    match &artifact.kind {
        ArtifactKind::Series {
            series, json_twin, ..
        } => {
            let csv = series_to_csv(series)?;
            let path = dir.join(&artifact.file);
            write_text(&path, &csv)?;
            let mut written = vec![path];
            if *json_twin {
                let twin = dir.join(format!("{}.json", artifact.base_name()));
                write_json(&twin, series)?;
                written.push(twin);
            }
            Ok(written)
        }
        ArtifactKind::Table { .. } => {
            let path = dir.join(&artifact.file);
            write_text(&path, &artifact_to_terminal(artifact))?;
            Ok(vec![path])
        }
        ArtifactKind::Text(text) => {
            let path = dir.join(&artifact.file);
            write_text(&path, text)?;
            Ok(vec![path])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_layout() {
        let series = vec![
            Series::new("k = 1", vec![(0.01, 0.1), (0.02, 0.2)]),
            Series::new("k = 2", vec![(0.01, 0.05), (0.02, 0.1)]),
        ];
        let csv = series_to_csv(&series).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,k = 1,k = 2");
        assert_eq!(lines[1], "0.01,0.1,0.05");
        assert_eq!(lines[2], "0.02,0.2,0.1");
    }

    #[test]
    fn mismatched_grids_rejected() {
        let series = vec![
            Series::new("a", vec![(0.01, 0.1)]),
            Series::new("b", vec![(0.05, 0.1)]),
        ];
        let err = series_to_csv(&series).unwrap_err();
        assert_eq!(
            err,
            CsvError::GridMismatch {
                label: "b".into(),
                index: 0,
                expected: 0.01,
                found: 0.05,
            }
        );
        assert!(err.to_string().contains("different x grid"));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let series = vec![
            Series::new("a", vec![(0.01, 0.1), (0.02, 0.2)]),
            Series::new("b", vec![(0.01, 0.1)]),
        ];
        let err = series_to_csv(&series).unwrap_err();
        assert_eq!(
            err,
            CsvError::LengthMismatch {
                label: "b".into(),
                expected: 2,
                found: 1,
            }
        );
        assert!(err.to_string().contains("different x grid"));
    }

    #[test]
    fn empty_series_list_is_just_a_header() {
        assert_eq!(series_to_csv(&[]).unwrap(), "x\n");
    }

    #[test]
    fn commas_in_labels_escaped() {
        let series = vec![Series::new("k = 1, normal", vec![(1.0, 2.0)])];
        let csv = series_to_csv(&series).unwrap();
        assert!(csv.lines().next().unwrap().ends_with("k = 1; normal"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("splice-sim-test");
        let path = dir.join("out.csv");
        write_text(&path, "a,b\n1,2\n").unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_write() {
        let dir = std::env::temp_dir().join("splice-sim-test-json");
        let path = dir.join("out.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains('1'));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn series_artifact_matches_handwritten_rendering() {
        let series = vec![
            Series::new("k = 1", vec![(0.01, 0.123456), (0.02, 0.2)]),
            Series::new("k = 2", vec![(0.01, 0.05), (0.02, 0.1)]),
        ];
        let a = Artifact::series("fig.csv", "p", 3, false, series.clone());
        // Exactly what the old per-binary code produced by hand.
        let rows: Vec<Vec<String>> = series[0]
            .points
            .iter()
            .enumerate()
            .map(|(i, &(x, _))| {
                let mut row = vec![format!("{x:.3}")];
                for s in &series {
                    row.push(format!("{:.4}", s.points[i].1));
                }
                row
            })
            .collect();
        let expected = render_table(&["p", "k = 1", "k = 2"], &rows);
        assert_eq!(artifact_to_terminal(&a), expected);
    }

    #[test]
    fn artifact_base_name_strips_extension() {
        assert_eq!(Artifact::text("a_b.csv", "").base_name(), "a_b");
        assert_eq!(Artifact::text("noext", "").base_name(), "noext");
    }

    #[test]
    fn write_series_artifact_with_twin() {
        let dir = std::env::temp_dir().join("splice-sim-artifact");
        std::fs::remove_dir_all(&dir).ok();
        let series = vec![Series::new("k = 1", vec![(0.01, 0.1)])];
        let a = Artifact::series("fam.csv", "p", 3, true, series.clone());
        let written = write_artifact(&dir, &a).unwrap();
        assert_eq!(written.len(), 2);
        let csv = std::fs::read_to_string(&written[0]).unwrap();
        assert_eq!(csv, series_to_csv(&series).unwrap());
        let json = std::fs::read_to_string(&written[1]).unwrap();
        assert!(json.contains("k = 1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_table_and_text_artifacts() {
        let dir = std::env::temp_dir().join("splice-sim-artifact-tt");
        std::fs::remove_dir_all(&dir).ok();
        let t = Artifact::table("t.txt", &["k"], vec![vec!["1".into()]]);
        let written = write_artifact(&dir, &t).unwrap();
        assert_eq!(
            std::fs::read_to_string(&written[0]).unwrap(),
            artifact_to_terminal(&t)
        );
        let x = Artifact::text("x.txt", "hello\n");
        let written = write_artifact(&dir, &x).unwrap();
        assert_eq!(std::fs::read_to_string(&written[0]).unwrap(), "hello\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_render() {
        let t = render_table(
            &["k", "value"],
            &[
                vec!["1".into(), "0.5".into()],
                vec!["10".into(), "0.25".into()],
            ],
        );
        assert!(t.contains("k "));
        assert!(t.lines().count() >= 4);
    }
}
