//! The experiment engine: one `Experiment` trait behind every driver.
//!
//! Historically each figure/table of the paper had its own binary with a
//! copy of the same scaffolding — parse flags, load the topology, run,
//! hand-format a table, hand-write CSV/JSON, write a manifest. This
//! module is that scaffolding, written once:
//!
//! * [`Experiment`] — a named, self-describing driver that turns a
//!   [`RunContext`] into structured [`Artifact`]s. Drivers never print
//!   tables or touch the filesystem; the engine renders every artifact
//!   exactly once through the shared sinks in [`crate::output`].
//! * [`RunContext`] — the resolved topology, a fresh telemetry
//!   [`Registry`], per-run seed streams via [`derive_seed`], and a
//!   process-wide [`DeploymentCache`] of built [`Splicing`] deployments,
//!   so a sweep builds each `(topology, config, seed)` deployment exactly
//!   once.
//! * [`run_experiment`] / [`run_all`] — the engine: configure, resolve,
//!   run, sink artifacts, stamp a schema-versioned [`RunManifest`].
//!   `run_all` additionally journals every completed experiment as a
//!   seed-stamped JSONL *shard* under the output directory, so an
//!   interrupted sweep resumes by skipping completed shards.
//!
//! Cache hits/misses are recorded in every manifest
//! (`"deployment_cache"`), which is how the exactly-once property is
//! checked in CI rather than merely asserted.

use crate::output::{artifact_to_terminal, write_artifact, write_text, Artifact, ArtifactError};
use crate::reliability::SpliceSemantics;
use splice_core::perturb::Perturbation;
use splice_core::slices::{Splicing, SplicingConfig};
use splice_core::strategy::StrategyKind;
use splice_graph::Graph;
use splice_telemetry::{FlightRecorder, JsonArray, JsonObject, Registry, Span};
use splice_topology::{Topology, TopologyError};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Version stamped into every manifest and shard header. Bump when the
/// manifest or shard layout changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// Flight-recorder depth per run: enough to hold every repair trigger
/// and span closure of a full default sweep without wrapping.
pub const FLIGHT_CAPACITY: usize = 4096;

/// The flags shared by every experiment:
/// `[--trials N] [--seed N] [--topology NAME] [--out DIR] [--semantics union|directed]
/// [--strategy NAME] [--batch-size N] [--listen ADDR] [--linger-secs N]`.
pub const USAGE_FLAGS: &str = "[--trials N] [--seed N] [--topology NAME] [--out DIR] \
     [--semantics union|directed] [--strategy perturbed-spf|tree|lst|arc] \
     [--batch-size N] [--listen ADDR] [--linger-secs N]";

/// Why the shared experiment flags failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgsError {
    /// A flag that takes a value appeared last.
    MissingValue {
        /// The offending flag.
        flag: String,
    },
    /// A value did not parse or is out of range.
    BadValue {
        /// The offending flag.
        flag: String,
        /// The value as given.
        value: String,
        /// What was wrong with it.
        reason: String,
    },
    /// An unrecognized flag.
    UnknownFlag {
        /// The offending flag.
        flag: String,
    },
    /// `--help` was requested; callers print usage and exit 0.
    Help,
}

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgsError::MissingValue { flag } => write!(f, "missing value for {flag}"),
            ArgsError::BadValue {
                flag,
                value,
                reason,
            } => write!(f, "bad {flag} {value:?}: {reason}"),
            ArgsError::UnknownFlag { flag } => {
                write!(f, "unknown argument {flag:?} (try --help)")
            }
            ArgsError::Help => write!(f, "help requested"),
        }
    }
}

impl std::error::Error for ArgsError {}

/// The shared experiment flags as parsed: `trials` stays `None` until an
/// experiment fills in its own default via [`LabArgs::configure`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabArgs {
    /// `--trials`, if given (experiments default it per-driver).
    pub trials: Option<usize>,
    /// `--seed` (default 20080817, SIGCOMM 2008's opening day).
    pub seed: u64,
    /// `--topology` (default `sprint`): a built-in map or a generator
    /// spec, resolved by [`splice_topology::resolve`].
    pub topology: String,
    /// `--out` (default `results`).
    pub out: PathBuf,
    /// `--semantics` (default `union`): `union` or `directed`.
    pub semantics: String,
    /// `--strategy` (default perturbed-SPF): the slice-construction
    /// strategy experiments that honor it build their deployments with.
    pub strategy: StrategyKind,
    /// `--batch-size`, if given (must be ≥ 1): how many repair events the
    /// experiments that replay churn coalesce per `repair_batch` call.
    /// `None` lets each driver pick (the churn experiment sweeps a set of
    /// sizes; a fixed size pins the sweep to that one).
    pub batch_size: Option<usize>,
    /// `--listen`, if given: serve `/metrics`, `/healthz` and
    /// `/snapshot` on this address for the duration of the run (port
    /// `0` picks an ephemeral port, printed at startup).
    pub listen: Option<String>,
    /// `--linger-secs` (default 0): keep the scrape endpoint up this
    /// many seconds after the run finishes, so a scraper can collect
    /// the final state of a short run.
    pub linger_secs: u64,
}

impl Default for LabArgs {
    fn default() -> LabArgs {
        LabArgs {
            trials: None,
            seed: 20080817,
            topology: "sprint".into(),
            out: PathBuf::from("results"),
            semantics: "union".into(),
            strategy: StrategyKind::PerturbedSpf,
            batch_size: None,
            listen: None,
            linger_secs: 0,
        }
    }
}

impl LabArgs {
    /// Parse the shared flags from `argv` (binary name already stripped).
    pub fn parse(argv: &[String]) -> Result<LabArgs, ArgsError> {
        let mut args = LabArgs::default();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].clone();
            let value = || -> Result<&String, ArgsError> {
                argv.get(i + 1)
                    .ok_or(ArgsError::MissingValue { flag: flag.clone() })
            };
            let number = |v: &str| -> Result<u64, ArgsError> {
                v.parse::<u64>().map_err(|e| ArgsError::BadValue {
                    flag: flag.clone(),
                    value: v.to_string(),
                    reason: e.to_string(),
                })
            };
            match argv[i].as_str() {
                "--trials" => args.trials = Some(number(value()?)? as usize),
                "--seed" => args.seed = number(value()?)?,
                "--topology" => args.topology = value()?.clone(),
                "--out" => args.out = PathBuf::from(value()?),
                "--semantics" => {
                    let v = value()?.clone();
                    if v != "union" && v != "directed" {
                        return Err(ArgsError::BadValue {
                            flag,
                            value: v,
                            reason: "must be union or directed".into(),
                        });
                    }
                    args.semantics = v;
                }
                "--strategy" => {
                    let v = value()?.clone();
                    args.strategy = StrategyKind::parse(&v).ok_or_else(|| ArgsError::BadValue {
                        flag: flag.clone(),
                        value: v,
                        reason: "must be perturbed-spf, tree, lst or arc".into(),
                    })?;
                }
                "--batch-size" => {
                    let v = number(value()?)? as usize;
                    if v == 0 {
                        return Err(ArgsError::BadValue {
                            flag,
                            value: "0".into(),
                            reason: "batch size must be at least 1".into(),
                        });
                    }
                    args.batch_size = Some(v);
                }
                "--listen" => args.listen = Some(value()?.clone()),
                "--linger-secs" => args.linger_secs = number(value()?)?,
                "--help" | "-h" => return Err(ArgsError::Help),
                other => {
                    return Err(ArgsError::UnknownFlag {
                        flag: other.to_string(),
                    })
                }
            }
            i += 2;
        }
        Ok(args)
    }

    /// Fix the trial count, producing the run's final configuration.
    pub fn configure(&self, default_trials: usize) -> RunConfig {
        RunConfig {
            trials: self.trials.unwrap_or(default_trials),
            seed: self.seed,
            topology: self.topology.clone(),
            out: self.out.clone(),
            semantics: self.semantics.clone(),
            strategy: self.strategy,
            batch_size: self.batch_size,
        }
    }
}

/// One experiment's fully-resolved configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunConfig {
    /// Monte-Carlo trials.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Topology name or generator spec.
    pub topology: String,
    /// Output directory for artifacts.
    pub out: PathBuf,
    /// Spliced-path semantics: "union" (the paper's accounting) or
    /// "directed" (operationally exact forwarding reachability).
    pub semantics: String,
    /// Slice-construction strategy for experiments that honor it.
    pub strategy: StrategyKind,
    /// Fixed repair batch size for churn-replaying experiments (`None`
    /// lets the driver sweep its own defaults).
    pub batch_size: Option<usize>,
}

impl RunConfig {
    /// Output path for an artifact of this run.
    pub fn artifact(&self, name: &str) -> PathBuf {
        self.out.join(name)
    }

    /// The selected splice-path semantics as the simulator's enum.
    pub fn splice_semantics(&self) -> SpliceSemantics {
        match self.semantics.as_str() {
            "directed" => SpliceSemantics::Directed,
            _ => SpliceSemantics::UnionGraph,
        }
    }
}

/// Hit/miss snapshot of a [`DeploymentCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Deployments served from the cache.
    pub hits: u64,
    /// Deployments built (first sighting of their key).
    pub misses: u64,
}

/// A cache of built [`Splicing`] deployments keyed by
/// `(topology, splicing-config, build-seed)`.
///
/// Slice construction is the expensive step shared across experiments —
/// several drivers build the *same* degree-based deployment over the
/// same topology at the same seed. Within one `run-all` sweep the cache
/// makes that build happen exactly once; the `Arc` hands the immutable
/// deployment to every consumer. The config key is the perturbation's
/// own [`Perturbation::label`], so two configs collide only when they
/// build bit-identical slices.
pub struct DeploymentCache {
    entries: parking_lot::Mutex<HashMap<(String, String, u64), Arc<Splicing>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for DeploymentCache {
    fn default() -> DeploymentCache {
        DeploymentCache::new()
    }
}

fn config_key(cfg: &SplicingConfig) -> String {
    format!(
        "k={};{};base={};strategy={}",
        cfg.k,
        cfg.perturbation.label(),
        cfg.include_base_slice,
        cfg.strategy.name()
    )
}

impl DeploymentCache {
    /// An empty cache.
    pub fn new() -> DeploymentCache {
        DeploymentCache {
            entries: parking_lot::Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The deployment for `(topology, cfg, seed)`, building it on first
    /// request. `g` must be the graph of `topology` — the name is the
    /// cache key, the graph is what gets built.
    pub fn get_or_build(
        &self,
        topology: &str,
        g: &Graph,
        cfg: &SplicingConfig,
        seed: u64,
    ) -> Arc<Splicing> {
        let key = (topology.to_string(), config_key(cfg), seed);
        if let Some(hit) = self.entries.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Build outside the lock: deployments take seconds, lookups don't.
        // A racing duplicate build is wasted work, not an error.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(Splicing::build(g, cfg, seed));
        self.entries
            .lock()
            .entry(key)
            .or_insert_with(|| Arc::clone(&built));
        built
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Everything an [`Experiment`] runs against.
pub struct RunContext<'a> {
    /// The run's configuration (trials already defaulted).
    pub config: RunConfig,
    /// The resolved base topology.
    pub topology: Topology,
    /// Fresh per-run metric registry; snapshot lands in the manifest.
    pub registry: Registry,
    /// Per-run flight recorder: repair triggers, span closures and walk
    /// anomalies land here, scrape-able via `--listen` at `/snapshot`.
    pub flight: FlightRecorder,
    cache: &'a DeploymentCache,
}

impl<'a> RunContext<'a> {
    /// A context over an already-resolved topology.
    pub fn new(
        config: RunConfig,
        topology: Topology,
        cache: &'a DeploymentCache,
    ) -> RunContext<'a> {
        RunContext {
            config,
            topology,
            registry: Registry::new(),
            flight: FlightRecorder::new(FLIGHT_CAPACITY),
            cache,
        }
    }

    /// The base graph of the run's topology.
    pub fn graph(&self) -> Graph {
        self.topology.graph()
    }

    /// The run's full metric bundle, with the flight recorder already
    /// attached: repair triggers and per-plane repairs recorded through
    /// it land in this context's [`RunContext::flight`]. Arena-size and
    /// repair histograms carry the run's strategy as a label, so a
    /// cross-strategy sweep's metrics stay separable in one registry.
    pub fn experiment_telemetry(&self) -> crate::telemetry::ExperimentTelemetry {
        crate::telemetry::ExperimentTelemetry::register_for_strategy(
            &self.registry,
            self.config.strategy.name(),
        )
        .with_flight(self.flight.clone())
    }

    /// A spliced deployment over `g`, served from the run's
    /// [`DeploymentCache`] (built at most once per `(topology, cfg,
    /// seed)` across the whole sweep). Each fetch — hit or build — is
    /// timed under the `splice_lab_deployment` span.
    pub fn deployment(&self, g: &Graph, cfg: &SplicingConfig, seed: u64) -> Arc<Splicing> {
        let span = Span::new(
            "splice_lab_deployment",
            self.registry.histogram_seconds(
                "splice_lab_deployment_seconds",
                "Deployment fetch (cache hit or slice build) wall time",
            ),
        )
        .with_flight(self.flight.clone());
        span.time(|| self.cache.get_or_build(&self.config.topology, g, cfg, seed))
    }

    /// Seed of `index` in RNG stream `stream` of this run's base seed
    /// (see [`crate::parallel::derive_seed`]).
    pub fn derive_seed(&self, stream: u64, index: u64) -> u64 {
        crate::parallel::derive_seed(self.config.seed, stream, index)
    }

    /// Hit/miss counters of the run's deployment cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// What an experiment hands back: artifacts for the sinks, free-form
/// notes (headlines, aggregate summaries) printed after them.
#[derive(Debug, Default)]
pub struct ExperimentOutput {
    /// Structured results, rendered once to terminal and once to disk.
    pub artifacts: Vec<Artifact>,
    /// Lines printed verbatim after the artifacts.
    pub notes: Vec<String>,
}

/// One driver of the experiment engine: a named, self-describing unit
/// that maps a [`RunContext`] to structured output. Implementations hold
/// no state; all run inputs arrive through the context.
pub trait Experiment {
    /// Canonical name (`fig3_reliability`, `loop_stats`, ...): the `run`
    /// subcommand argument, the shard key, and the manifest stamp.
    fn name(&self) -> &'static str;

    /// Short aliases accepted by `run` (e.g. `fig3`).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// One-line description for `splice-lab list`.
    fn describe(&self) -> &'static str;

    /// Default Monte-Carlo trial count when `--trials` is absent.
    fn default_trials(&self) -> usize;

    /// Turn parsed flags into this run's configuration.
    fn configure(&self, args: &LabArgs) -> RunConfig {
        args.configure(self.default_trials())
    }

    /// Run the experiment. Implementations may print progress but must
    /// route all results through the returned [`ExperimentOutput`].
    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError>;
}

/// Why an engine run failed.
#[derive(Debug)]
pub enum LabError {
    /// The shared flags were malformed.
    Args(ArgsError),
    /// The topology name did not resolve.
    Topology(TopologyError),
    /// An artifact failed to render or write.
    Artifact(ArtifactError),
    /// Filesystem failure outside artifact writing (manifest, shard).
    Io(std::io::Error),
    /// `run <name>` named no registered experiment.
    UnknownExperiment {
        /// The name as given.
        name: String,
    },
}

impl std::fmt::Display for LabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LabError::Args(e) => write!(f, "{e}"),
            LabError::Topology(e) => write!(f, "{e}"),
            LabError::Artifact(e) => write!(f, "{e}"),
            LabError::Io(e) => write!(f, "{e}"),
            LabError::UnknownExperiment { name } => {
                write!(f, "unknown experiment {name:?} (try `splice-lab list`)")
            }
        }
    }
}

impl std::error::Error for LabError {}

impl From<ArgsError> for LabError {
    fn from(e: ArgsError) -> LabError {
        LabError::Args(e)
    }
}

impl From<TopologyError> for LabError {
    fn from(e: TopologyError) -> LabError {
        LabError::Topology(e)
    }
}

impl From<ArtifactError> for LabError {
    fn from(e: ArtifactError) -> LabError {
        LabError::Artifact(e)
    }
}

impl From<std::io::Error> for LabError {
    fn from(e: std::io::Error) -> LabError {
        LabError::Io(e)
    }
}

/// A machine-readable record of one experiment run: what was asked for,
/// how long each phase took, the deployment-cache counters, and the
/// final telemetry snapshot. Written next to the run's artifacts so a
/// plot can always be traced back to its exact configuration.
pub struct RunManifest {
    experiment: String,
    config: RunConfig,
    phases: Vec<(String, f64)>,
    started: Instant,
    phase_start: Instant,
}

impl RunManifest {
    /// Start the run clock for `experiment`.
    pub fn start(experiment: &str, config: &RunConfig) -> RunManifest {
        let now = Instant::now();
        RunManifest {
            experiment: experiment.to_string(),
            config: config.clone(),
            phases: Vec::new(),
            started: now,
            phase_start: now,
        }
    }

    /// Close the current phase: records the wall time since the previous
    /// mark (or since [`RunManifest::start`]) under `name`.
    pub fn phase_done(&mut self, name: &str) {
        let now = Instant::now();
        self.phases
            .push((name.to_string(), (now - self.phase_start).as_secs_f64()));
        self.phase_start = now;
    }

    /// Render the manifest as one JSON object, embedding the current
    /// snapshot of `registry` and the deployment-cache counters.
    pub fn render(&self, registry: &Registry, cache: &CacheStats) -> String {
        let mut phases = JsonArray::new();
        for (name, secs) in &self.phases {
            phases = phases.push_raw(
                &JsonObject::new()
                    .field_str("name", name)
                    .field_f64("seconds", *secs)
                    .finish(),
            );
        }
        let mut obj = JsonObject::new()
            .field_u64("schema_version", SCHEMA_VERSION as u64)
            .field_str("experiment", &self.experiment)
            .field_str("topology", &self.config.topology)
            .field_u64("trials", self.config.trials as u64)
            .field_u64("seed", self.config.seed)
            .field_str("semantics", &self.config.semantics)
            .field_str("strategy", self.config.strategy.name());
        // Emitted only when pinned, so manifests of batch-size-agnostic
        // experiments stay byte-identical to before the flag existed.
        if let Some(batch) = self.config.batch_size {
            obj = obj.field_u64("batch_size", batch as u64);
        }
        obj.field_raw("phases", &phases.finish())
            .field_f64("total_seconds", self.started.elapsed().as_secs_f64())
            .field_raw(
                "deployment_cache",
                &JsonObject::new()
                    .field_u64("hits", cache.hits)
                    .field_u64("misses", cache.misses)
                    .finish(),
            )
            .field_raw("metrics", &registry.render_json())
            .finish()
    }

    /// Write the rendered manifest to `path`, creating parent directories.
    pub fn write(
        &self,
        path: impl AsRef<Path>,
        registry: &Registry,
        cache: &CacheStats,
    ) -> std::io::Result<()> {
        let mut text = self.render(registry, cache);
        text.push('\n');
        write_text(path, &text)
    }
}

/// The set of known experiments, in `run-all` order.
#[derive(Default)]
pub struct ExperimentRegistry {
    experiments: Vec<Box<dyn Experiment>>,
}

impl ExperimentRegistry {
    /// An empty registry.
    pub fn new() -> ExperimentRegistry {
        ExperimentRegistry::default()
    }

    /// Add an experiment. Panics on a name/alias collision — a collision
    /// is a bug in the registration list, not a runtime condition.
    pub fn register(&mut self, exp: Box<dyn Experiment>) {
        let clash = self
            .experiments
            .iter()
            .any(|e| e.name() == exp.name() || e.aliases().contains(&exp.name()));
        assert!(!clash, "duplicate experiment name {:?}", exp.name());
        self.experiments.push(exp);
    }

    /// Look an experiment up by canonical name or alias.
    pub fn find(&self, name: &str) -> Option<&dyn Experiment> {
        self.experiments
            .iter()
            .map(|e| e.as_ref())
            .find(|e| e.name() == name || e.aliases().contains(&name))
    }

    /// All experiments, in registration (= `run-all`) order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Experiment> {
        self.experiments.iter().map(|e| e.as_ref())
    }

    /// Number of registered experiments.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }
}

/// What one engine run produced.
#[derive(Debug)]
pub struct RunSummary {
    /// The experiment's canonical name.
    pub experiment: String,
    /// Every artifact file written, in write order.
    pub artifacts: Vec<PathBuf>,
    /// The manifest path.
    pub manifest: PathBuf,
}

/// Run one experiment end to end: configure, resolve the topology, run,
/// sink every artifact (terminal + disk), print the notes, stamp the
/// manifest. The manifest lands next to the artifacts as
/// `<first-artifact-stem>_manifest.json` (or `<name>_manifest.json` for
/// artifact-less runs).
pub fn run_experiment(
    exp: &dyn Experiment,
    args: &LabArgs,
    cache: &DeploymentCache,
) -> Result<RunSummary, LabError> {
    let config = exp.configure(args);
    let topology = splice_topology::resolve(&config.topology)?;
    let mut ctx = RunContext::new(config, topology, cache);
    // The scrape endpoint observes the run's registry and flight
    // recorder live; it never feeds back into the run, so `--listen`
    // runs stay byte-identical to plain ones.
    let server = match &args.listen {
        Some(addr) => {
            let server =
                splice_telemetry::serve(addr, ctx.registry.clone(), Some(ctx.flight.clone()))?;
            println!("[splice-lab] listening on http://{}", server.local_addr());
            Some(server)
        }
        None => None,
    };
    let mut manifest = RunManifest::start(exp.name(), &ctx.config);
    let experiment_span = Span::new(
        "splice_lab_experiment",
        ctx.registry.histogram_seconds(
            "splice_lab_experiment_seconds",
            "Wall time of the experiment phase (excludes artifact writing)",
        ),
    )
    .with_flight(ctx.flight.clone());
    let output = {
        let _g = experiment_span.enter();
        exp.run(&mut ctx)?
    };
    manifest.phase_done("experiment");
    let mut written = Vec::new();
    for artifact in &output.artifacts {
        println!("{}", artifact_to_terminal(artifact));
        for path in write_artifact(&ctx.config.out, artifact)? {
            println!("wrote {}", path.display());
            written.push(path);
        }
    }
    for note in &output.notes {
        println!("{note}");
    }
    manifest.phase_done("artifacts");
    let stem = output
        .artifacts
        .first()
        .map(|a| a.base_name().to_string())
        .unwrap_or_else(|| exp.name().to_string());
    let manifest_path = ctx.config.artifact(&format!("{stem}_manifest.json"));
    manifest.write(&manifest_path, &ctx.registry, &cache.stats())?;
    println!("wrote {}", manifest_path.display());
    if let Some(server) = server {
        if args.linger_secs > 0 {
            println!(
                "[splice-lab] lingering {}s for final scrapes (http://{})",
                args.linger_secs,
                server.local_addr()
            );
            std::thread::sleep(Duration::from_secs(args.linger_secs));
        }
        server.shutdown();
    }
    Ok(RunSummary {
        experiment: exp.name().to_string(),
        artifacts: written,
        manifest: manifest_path,
    })
}

/// Shard file of `experiment` under `out`: the JSONL journal `run-all`
/// uses to make sweeps resumable.
pub fn shard_path(out: &Path, experiment: &str) -> PathBuf {
    out.join("shards").join(format!("{experiment}.jsonl"))
}

/// The shard's header line: the exact configuration the shard's results
/// were produced under. `resume` re-runs any experiment whose recomputed
/// header no longer matches (different seed, trials, topology, ...).
pub fn shard_header(experiment: &str, config: &RunConfig) -> String {
    let mut obj = JsonObject::new()
        .field_u64("schema_version", SCHEMA_VERSION as u64)
        .field_str("experiment", experiment)
        .field_str("topology", &config.topology)
        .field_u64("trials", config.trials as u64)
        .field_u64("seed", config.seed)
        .field_str("semantics", &config.semantics)
        .field_str("strategy", config.strategy.name());
    // Only when pinned (see RunManifest::render): a pinned batch size
    // changes what a churn shard holds, so it must invalidate resumes.
    if let Some(batch) = config.batch_size {
        obj = obj.field_u64("batch_size", batch as u64);
    }
    obj.finish()
}

fn shard_is_complete(path: &Path, header: &str) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else {
        return false;
    };
    let mut lines = text.lines();
    if lines.next() != Some(header) {
        return false;
    }
    text.lines()
        .last()
        .is_some_and(|l| l.contains(r#""complete":true"#))
}

fn append_line(path: &Path, line: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
    writeln!(f, "{line}")
}

/// What a sweep did.
#[derive(Debug)]
pub struct RunAllSummary {
    /// Experiments that ran this invocation.
    pub ran: Vec<String>,
    /// Experiments skipped because their shard was already complete.
    pub skipped: Vec<String>,
    /// Final deployment-cache counters for the sweep.
    pub cache: CacheStats,
}

/// Run every registered experiment in order, sharing one deployment
/// cache. Each experiment is journaled to its shard (header first, then
/// one line per artifact, then a completion line); with `resume`,
/// experiments whose shard is already complete *under the same
/// configuration* are skipped.
pub fn run_all(
    registry: &ExperimentRegistry,
    args: &LabArgs,
    resume: bool,
) -> Result<RunAllSummary, LabError> {
    let cache = DeploymentCache::new();
    let mut ran = Vec::new();
    let mut skipped = Vec::new();
    for exp in registry.iter() {
        let config = exp.configure(args);
        let header = shard_header(exp.name(), &config);
        let shard = shard_path(&config.out, exp.name());
        if resume && shard_is_complete(&shard, &header) {
            println!("[splice-lab] {}: shard complete, skipping", exp.name());
            skipped.push(exp.name().to_string());
            continue;
        }
        // Truncate to header-only first: the shard stays incomplete until
        // the run lands, so a crash mid-experiment re-runs it on resume.
        write_text(&shard, &format!("{header}\n"))?;
        let summary = run_experiment(exp, args, &cache)?;
        for path in &summary.artifacts {
            append_line(
                &shard,
                &JsonObject::new()
                    .field_str("artifact", &path.display().to_string())
                    .finish(),
            )?;
        }
        append_line(
            &shard,
            &JsonObject::new()
                .field_bool("complete", true)
                .field_str("manifest", &summary.manifest.display().to_string())
                .finish(),
        )?;
        ran.push(exp.name().to_string());
    }
    let cache = cache.stats();
    println!(
        "[splice-lab] sweep done: {} ran, {} skipped; deployment cache {} hits / {} misses",
        ran.len(),
        skipped.len(),
        cache.hits,
        cache.misses
    );
    Ok(RunAllSummary {
        ran,
        skipped,
        cache,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn args_defaults_and_overrides() {
        let a = LabArgs::parse(&[]).unwrap();
        assert_eq!(a, LabArgs::default());
        assert_eq!(a.configure(250).trials, 250);
        let a = LabArgs::parse(&argv(&[
            "--trials",
            "7",
            "--seed",
            "11",
            "--topology",
            "abilene",
            "--out",
            "o",
            "--semantics",
            "directed",
            "--strategy",
            "tree",
            "--batch-size",
            "8",
            "--listen",
            "127.0.0.1:0",
            "--linger-secs",
            "3",
        ]))
        .unwrap();
        assert_eq!(a.trials, Some(7));
        assert_eq!(a.configure(250).trials, 7);
        assert_eq!(a.seed, 11);
        assert_eq!(a.topology, "abilene");
        assert_eq!(a.out, PathBuf::from("o"));
        assert_eq!(a.configure(1).splice_semantics(), SpliceSemantics::Directed);
        assert_eq!(a.strategy, StrategyKind::RandomSpanningTree);
        assert_eq!(a.configure(1).strategy, StrategyKind::RandomSpanningTree);
        assert_eq!(a.batch_size, Some(8));
        assert_eq!(a.configure(1).batch_size, Some(8));
        assert_eq!(a.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(a.linger_secs, 3);
        // Unset stays None, and the shard header omits the field so old
        // shards still match.
        assert_eq!(LabArgs::default().batch_size, None);
        assert!(!shard_header("dummy", &LabArgs::default().configure(1)).contains("batch_size"));
        let pinned = LabArgs {
            batch_size: Some(4),
            ..LabArgs::default()
        };
        assert!(shard_header("dummy", &pinned.configure(1)).contains(r#""batch_size":4"#));
        // Aliases parse; the default is the paper's construction.
        let spf = LabArgs::parse(&argv(&["--strategy", "spf"])).unwrap();
        assert_eq!(spf.strategy, StrategyKind::PerturbedSpf);
        assert_eq!(LabArgs::default().strategy, StrategyKind::PerturbedSpf);
    }

    #[test]
    fn args_errors_are_typed() {
        assert!(matches!(
            LabArgs::parse(&argv(&["--trials"])),
            Err(ArgsError::MissingValue { .. })
        ));
        assert!(matches!(
            LabArgs::parse(&argv(&["--trials", "x"])),
            Err(ArgsError::BadValue { .. })
        ));
        assert!(matches!(
            LabArgs::parse(&argv(&["--semantics", "both"])),
            Err(ArgsError::BadValue { .. })
        ));
        assert!(matches!(
            LabArgs::parse(&argv(&["--strategy", "ospf"])),
            Err(ArgsError::BadValue { .. })
        ));
        assert!(matches!(
            LabArgs::parse(&argv(&["--batch-size", "0"])),
            Err(ArgsError::BadValue { .. })
        ));
        assert!(matches!(
            LabArgs::parse(&argv(&["--frobnicate"])),
            Err(ArgsError::UnknownFlag { .. })
        ));
        assert!(matches!(
            LabArgs::parse(&argv(&["--help"])),
            Err(ArgsError::Help)
        ));
    }

    fn degree_cfg(k: usize) -> SplicingConfig {
        SplicingConfig::degree_based(k, 0.0, 3.0)
    }

    #[test]
    fn deployment_cache_builds_each_key_once() {
        let g = splice_topology::resolve("abilene").unwrap().graph();
        let cache = DeploymentCache::new();
        let a = cache.get_or_build("abilene", &g, &degree_cfg(3), 7);
        let b = cache.get_or_build("abilene", &g, &degree_cfg(3), 7);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        // Different seed, k, or topology name are distinct keys.
        cache.get_or_build("abilene", &g, &degree_cfg(3), 8);
        cache.get_or_build("abilene", &g, &degree_cfg(2), 7);
        cache.get_or_build("abilene2", &g, &degree_cfg(3), 7);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 4 });
        // A different slice-construction strategy is a distinct key.
        cache.get_or_build(
            "abilene",
            &g,
            &degree_cfg(3).with_strategy(StrategyKind::RandomSpanningTree),
            7,
        );
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 5 });
    }

    struct Dummy;

    impl Experiment for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn aliases(&self) -> &'static [&'static str] {
            &["dum"]
        }
        fn describe(&self) -> &'static str {
            "engine test double"
        }
        fn default_trials(&self) -> usize {
            3
        }
        fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
            ctx.registry.counter("dummy_runs_total", "Runs").add(1);
            let g = ctx.graph();
            ctx.deployment(&g, &degree_cfg(2), ctx.config.seed);
            Ok(ExperimentOutput {
                artifacts: vec![Artifact::table(
                    "dummy_table.txt",
                    &["trials"],
                    vec![vec![ctx.config.trials.to_string()]],
                )],
                notes: vec!["dummy done".into()],
            })
        }
    }

    fn temp_out(tag: &str) -> LabArgs {
        let mut args = LabArgs {
            topology: "ring-4".into(),
            ..LabArgs::default()
        };
        args.out = std::env::temp_dir().join(format!("splice-lab-{tag}"));
        std::fs::remove_dir_all(&args.out).ok();
        args
    }

    #[test]
    fn engine_writes_artifacts_and_schema_stamped_manifest() {
        let args = temp_out("engine");
        let cache = DeploymentCache::new();
        let summary = run_experiment(&Dummy, &args, &cache).unwrap();
        assert_eq!(summary.experiment, "dummy");
        assert_eq!(summary.artifacts, vec![args.out.join("dummy_table.txt")]);
        assert!(summary.artifacts[0].exists());
        let manifest = std::fs::read_to_string(&summary.manifest).unwrap();
        assert!(manifest.contains(r#""schema_version":1"#), "{manifest}");
        assert!(manifest.contains(r#""experiment":"dummy""#));
        assert!(manifest.contains(r#""topology":"ring-4""#));
        assert!(manifest.contains(r#""name":"experiment""#));
        assert!(manifest.contains(r#""name":"artifacts""#));
        assert!(manifest.contains(r#""deployment_cache":{"hits":0,"misses":1}"#));
        assert!(manifest.contains(r#""name":"dummy_runs_total""#));
        std::fs::remove_dir_all(&args.out).ok();
    }

    #[test]
    fn deployment_fetches_are_spanned_into_the_flight_recorder() {
        let args = temp_out("flight");
        let config = args.configure(1);
        let topology = splice_topology::resolve("ring-4").unwrap();
        let cache = DeploymentCache::new();
        let ctx = RunContext::new(config, topology, &cache);
        let g = ctx.graph();
        ctx.deployment(&g, &degree_cfg(2), 7);
        ctx.deployment(&g, &degree_cfg(2), 7); // cache hit, still spanned
        let events = ctx.flight.snapshot();
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .all(|e| e.event.kind == "span" && e.event.name == "splice_lab_deployment"));
        assert!(ctx
            .registry
            .render_prometheus()
            .contains("splice_lab_deployment_seconds_count 2"));
        // The bundled telemetry shares both the registry and the recorder.
        let tel = ctx.experiment_telemetry();
        assert!(tel.spf.flight.is_some());
        std::fs::remove_dir_all(&args.out).ok();
    }

    #[test]
    fn listen_flag_serves_the_run_and_stamps_span_histograms() {
        let mut args = temp_out("listen");
        args.listen = Some("127.0.0.1:0".into());
        let cache = DeploymentCache::new();
        let summary = run_experiment(&Dummy, &args, &cache).unwrap();
        let manifest = std::fs::read_to_string(&summary.manifest).unwrap();
        assert!(manifest.contains(r#""name":"splice_lab_experiment_seconds""#));
        assert!(manifest.contains(r#""name":"splice_lab_deployment_seconds""#));
        std::fs::remove_dir_all(&args.out).ok();
    }

    #[test]
    fn registry_finds_by_name_and_alias() {
        let mut reg = ExperimentRegistry::new();
        reg.register(Box::new(Dummy));
        assert_eq!(reg.len(), 1);
        assert!(reg.find("dummy").is_some());
        assert!(reg.find("dum").is_some());
        assert!(reg.find("nope").is_none());
    }

    #[test]
    fn run_all_journals_shards_and_resume_skips() {
        let args = temp_out("runall");
        let mut reg = ExperimentRegistry::new();
        reg.register(Box::new(Dummy));
        let first = run_all(&reg, &args, false).unwrap();
        assert_eq!(first.ran, vec!["dummy".to_string()]);
        assert!(first.skipped.is_empty());
        assert_eq!(first.cache.misses, 1);
        let shard = shard_path(&args.out, "dummy");
        let text = std::fs::read_to_string(&shard).unwrap();
        assert_eq!(
            text.lines().next().unwrap(),
            shard_header("dummy", &args.configure(3))
        );
        assert!(text.lines().last().unwrap().contains(r#""complete":true"#));

        // Resume with the same configuration: everything skips.
        let second = run_all(&reg, &args, true).unwrap();
        assert!(second.ran.is_empty());
        assert_eq!(second.skipped, vec!["dummy".to_string()]);

        // A configuration change invalidates the shard.
        let mut moved = args.clone();
        moved.seed = 999;
        let third = run_all(&reg, &moved, true).unwrap();
        assert_eq!(third.ran, vec!["dummy".to_string()]);
        std::fs::remove_dir_all(&args.out).ok();
    }

    #[test]
    fn incomplete_shard_reruns_on_resume() {
        let args = temp_out("partial");
        let mut reg = ExperimentRegistry::new();
        reg.register(Box::new(Dummy));
        let shard = shard_path(&args.out, "dummy");
        // Header only — as if the process died mid-experiment.
        write_text(
            &shard,
            &format!("{}\n", shard_header("dummy", &args.configure(3))),
        )
        .unwrap();
        let s = run_all(&reg, &args, true).unwrap();
        assert_eq!(s.ran, vec!["dummy".to_string()]);
        std::fs::remove_dir_all(&args.out).ok();
    }
}
