//! The recovery experiments (Figures 4 and 5, §4.3).
//!
//! Per trial: draw a failure set; every ordered pair whose default
//! (slice-0) path crosses a failed link attempts recovery. A pair counts
//! as *recovered* if the scheme delivers within its budget (≤ 5 random
//! headers for end-system recovery; one deflected walk for network-based
//! recovery). Plotted per `k`:
//!
//! * `k = 1 (no splicing)` — pairs with a broken default path;
//! * `k (recovery)` — pairs still undelivered after recovery;
//! * `k (reliability)` — pairs with no spliced path at all (the bound
//!   recovery is converging to).
//!
//! Alongside the curves, the §4.3 aggregates are collected: average
//! trials to recover, latency stretch, hop stretch, and the §4.4 loop
//! frequencies.

use crate::failure::FailureModel;
use crate::parallel::run_trials_instrumented;
use crate::stats::Series;
use crate::telemetry::ExperimentTelemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_core::prelude::*;
use splice_core::slices::SplicingConfig;
use splice_graph::{dijkstra, Graph};

/// Which recovery scheme the experiment exercises.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RecoveryScheme {
    /// Figure 4: end-system header re-randomization.
    EndSystem(EndSystemRecovery),
    /// Figure 5: in-network deflection.
    Network(NetworkRecovery),
}

/// Configuration of a recovery run.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Slice counts with recovery (the paper plots 3 and 5).
    pub ks: Vec<usize>,
    /// Failure probabilities.
    pub ps: Vec<f64>,
    /// Monte-Carlo trials.
    pub trials: usize,
    /// Slice construction; `k` is overridden by `max(ks)`.
    pub splicing: SplicingConfig,
    /// The scheme under test.
    pub scheme: RecoveryScheme,
    /// Semantics used for the "(reliability)" bound curves (the paper's
    /// union-graph accounting by default; recovery itself always runs on
    /// the real directed data plane).
    pub semantics: crate::reliability::SpliceSemantics,
    /// Base seed.
    pub seed: u64,
}

impl RecoveryConfig {
    /// Figure 4's setup: end-system recovery, k ∈ {3, 5}.
    pub fn figure4(trials: usize, seed: u64) -> RecoveryConfig {
        RecoveryConfig {
            ks: vec![3, 5],
            ps: (1..=10).map(|i| i as f64 * 0.01).collect(),
            trials,
            splicing: SplicingConfig::degree_based(5, 0.0, 3.0),
            scheme: RecoveryScheme::EndSystem(EndSystemRecovery::default()),
            semantics: crate::reliability::SpliceSemantics::UnionGraph,
            seed,
        }
    }

    /// Figure 5's setup: network-based recovery, k ∈ {3, 5}.
    pub fn figure5(trials: usize, seed: u64) -> RecoveryConfig {
        RecoveryConfig {
            scheme: RecoveryScheme::Network(NetworkRecovery::default()),
            ..RecoveryConfig::figure4(trials, seed)
        }
    }
}

/// §4.3/§4.4 aggregates for one `k`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KRecoveryStats {
    /// The slice count these stats describe.
    pub k: usize,
    /// Broken pairs that attempted recovery.
    pub attempts: usize,
    /// Attempts that delivered.
    pub recovered: usize,
    /// Mean trials used over successful end-system recoveries (1 for
    /// network recovery's single walk).
    pub avg_trials: f64,
    /// Mean latency stretch of recovered paths vs the base shortest path.
    pub avg_latency_stretch: f64,
    /// Mean hop stretch of recovered paths.
    pub avg_hop_stretch: f64,
    /// Fraction of attempts whose traces contained any forwarding loop.
    pub loop_fraction: f64,
    /// Two-hop loops observed across all traces.
    pub two_hop_loops: usize,
    /// Loops longer than two hops.
    pub longer_loops: usize,
}

/// Full result of a recovery experiment.
#[derive(Clone, Debug)]
pub struct RecoveryCurves {
    /// `k = 1 (no splicing)`: default-path breakage.
    pub no_splicing: Series,
    /// Per `k`: fraction undelivered after recovery.
    pub recovery: Vec<Series>,
    /// Per `k`: fraction with no spliced path at all.
    pub reliability: Vec<Series>,
    /// Per-`k` aggregates across all `p`.
    pub stats: Vec<KRecoveryStats>,
    /// Echo of the evaluated `ks`.
    pub ks: Vec<usize>,
}

/// Per-trial accumulator for one `k`.
#[derive(Clone, Default)]
struct KAgg {
    attempts: usize,
    recovered: usize,
    trials_sum: usize,
    lat_stretch_sum: f64,
    hop_stretch_sum: f64,
    stretch_n: usize,
    looped_attempts: usize,
    two_hop: usize,
    longer: usize,
}

/// Precomputed base-path metrics: latency and hops of the weight-shortest
/// path for every ordered pair.
struct BaseMetrics {
    /// `lat[t][s]`, NaN when unreachable.
    lat: Vec<Vec<f64>>,
    /// `hops[t][s]`, 0 when unreachable.
    hops: Vec<Vec<usize>>,
}

fn base_metrics(g: &Graph, latencies: &[f64]) -> BaseMetrics {
    let n = g.node_count();
    let w = g.base_weights();
    let mut lat = vec![vec![f64::NAN; n]; n];
    let mut hops = vec![vec![0usize; n]; n];
    for t in g.nodes() {
        let spt = dijkstra(g, t, &w);
        for s in g.nodes() {
            if s == t {
                continue;
            }
            if let Some(p) = spt.path_from(s) {
                lat[t.index()][s.index()] = p.length(latencies);
                hops[t.index()][s.index()] = p.hop_count();
            }
        }
    }
    BaseMetrics { lat, hops }
}

/// Run the recovery experiment. `latencies` is the per-edge delay vector
/// stretch is measured against (pass the topology's latencies).
pub fn recovery_experiment(g: &Graph, latencies: &[f64], cfg: &RecoveryConfig) -> RecoveryCurves {
    recovery_experiment_instrumented(g, latencies, cfg, None)
}

/// [`recovery_experiment`] with optional telemetry: per-trial wall times,
/// SPF/FIB build histograms, and a heartbeat when configured. Curves and
/// stats are bit-identical with telemetry on or off.
pub fn recovery_experiment_instrumented(
    g: &Graph,
    latencies: &[f64],
    cfg: &RecoveryConfig,
    telemetry: Option<&ExperimentTelemetry>,
) -> RecoveryCurves {
    let kmax = cfg.ks.iter().copied().max().expect("at least one k").max(1);
    let mut splicing_cfg = cfg.splicing.clone();
    splicing_cfg.k = kmax;
    let n = g.node_count();
    let pairs = (n * (n - 1)) as f64;
    let base = base_metrics(g, latencies);

    type TrialOut = (Vec<f64>, Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<KAgg>);
    let trial_tel = telemetry.map(|t| &t.trials);
    let per_trial: Vec<TrialOut> =
        run_trials_instrumented(cfg.trials, cfg.seed, trial_tel, |_, trial_seed| {
            let splicing = Splicing::build_with_telemetry(
                g,
                &splicing_cfg,
                trial_seed,
                telemetry.map(|t| &t.spf),
            );
            let prefixes: Vec<Splicing> = cfg.ks.iter().map(|&k| splicing.prefix(k)).collect();
            let mut broken_frac = Vec::with_capacity(cfg.ps.len());
            let mut unrecovered = vec![Vec::with_capacity(cfg.ps.len()); cfg.ks.len()];
            let mut unreachable = vec![Vec::with_capacity(cfg.ps.len()); cfg.ks.len()];
            let mut aggs: Vec<KAgg> = vec![KAgg::default(); cfg.ks.len()];
            let opts = ForwarderOptions::default();

            for (pi, &p) in cfg.ps.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(
                    trial_seed ^ (0xd1b54a32d192ed03u64.wrapping_mul(pi as u64 + 1)),
                );
                let mask = FailureModel::IidLinks { p }.sample(g, &mut rng);
                let mut broken = 0usize;
                let mut unrec = vec![0usize; cfg.ks.len()];
                let mut unreach = vec![0usize; cfg.ks.len()];

                // Spliced reachability per destination, per k (shared by all s).
                for (ki, &k) in cfg.ks.iter().enumerate() {
                    for t in g.nodes() {
                        let reach = match cfg.semantics {
                            crate::reliability::SpliceSemantics::UnionGraph => {
                                splicing.union_reachable_to(t, k, &mask)
                            }
                            crate::reliability::SpliceSemantics::Directed => {
                                splicing.reachable_to(t, k, &mask)
                            }
                        };
                        for s in g.nodes() {
                            if s != t && !reach[s.index()] {
                                unreach[ki] += 1;
                            }
                        }
                    }
                }

                for t in g.nodes() {
                    for s in g.nodes() {
                        if s == t {
                            continue;
                        }
                        // Default path: slice 0 all the way.
                        let fwd_full = Forwarder::new(&splicing, g, &mask);
                        let default_out = fwd_full.forward(
                            s,
                            t,
                            ForwardingBits::stay_in_slice(0, splicing.k()),
                            &opts,
                        );
                        if default_out.is_delivered() {
                            continue;
                        }
                        broken += 1;

                        for (ki, prefix) in prefixes.iter().enumerate() {
                            let agg = &mut aggs[ki];
                            agg.attempts += 1;
                            let (delivered, trials_used, loops): (
                                Option<Trace>,
                                usize,
                                Vec<usize>,
                            ) = match cfg.scheme {
                                RecoveryScheme::EndSystem(rec) => {
                                    let fwd = Forwarder::new(prefix, g, &mask);
                                    let out = rec.recover(&fwd, s, t, 0, &opts, &mut rng);
                                    (out.delivery, out.trials, out.loops_seen)
                                }
                                RecoveryScheme::Network(nr) => {
                                    let out = nr.forward(prefix, &mask, s, t, 0, &mut rng);
                                    let loops = out.trace().loop_lengths();
                                    match out {
                                        ForwardingOutcome::Delivered(tr) => (Some(tr), 1, loops),
                                        _ => (None, 1, loops),
                                    }
                                }
                            };
                            if !loops.is_empty() {
                                agg.looped_attempts += 1;
                                agg.two_hop += loops.iter().filter(|&&l| l == 2).count();
                                agg.longer += loops.iter().filter(|&&l| l > 2).count();
                            }
                            match delivered {
                                Some(trace) => {
                                    agg.recovered += 1;
                                    agg.trials_sum += trials_used;
                                    let bl = base.lat[t.index()][s.index()];
                                    let bh = base.hops[t.index()][s.index()];
                                    if bl.is_finite() && bl > 0.0 && bh > 0 {
                                        agg.lat_stretch_sum += trace.length(latencies) / bl;
                                        agg.hop_stretch_sum += trace.hop_count() as f64 / bh as f64;
                                        agg.stretch_n += 1;
                                    }
                                }
                                None => unrec[ki] += 1,
                            }
                        }
                    }
                }
                broken_frac.push(broken as f64 / pairs);
                for ki in 0..cfg.ks.len() {
                    unrecovered[ki].push(unrec[ki] as f64 / pairs);
                    unreachable[ki].push(unreach[ki] as f64 / pairs);
                }
            }
            (broken_frac, unrecovered, unreachable, aggs)
        });

    // Average curves over trials.
    let avg_curve = |pick: &dyn Fn(&TrialOut, usize) -> f64, label: String| {
        let points = cfg
            .ps
            .iter()
            .enumerate()
            .map(|(pi, &p)| {
                let avg = per_trial.iter().map(|t| pick(t, pi)).sum::<f64>() / cfg.trials as f64;
                (p, avg)
            })
            .collect();
        Series::new(label, points)
    };

    let no_splicing = avg_curve(&|t, pi| t.0[pi], "k = 1 (no splicing)".into());
    let recovery: Vec<Series> = cfg
        .ks
        .iter()
        .enumerate()
        .map(|(ki, &k)| {
            avg_curve(
                &move |t: &TrialOut, pi: usize| t.1[ki][pi],
                format!("k = {k} (recovery)"),
            )
        })
        .collect();
    let reliability: Vec<Series> = cfg
        .ks
        .iter()
        .enumerate()
        .map(|(ki, &k)| {
            avg_curve(
                &move |t: &TrialOut, pi: usize| t.2[ki][pi],
                format!("k = {k} (reliability)"),
            )
        })
        .collect();

    // Merge aggregates.
    let stats = cfg
        .ks
        .iter()
        .enumerate()
        .map(|(ki, &k)| {
            let mut m = KAgg::default();
            for (_, _, _, aggs) in &per_trial {
                let a = &aggs[ki];
                m.attempts += a.attempts;
                m.recovered += a.recovered;
                m.trials_sum += a.trials_sum;
                m.lat_stretch_sum += a.lat_stretch_sum;
                m.hop_stretch_sum += a.hop_stretch_sum;
                m.stretch_n += a.stretch_n;
                m.looped_attempts += a.looped_attempts;
                m.two_hop += a.two_hop;
                m.longer += a.longer;
            }
            KRecoveryStats {
                k,
                attempts: m.attempts,
                recovered: m.recovered,
                avg_trials: if m.recovered > 0 {
                    m.trials_sum as f64 / m.recovered as f64
                } else {
                    0.0
                },
                avg_latency_stretch: if m.stretch_n > 0 {
                    m.lat_stretch_sum / m.stretch_n as f64
                } else {
                    0.0
                },
                avg_hop_stretch: if m.stretch_n > 0 {
                    m.hop_stretch_sum / m.stretch_n as f64
                } else {
                    0.0
                },
                loop_fraction: if m.attempts > 0 {
                    m.looped_attempts as f64 / m.attempts as f64
                } else {
                    0.0
                },
                two_hop_loops: m.two_hop,
                longer_loops: m.longer,
            }
        })
        .collect();

    RecoveryCurves {
        no_splicing,
        recovery,
        reliability,
        stats,
        ks: cfg.ks.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_topology::abilene::abilene;

    fn quick(scheme: RecoveryScheme) -> RecoveryConfig {
        RecoveryConfig {
            ks: vec![3, 5],
            ps: vec![0.04, 0.1],
            trials: 25,
            splicing: SplicingConfig::degree_based(5, 0.0, 3.0),
            scheme,
            semantics: crate::reliability::SpliceSemantics::UnionGraph,
            seed: 5,
        }
    }

    #[test]
    fn recovery_between_no_splicing_and_reliability() {
        let topo = abilene();
        let g = topo.graph();
        let cfg = quick(RecoveryScheme::EndSystem(EndSystemRecovery::default()));
        let out = recovery_experiment(&g, &topo.latencies(), &cfg);
        for (ki, _) in cfg.ks.iter().enumerate() {
            for (pi, &(_, ns)) in out.no_splicing.points.iter().enumerate() {
                let rec = out.recovery[ki].points[pi].1;
                let rel = out.reliability[ki].points[pi].1;
                assert!(rec <= ns + 1e-12, "recovery above no-splicing");
                assert!(rel <= rec + 1e-12, "reliability bound violated");
            }
        }
    }

    #[test]
    fn end_system_stats_sane() {
        let topo = abilene();
        let g = topo.graph();
        let cfg = quick(RecoveryScheme::EndSystem(EndSystemRecovery::default()));
        let out = recovery_experiment(&g, &topo.latencies(), &cfg);
        for st in &out.stats {
            assert!(st.attempts > 0, "should see broken pairs at p up to 0.1");
            assert!(st.recovered <= st.attempts);
            if st.recovered > 0 {
                assert!(st.avg_trials >= 1.0 && st.avg_trials <= 5.0);
                assert!(
                    st.avg_latency_stretch >= 1.0 - 1e-9,
                    "{}",
                    st.avg_latency_stretch
                );
                assert!(st.avg_hop_stretch >= 1.0 - 1e-9);
            }
            assert!((0.0..=1.0).contains(&st.loop_fraction));
        }
    }

    #[test]
    fn network_scheme_runs_and_bounds_hold() {
        let topo = abilene();
        let g = topo.graph();
        let cfg = quick(RecoveryScheme::Network(NetworkRecovery::default()));
        let out = recovery_experiment(&g, &topo.latencies(), &cfg);
        for st in &out.stats {
            if st.recovered > 0 {
                assert_eq!(st.avg_trials, 1.0, "network recovery is one walk");
                assert!(st.avg_latency_stretch >= 1.0 - 1e-9);
            }
        }
        // k=5 recovers at least as many as k=3 overall.
        let r3: f64 = out.recovery[0].points.iter().map(|p| p.1).sum();
        let r5: f64 = out.recovery[1].points.iter().map(|p| p.1).sum();
        assert!(r5 <= r3 + 1e-9, "more slices should not hurt recovery");
    }

    #[test]
    fn deterministic() {
        let topo = abilene();
        let g = topo.graph();
        let cfg = quick(RecoveryScheme::EndSystem(EndSystemRecovery::default()));
        let a = recovery_experiment(&g, &topo.latencies(), &cfg);
        let b = recovery_experiment(&g, &topo.latencies(), &cfg);
        assert_eq!(a.no_splicing.points, b.no_splicing.points);
        assert_eq!(a.stats, b.stats);
    }
}
