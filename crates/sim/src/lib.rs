//! # splice-sim
//!
//! The Monte-Carlo evaluation engine reproducing the paper's §4.
//!
//! Methodology (§4.1), implemented faithfully:
//!
//! 1. Build a splicing deployment over a base topology (slice 0 = plain
//!    shortest paths, slices 1..k perturbed).
//! 2. Per trial, fail each link independently with probability `p`
//!    ([`failure`]), using **common random numbers**: the same failure set
//!    is evaluated for every `k`, so adding slices is compared against
//!    identical faults.
//! 3. Evaluate: spliced reachability per destination ([`reliability`],
//!    Figure 3), recovery schemes over broken pairs ([`recovery`],
//!    Figures 4–5), loop frequencies ([`loops`], §4.4), stretch
//!    distributions ([`stretch_exp`], §4.3's numbers), Theorem A.1 slice
//!    scaling ([`scaling`]) and Theorem B.1 concentration ([`theory`]),
//!    and the §4.2 linear-cost / exponential-diversity account
//!    ([`diversity`]).
//!
//! Trials run in parallel ([`parallel`]) and are reproducible from a
//! single seed. Results serialize to CSV/JSON ([`output`]).
//!
//! Experiments themselves are driven through the [`lab`] engine: one
//! [`lab::Experiment`] trait behind every figure/table driver, with a
//! shared deployment cache and resumable `run-all` sweeps.

pub mod convergence;
pub mod diversity;
pub mod dynamics_exp;
pub mod failure;
pub mod lab;
pub mod loops;
pub mod node_failures;
pub mod output;
pub mod parallel;
pub mod recovery;
pub mod reliability;
pub mod scaling;
pub mod stats;
pub mod stretch_exp;
pub mod summary;
pub mod telemetry;
pub mod theory;

pub use failure::FailureModel;
pub use lab::{DeploymentCache, Experiment, ExperimentRegistry, LabArgs, LabError, RunContext};
pub use reliability::{ReliabilityConfig, ReliabilityCurves};
pub use telemetry::{ExperimentTelemetry, TrialTelemetry};
