//! The convergence-window experiment (§6).
//!
//! The paper closes with: "path splicing may provide enough reliability
//! from link and node failures to permit dynamic routing to react much
//! more slowly to failures, and, in some settings, may even eliminate
//! the need for dynamic routing altogether." This experiment quantifies
//! that: when a link fails, link-state routing is blind until detection,
//! flooding and SPF complete; during that window every pair whose path
//! crossed the link is blacked out — unless splicing's *already
//! installed* alternate slices carry the traffic.
//!
//! For each single-link failure we measure, from the routing substrate's
//! real flooding behaviour, how long the window is (in flood rounds) and
//! which pairs splicing rescues inside it.

use splice_core::prelude::*;
use splice_core::slices::SplicingConfig;
use splice_graph::{EdgeId, EdgeMask, Graph};
use splice_routing::flooding::converge_instance;

/// Outcome for one failed link.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowResult {
    /// The failed link.
    pub failed: EdgeId,
    /// Flood rounds for the failure LSAs to reach every router (the
    /// convergence window, in hop-time units).
    pub flood_rounds: usize,
    /// LSA transmissions caused by the failure re-origination.
    pub flood_messages: usize,
    /// Ordered pairs whose slice-0 path used the link (blacked out
    /// without splicing).
    pub affected_pairs: usize,
    /// Affected pairs that network-based deflection keeps connected
    /// during the window (no reconvergence needed).
    pub rescued_pairs: usize,
    /// Destination columns (across all k slice planes) the incremental
    /// repair at the end of the window actually rewrote — the data-plane
    /// reconvergence cost, vs `k·n` columns for a full rebuild.
    pub repair_patched_columns: usize,
    /// Nodes re-relaxed by the repair across all planes (its frontier).
    pub repair_frontier_nodes: usize,
}

impl WindowResult {
    /// Fraction of affected pairs that ride out the window on splicing.
    pub fn rescue_rate(&self) -> f64 {
        if self.affected_pairs == 0 {
            1.0
        } else {
            self.rescued_pairs as f64 / self.affected_pairs as f64
        }
    }
}

/// Sweep every single-link failure.
pub fn convergence_window_sweep(
    g: &Graph,
    splicing_cfg: &SplicingConfig,
    seed: u64,
) -> Vec<WindowResult> {
    let splicing = Splicing::build(g, splicing_cfg, seed);
    let mut rng = rand::SeedableRng::seed_from_u64(seed);
    let nr = NetworkRecovery::default();

    g.edge_ids()
        .map(|e| {
            let mask = EdgeMask::from_failed(g.edge_count(), &[e]);

            // The control-plane cost of reacting: both endpoints
            // re-originate; measure flooding on the surviving topology.
            // (Seq 2 supersedes the steady-state LSAs at seq 1.)
            let edge = g.edge(e);
            let (mut dbs, _) = converge_instance(g, 0, &g.base_weights(), 1);
            let reoriginations = vec![
                splice_routing::lsdb::originate(g, edge.u, 0, &g.base_weights(), 2),
                splice_routing::lsdb::originate(g, edge.v, 0, &g.base_weights(), 2),
            ];
            let stats = splice_routing::flooding::flood(g, reoriginations, &mut dbs);

            // Data-plane impact during the window.
            let mut affected = 0usize;
            let mut rescued = 0usize;
            for t in g.nodes() {
                for s in g.nodes() {
                    if s == t {
                        continue;
                    }
                    // Does the slice-0 path use the failed link?
                    let uses = {
                        let mut at = s;
                        let mut hit = false;
                        while at != t {
                            let Some((next, pe)) = splicing.next_hop(0, at, t) else {
                                break;
                            };
                            if pe == e {
                                hit = true;
                                break;
                            }
                            at = next;
                        }
                        hit
                    };
                    if !uses {
                        continue;
                    }
                    affected += 1;
                    let out = nr.forward(&splicing, &mask, s, t, 0, &mut rng);
                    if out.is_delivered() {
                        rescued += 1;
                    }
                }
            }
            // What reconvergence costs once the window closes: repair the
            // deployment's FIB incrementally and account for what it
            // touched (next-hop-identical to a full rebuild).
            let (_, repair) = splicing.repair_report(g, &RepairEvent::LinkFailure(e));

            WindowResult {
                failed: e,
                flood_rounds: stats.rounds,
                flood_messages: stats.messages,
                affected_pairs: affected,
                rescued_pairs: rescued,
                repair_patched_columns: repair.patched_columns,
                repair_frontier_nodes: repair.frontier_nodes,
            }
        })
        .collect()
}

/// Aggregate over a sweep: mean rescue rate, worst window, totals.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowSummary {
    /// Mean rescue rate over links that affected at least one pair.
    pub mean_rescue_rate: f64,
    /// Largest flood window observed (rounds).
    pub worst_window_rounds: usize,
    /// Total affected ordered pairs across all failures.
    pub total_affected: usize,
    /// Total rescued.
    pub total_rescued: usize,
}

/// Summarize a sweep.
pub fn summarize(results: &[WindowResult]) -> WindowSummary {
    let with_impact: Vec<&WindowResult> = results.iter().filter(|r| r.affected_pairs > 0).collect();
    let mean_rescue_rate = if with_impact.is_empty() {
        1.0
    } else {
        with_impact.iter().map(|r| r.rescue_rate()).sum::<f64>() / with_impact.len() as f64
    };
    WindowSummary {
        mean_rescue_rate,
        worst_window_rounds: results.iter().map(|r| r.flood_rounds).max().unwrap_or(0),
        total_affected: results.iter().map(|r| r.affected_pairs).sum(),
        total_rescued: results.iter().map(|r| r.rescued_pairs).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_topology::abilene::abilene;

    #[test]
    fn sweep_covers_all_links_and_rescues_most_pairs() {
        let g = abilene().graph();
        let cfg = SplicingConfig::degree_based(5, 0.0, 3.0);
        let results = convergence_window_sweep(&g, &cfg, 3);
        assert_eq!(results.len(), g.edge_count());
        let summary = summarize(&results);
        assert!(summary.total_affected > 0, "some pairs must use each link");
        // Abilene's sparse degree-2 corridors limit what deflection can
        // rescue, and the exact rate wobbles with the RNG stream behind
        // the seeded perturbations, so we pin a floor loose enough to be
        // seed-robust rather than the rate one stream happens to produce
        // (Sprint-scale meshes rescue far more — see the bench binary).
        assert!(
            summary.mean_rescue_rate > 0.15,
            "splicing should rescue a meaningful share: {}",
            summary.mean_rescue_rate
        );
        assert!(summary.total_rescued <= summary.total_affected);
        assert!(summary.worst_window_rounds >= 1);
        let k_n_columns = 5 * g.node_count();
        for r in &results {
            assert!(
                r.repair_patched_columns > 0 && r.repair_patched_columns <= k_n_columns,
                "{:?}: repair must touch some columns, never more than k·n",
                r.failed
            );
            assert!(r.repair_frontier_nodes > 0);
        }
    }

    #[test]
    fn k1_rescues_nothing() {
        let g = abilene().graph();
        let cfg = SplicingConfig::degree_based(1, 0.0, 3.0);
        let results = convergence_window_sweep(&g, &cfg, 3);
        for r in &results {
            assert_eq!(r.rescued_pairs, 0, "one slice has no alternates");
        }
    }

    #[test]
    fn rescue_rate_edge_cases() {
        let r = WindowResult {
            failed: EdgeId(0),
            flood_rounds: 2,
            flood_messages: 10,
            affected_pairs: 0,
            rescued_pairs: 0,
            repair_patched_columns: 0,
            repair_frontier_nodes: 0,
        };
        assert_eq!(r.rescue_rate(), 1.0);
    }

    #[test]
    fn deterministic() {
        let g = abilene().graph();
        let cfg = SplicingConfig::degree_based(3, 0.0, 3.0);
        assert_eq!(
            convergence_window_sweep(&g, &cfg, 5),
            convergence_window_sweep(&g, &cfg, 5)
        );
    }
}
