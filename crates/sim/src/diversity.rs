//! §4.2's cost/benefit account: control-plane cost grows linearly in `k`
//! while the set of reachable paths grows far faster.
//!
//! Costs are *measured* on the `splice-routing` substrate (LSA flood
//! messages, LSDB entries, FIB entries, SPF runs), not estimated.
//! Diversity is measured two ways:
//!
//! * distinct end-to-end paths discovered by sampling random headers —
//!   the end-system's-eye view of "how many paths can I reach with the
//!   bits?";
//! * arc-disjoint connectivity of the per-destination successor graph —
//!   the Theorem A.1 quantity.

use crate::parallel::run_trials_stream;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_core::prelude::*;
use splice_core::slices::SplicingConfig;
use splice_graph::maxflow::succ_connectivity;
use splice_graph::{EdgeMask, Graph, NodeId};
use splice_routing::MultiTopology;

/// Measurements for one `k`.
#[derive(Clone, Debug, PartialEq)]
pub struct DiversityPoint {
    /// Slice count.
    pub k: usize,
    /// LSA transmissions to converge all k instances.
    pub messages: usize,
    /// Total installed FIB entries network-wide.
    pub fib_entries: usize,
    /// LSDB entries at one router.
    pub lsdb_entries: usize,
    /// Mean distinct paths per pair discovered by header sampling.
    pub distinct_paths: f64,
    /// Mean arc-disjoint path count in the successor graph per pair.
    pub succ_connectivity: f64,
}

/// Sweep `ks`, measuring cost on the routing substrate and diversity by
/// sampling `header_samples` random headers per ordered pair (over a
/// deterministic subset of `pair_samples` pairs to keep runtime bounded).
pub fn state_vs_diversity(
    g: &Graph,
    template: &SplicingConfig,
    ks: &[usize],
    header_samples: usize,
    pair_samples: usize,
    seed: u64,
) -> Vec<DiversityPoint> {
    let kmax = ks.iter().copied().max().expect("at least one k");
    let mut scfg = template.clone();
    scfg.k = kmax;
    let splicing = Splicing::build(g, &scfg, seed);
    let mask = EdgeMask::all_up(g.edge_count());
    let n = g.node_count();

    // Deterministic pair subset: stride over the ordered-pair space.
    let all_pairs: Vec<(NodeId, NodeId)> = (0..n as u32)
        .flat_map(|s| {
            (0..n as u32)
                .filter(move |&t| t != s)
                .map(move |t| (NodeId(s), NodeId(t)))
        })
        .collect();
    let stride = (all_pairs.len() / pair_samples.max(1)).max(1);
    let pairs: Vec<(NodeId, NodeId)> = all_pairs
        .into_iter()
        .step_by(stride)
        .take(pair_samples)
        .collect();

    ks.iter()
        .map(|&k| {
            let prefix = splicing.prefix(k);
            // Measured control-plane cost: full protocol convergence.
            let weights: Vec<Vec<f64>> = (0..k).map(|i| prefix.weights(i).to_vec()).collect();
            let mt = MultiTopology::converge(g, weights);

            // Diversity by header sampling (parallel over pairs).
            let opts = ForwarderOptions::default();
            // One stream per k: with the old `seed ^ k` bases, adjacent
            // k's trial seeds collided pairwise.
            let per_pair: Vec<(usize, usize)> =
                run_trials_stream(pairs.len(), seed, k as u64, |i, s| {
                    let (src, dst) = pairs[i];
                    let fwd = Forwarder::new(&prefix, g, &mask);
                    let mut rng = StdRng::seed_from_u64(s);
                    let mut distinct: std::collections::HashSet<Vec<u32>> =
                        std::collections::HashSet::new();
                    for _ in 0..header_samples {
                        let header = ForwardingBits::random(
                            &mut rng,
                            20.min(128 / splice_core::header::bits_per_hop(k).max(1) as usize),
                            k,
                        );
                        if let ForwardingOutcome::Delivered(tr) =
                            fwd.forward(src, dst, header, &opts)
                        {
                            let key: Vec<u32> =
                                tr.steps.iter().map(|st| st.node.0).chain([dst.0]).collect();
                            distinct.insert(key);
                        }
                    }
                    let conn =
                        succ_connectivity(&prefix.successors_toward(dst, k, &mask), src, dst);
                    (distinct.len(), conn)
                });

            let distinct_paths =
                per_pair.iter().map(|&(d, _)| d as f64).sum::<f64>() / pairs.len() as f64;
            let succ_conn =
                per_pair.iter().map(|&(_, c)| c as f64).sum::<f64>() / pairs.len() as f64;

            DiversityPoint {
                k,
                messages: mt.usage.messages,
                fib_entries: mt.usage.fib_entries,
                lsdb_entries: mt.usage.lsdb_entries,
                distinct_paths,
                succ_connectivity: succ_conn,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_topology::abilene::abilene;

    #[test]
    fn cost_linear_diversity_growing() {
        let g = abilene().graph();
        let template = SplicingConfig::degree_based(5, 0.0, 3.0);
        let pts = state_vs_diversity(&g, &template, &[1, 2, 4], 30, 20, 13);
        assert_eq!(pts.len(), 3);
        // Linear cost: k=2 costs twice k=1, k=4 four times.
        assert_eq!(pts[1].messages, 2 * pts[0].messages);
        assert_eq!(pts[2].messages, 4 * pts[0].messages);
        assert_eq!(pts[1].fib_entries, 2 * pts[0].fib_entries);
        assert_eq!(pts[2].lsdb_entries, 4 * pts[0].lsdb_entries);
        // Diversity: k=1 has exactly one path per pair; more with slices.
        assert!((pts[0].distinct_paths - 1.0).abs() < 1e-9);
        assert!(pts[2].distinct_paths > pts[0].distinct_paths);
        assert!(pts[2].succ_connectivity >= pts[0].succ_connectivity);
        assert!((pts[0].succ_connectivity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let g = abilene().graph();
        let template = SplicingConfig::degree_based(3, 0.0, 3.0);
        let a = state_vs_diversity(&g, &template, &[2], 10, 10, 3);
        let b = state_vs_diversity(&g, &template, &[2], 10, 10, 3);
        assert_eq!(a, b);
    }
}
