//! MRC-style slice generation (§5 "alternate slicing mechanisms").
//!
//! The paper contrasts its random perturbations with schemes that compute
//! backup topologies explicitly, naming Multiple Routing Configurations
//! (Kvalbein et al., its citation \[11\]). MRC builds `k` *configurations*;
//! each link is **isolated** in exactly one of them (its weight pushed so
//! high that no shortest path uses it unless nothing else exists). When a
//! link fails, deflecting into the configuration that isolates it yields
//! a path guaranteed to avoid it — single-failure recovery by
//! construction, at the cost of deliberate (non-random) configuration.
//!
//! Because a configuration is just a weight vector, MRC drops straight
//! into [`Splicing::from_weight_vectors`]: the data plane, recovery
//! machinery, and every experiment in this workspace run unchanged over
//! MRC slices. This module builds the configurations and is the
//! comparison target for the `slicing_vs_mrc` bench.

use crate::slices::Splicing;
use splice_graph::{EdgeId, EdgeMask, Graph};

/// Weight multiplier for isolated links: high enough that any detour is
/// preferred, low enough to stay finite (MRC's "restricted" links remain
/// usable as a last resort).
pub const ISOLATION_PENALTY: f64 = 1e4;

/// Assign links to `k - 1` backup configurations (slice 0 stays the
/// unperturbed base, mirroring this workspace's convention).
///
/// The assignment is greedy: links are taken heaviest-degree-sum first
/// and placed in a configuration where isolating them keeps that
/// configuration's *unrestricted* subgraph connected — the validity
/// condition that makes the isolating config's shortest paths provably
/// avoid the link. Links no configuration can take safely (bridges, or
/// too few configurations) stay **unprotected** (`None`); more backups
/// protect more links, exactly as in the MRC paper.
pub fn mrc_assignment(g: &Graph, backups: usize) -> Vec<Option<usize>> {
    assert!(backups >= 1, "need at least one backup configuration");
    let m = g.edge_count();
    let mut assignment: Vec<Option<usize>> = vec![None; m];
    // Heaviest links first so the constrained choices happen early.
    let mut order: Vec<EdgeId> = g.edge_ids().collect();
    order.sort_by_key(|&e| {
        let edge = g.edge(e);
        std::cmp::Reverse(g.degree(edge.u) + g.degree(edge.v))
    });

    // isolated[c] = mask of links isolated in configuration c so far.
    let mut isolated: Vec<EdgeMask> = (0..backups).map(|_| EdgeMask::all_up(m)).collect();
    for (i, &e) in order.iter().enumerate() {
        let start = i % backups; // rotate the preferred configuration
        for off in 0..backups {
            let c = (start + off) % backups;
            // Would isolating e in c still leave c's unrestricted graph
            // connected? (Treat isolated links as absent.)
            let mut trial = isolated[c].clone();
            trial.fail(e);
            if splice_graph::traversal::is_connected(g, &trial) {
                isolated[c].fail(e);
                assignment[e.index()] = Some(c);
                break;
            }
        }
    }
    assignment
}

/// Fraction of links that got an isolating configuration.
pub fn protected_fraction(assignment: &[Option<usize>]) -> f64 {
    if assignment.is_empty() {
        return 1.0;
    }
    assignment.iter().filter(|a| a.is_some()).count() as f64 / assignment.len() as f64
}

/// Build the MRC weight vectors: slice 0 = base weights; slice `c + 1`
/// has the links of configuration `c` isolated.
pub fn mrc_weight_vectors(g: &Graph, k: usize) -> Vec<Vec<f64>> {
    assert!(k >= 2, "MRC needs a base plus at least one backup");
    let backups = k - 1;
    let assignment = mrc_assignment(g, backups);
    let base = g.base_weights();
    let mut vectors = vec![base.clone()];
    for c in 0..backups {
        let w = base
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                if assignment[i] == Some(c) {
                    b * ISOLATION_PENALTY
                } else {
                    b
                }
            })
            .collect();
        vectors.push(w);
    }
    vectors
}

/// Build an MRC deployment directly.
pub fn build_mrc(g: &Graph, k: usize) -> Splicing {
    Splicing::from_weight_vectors(g, mrc_weight_vectors(g, k))
}

/// The backup configuration (slice index) that isolates `e`, for a
/// deployment built by [`build_mrc`] with the same `k`; `None` when the
/// link is unprotected at this `k`.
pub fn isolating_slice(g: &Graph, k: usize, e: EdgeId) -> Option<usize> {
    let assignment = mrc_assignment(g, k - 1);
    assignment[e.index()].map(|c| c + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_topology::abilene::abilene;
    use splice_topology::sprint::sprint;

    /// The smallest k that protects every Abilene link (found by search;
    /// pinned so regressions in the greedy show up).
    fn full_protection_k(g: &splice_graph::Graph) -> usize {
        (2..=12)
            .find(|&k| protected_fraction(&mrc_assignment(g, k - 1)) == 1.0)
            .expect("some k protects everything on a 2-connected graph")
    }

    #[test]
    fn enough_backups_protect_every_link() {
        for g in [abilene().graph(), sprint().graph()] {
            let k = full_protection_k(&g);
            assert!(k <= 10, "needed k = {k}");
            let assignment = mrc_assignment(&g, k - 1);
            assert_eq!(protected_fraction(&assignment), 1.0);
            // Each used configuration holds a nonempty share.
            for c in 0..k - 1 {
                assert!(assignment.contains(&Some(c)), "config {c} empty at k = {k}");
            }
        }
    }

    #[test]
    fn protection_grows_with_backups() {
        let g = sprint().graph();
        let fracs: Vec<f64> = (1..8)
            .map(|b| protected_fraction(&mrc_assignment(&g, b)))
            .collect();
        for w in fracs.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "{fracs:?}");
        }
        assert!(*fracs.last().unwrap() > 0.95);
    }

    #[test]
    fn weight_vectors_shape() {
        let g = abilene().graph();
        let k = full_protection_k(&g);
        let vs = mrc_weight_vectors(&g, k);
        assert_eq!(vs.len(), k);
        assert_eq!(vs[0], g.base_weights());
        // Every link is penalized in exactly one backup.
        let base = g.base_weights();
        for (i, &b) in base.iter().enumerate() {
            let penalized = vs[1..k].iter().filter(|v| v[i] > b * 2.0).count();
            assert_eq!(penalized, 1, "link {i} penalized {penalized} times");
        }
    }

    #[test]
    fn isolating_slice_avoids_the_link() {
        let g = abilene().graph();
        let k = full_protection_k(&g);
        let mrc = build_mrc(&g, k);
        for e in g.edge_ids() {
            let slice = isolating_slice(&g, k, e).expect("fully protected");
            assert!(slice >= 1 && slice < k);
            // The validity condition guarantees the isolating config's
            // shortest paths avoid e entirely.
            let tables = mrc.tables(slice);
            for fib in &tables.fibs {
                for entry in fib.entries.iter().flatten() {
                    assert_ne!(entry.1, e, "isolated link used in its own config");
                }
            }
        }
    }

    #[test]
    fn mrc_recovers_any_single_failure_via_deflection() {
        use crate::recovery::NetworkRecovery;
        use rand::SeedableRng;
        let g = abilene().graph();
        let k = full_protection_k(&g);
        let mrc = build_mrc(&g, k);
        let nr = NetworkRecovery::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for e in g.edge_ids() {
            let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
            for t in g.nodes() {
                for s in g.nodes() {
                    if s == t {
                        continue;
                    }
                    let out = nr.forward(&mrc, &mask, s, t, 0, &mut rng);
                    assert!(
                        out.is_delivered(),
                        "MRC must survive single failure {e:?} for {s:?}->{t:?}: {out:?}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "base plus at least one backup")]
    fn k1_rejected() {
        let g = abilene().graph();
        build_mrc(&g, 1);
    }

    /// The MRC recovery invariant, walked directly over the forwarding
    /// tables: for every single-link failure that leaves the graph
    /// connected, the isolating configuration's next hops deliver every
    /// flow without ever crossing the failed link. This is the claim
    /// [`mrc_recovers_any_single_failure_via_deflection`] tests through
    /// the recovery machinery; here nothing can mask a violation.
    #[test]
    fn isolating_config_delivers_around_any_single_failure() {
        let g = abilene().graph();
        let k = full_protection_k(&g);
        let mrc = build_mrc(&g, k);
        let n = g.node_count();
        for e in g.edge_ids() {
            let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
            if !splice_graph::traversal::is_connected(&g, &mask) {
                continue; // physics: no scheme can route across a cut
            }
            let slice = isolating_slice(&g, k, e).expect("fully protected");
            for t in g.nodes() {
                for s in g.nodes() {
                    if s == t {
                        continue;
                    }
                    let mut at = s;
                    let mut hops = 0;
                    while at != t {
                        let (next, edge) = mrc
                            .next_hop(slice, at, t)
                            .expect("isolating config routes everything");
                        assert_ne!(
                            edge, e,
                            "isolating config {slice} for {e:?} used the failed link \
                             ({s:?} -> {t:?} at {at:?})"
                        );
                        at = next;
                        hops += 1;
                        assert!(hops <= n, "loop in isolating config {slice} for {e:?}");
                    }
                }
            }
        }
    }

    /// Bridges admit no isolating configuration (removing one disconnects
    /// the graph, violating MRC's validity condition), so they stay
    /// unprotected at any k.
    #[test]
    fn bridges_are_never_protected() {
        use splice_graph::graph::from_edges;
        // Two triangles joined by a bridge (edge index 6: 2 -- 3).
        let g = from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 3, 1.0),
                (2, 3, 1.0),
            ],
        );
        let bridge = EdgeId(6);
        for k in 2..=8 {
            assert_eq!(isolating_slice(&g, k, bridge), None, "k = {k}");
        }
        // With enough backups every cycle edge is protected — only the
        // bridge stays out.
        let assignment = mrc_assignment(&g, 7);
        assert!(
            assignment
                .iter()
                .enumerate()
                .all(|(i, a)| (i == bridge.index()) == a.is_none()),
            "{assignment:?}"
        );
    }
}
