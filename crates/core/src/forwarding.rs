//! The splicing data plane: walking a packet across slices (§3.2).
//!
//! A [`Forwarder`] executes Algorithm 1 over a [`Splicing`]'s forwarding
//! tables under a failure mask: at every hop it reads the header to decide
//! the slice, looks up the next hop in that slice's FIB, and moves the
//! packet if the link is up. The full [`Trace`] is recorded so recovery
//! experiments can measure stretch, hop counts, and forwarding loops
//! (§4.3–§4.4).

use crate::hash::slice_for_flow;
use crate::header::ForwardingBits;
use crate::slices::Splicing;
use splice_graph::{EdgeId, EdgeMask, Graph, NodeId};
use std::collections::HashSet;

/// What a hop-by-hop walk recorded.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Origin of the packet.
    pub src: NodeId,
    /// Intended destination.
    pub dst: NodeId,
    /// Per-hop records: the node the packet was at, the slice used to
    /// leave it, and the edge traversed.
    pub steps: Vec<TraceStep>,
    /// Where the packet ended up.
    pub last: NodeId,
}

/// One hop of a trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceStep {
    /// Node the packet departed from.
    pub node: NodeId,
    /// Slice whose FIB was consulted.
    pub slice: usize,
    /// Edge the packet crossed.
    pub edge: EdgeId,
}

impl Trace {
    /// Number of hops taken.
    pub fn hop_count(&self) -> usize {
        self.steps.len()
    }

    /// Total length of the walk under a per-edge metric (e.g. latencies).
    pub fn length(&self, metric: &[f64]) -> f64 {
        self.steps.iter().map(|s| metric[s.edge.index()]).sum()
    }

    /// Number of slice switches along the walk.
    pub fn slice_switches(&self) -> usize {
        self.steps
            .windows(2)
            .filter(|w| w[0].slice != w[1].slice)
            .count()
    }

    /// Distinct slices used.
    pub fn slices_used(&self) -> usize {
        let set: HashSet<usize> = self.steps.iter().map(|s| s.slice).collect();
        set.len()
    }

    /// Lengths of forwarding loops in the walk: every time a node is
    /// re-visited, the number of hops since its previous visit. A 2-hop
    /// loop is an immediate bounce (`a → b → a`). Empty when the walk is
    /// simple. This is the §4.4 loop metric.
    ///
    /// The last-visit table is a stamped `Vec` indexed by node id, reused
    /// across calls through a thread-local: bumping the stamp invalidates
    /// all previous entries at once, so per-trace cost is O(hops) with no
    /// hashing and no per-call clear of the table. The Monte-Carlo
    /// harness calls this once per walked packet, which made the old
    /// per-call `HashMap` allocation a measurable hot spot.
    pub fn loop_lengths(&self) -> Vec<usize> {
        thread_local! {
            // (stamp, last position) per node index, plus the current stamp.
            static LAST_SEEN: std::cell::RefCell<(Vec<(u64, usize)>, u64)> =
                const { std::cell::RefCell::new((Vec::new(), 0)) };
        }
        LAST_SEEN.with(|cell| {
            let (table, stamp) = &mut *cell.borrow_mut();
            *stamp += 1;
            let max_id = self
                .steps
                .iter()
                .map(|s| s.node.index())
                .chain(std::iter::once(self.last.index()))
                .max()
                .unwrap_or(0);
            if table.len() <= max_id {
                table.resize(max_id + 1, (0, 0));
            }
            let mut loops = Vec::new();
            let visits = self
                .steps
                .iter()
                .map(|s| s.node)
                .chain(std::iter::once(self.last));
            for (i, n) in visits.enumerate() {
                let entry = &mut table[n.index()];
                if entry.0 == *stamp {
                    loops.push(i - entry.1);
                }
                *entry = (*stamp, i);
            }
            loops
        })
    }

    /// Whether the walk revisited any node.
    pub fn has_loop(&self) -> bool {
        !self.loop_lengths().is_empty()
    }
}

/// Why the walk ended.
#[derive(Clone, Debug, PartialEq)]
pub enum ForwardingOutcome {
    /// The packet reached its destination.
    Delivered(Trace),
    /// The selected slice had no FIB entry at this node.
    DeadEnd(Trace),
    /// The selected slice's next-hop link was failed; without a recovery
    /// scheme the packet is dropped here.
    LinkDown {
        /// Walk up to the drop point.
        trace: Trace,
        /// Slice whose next hop was unusable.
        slice: usize,
    },
    /// The packet entered a cycle it can never leave (header exhausted,
    /// same node and slice revisited).
    PersistentLoop(Trace),
    /// Hop budget exhausted (transient loops or extremely long walks).
    TtlExceeded(Trace),
}

impl ForwardingOutcome {
    /// Whether the packet was delivered.
    pub fn is_delivered(&self) -> bool {
        matches!(self, ForwardingOutcome::Delivered(_))
    }

    /// The trace, regardless of outcome.
    pub fn trace(&self) -> &Trace {
        match self {
            ForwardingOutcome::Delivered(t)
            | ForwardingOutcome::DeadEnd(t)
            | ForwardingOutcome::LinkDown { trace: t, .. }
            | ForwardingOutcome::PersistentLoop(t)
            | ForwardingOutcome::TtlExceeded(t) => t,
        }
    }
}

/// What a router does when the header runs out of bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExhaustedPolicy {
    /// §4.4: "the traffic will remain in its current tree en route to the
    /// destination" — the loop-limiting default.
    #[default]
    StayInCurrent,
    /// Algorithm 1 taken literally: `fwdbits == 0` falls back to
    /// `Hash(src, dst)`.
    HashFallback,
}

/// Forwarding knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForwarderOptions {
    /// Hop budget; the IP TTL analogue. 64 covers any sensible walk on
    /// ISP-scale maps while still terminating pathological loops fast.
    pub ttl: usize,
    /// Behaviour on header exhaustion.
    pub exhausted: ExhaustedPolicy,
}

impl Default for ForwarderOptions {
    fn default() -> Self {
        ForwarderOptions {
            ttl: 64,
            exhausted: ExhaustedPolicy::StayInCurrent,
        }
    }
}

/// A configured data plane: slices + topology + current failure state.
pub struct Forwarder<'a> {
    splicing: &'a Splicing,
    #[allow(dead_code)]
    graph: &'a Graph,
    mask: &'a EdgeMask,
}

impl<'a> Forwarder<'a> {
    /// Bind a data plane to a splicing deployment and a failure state.
    pub fn new(splicing: &'a Splicing, graph: &'a Graph, mask: &'a EdgeMask) -> Self {
        Forwarder {
            splicing,
            graph,
            mask,
        }
    }

    /// Number of slices behind this forwarder.
    pub fn k(&self) -> usize {
        self.splicing.k()
    }

    /// Walk a packet from `src` to `dst` driven by `header`.
    ///
    /// The slice before the first header read is `Hash(src, dst)`, per
    /// Algorithm 1's default branch — it only matters when the header
    /// starts out empty.
    pub fn forward(
        &self,
        src: NodeId,
        dst: NodeId,
        mut header: ForwardingBits,
        opts: &ForwarderOptions,
    ) -> ForwardingOutcome {
        let k = self.splicing.k();
        let mut current_slice = slice_for_flow(src, dst, k);
        let mut steps = Vec::new();
        let mut at = src;
        // (node, slice) states seen with an exhausted header: revisiting
        // one means the walk is deterministically periodic.
        let mut exhausted_states: HashSet<(NodeId, usize)> = HashSet::new();

        while at != dst {
            match header.read_and_shift(k) {
                Some(s) => current_slice = s,
                None => match opts.exhausted {
                    ExhaustedPolicy::StayInCurrent => {}
                    ExhaustedPolicy::HashFallback => {
                        current_slice = slice_for_flow(src, dst, k);
                    }
                },
            }
            if header.is_exhausted() && !exhausted_states.insert((at, current_slice)) {
                let trace = Trace {
                    src,
                    dst,
                    steps,
                    last: at,
                };
                return ForwardingOutcome::PersistentLoop(trace);
            }
            let Some((next, edge)) = self.splicing.next_hop(current_slice, at, dst) else {
                let trace = Trace {
                    src,
                    dst,
                    steps,
                    last: at,
                };
                return ForwardingOutcome::DeadEnd(trace);
            };
            if self.mask.is_failed(edge) {
                let trace = Trace {
                    src,
                    dst,
                    steps,
                    last: at,
                };
                return ForwardingOutcome::LinkDown {
                    trace,
                    slice: current_slice,
                };
            }
            steps.push(TraceStep {
                node: at,
                slice: current_slice,
                edge,
            });
            at = next;
            if steps.len() > opts.ttl {
                let trace = Trace {
                    src,
                    dst,
                    steps,
                    last: at,
                };
                return ForwardingOutcome::TtlExceeded(trace);
            }
        }
        ForwardingOutcome::Delivered(Trace {
            src,
            dst,
            steps,
            last: at,
        })
    }

    /// Walk a packet driven by §5's compressed single-counter header:
    /// every hop with a non-zero counter deflects to a deterministic
    /// alternate slice and decrements; a drained counter pins the packet
    /// to its current tree.
    ///
    /// The starting slice is `Hash(src, dst)`, as in [`Self::forward`].
    pub fn forward_counter(
        &self,
        src: NodeId,
        dst: NodeId,
        mut header: crate::header::CounterHeader,
        opts: &ForwarderOptions,
    ) -> ForwardingOutcome {
        let k = self.splicing.k();
        let mut current_slice = slice_for_flow(src, dst, k);
        let mut steps = Vec::new();
        let mut at = src;
        let mut drained_states: HashSet<(NodeId, usize)> = HashSet::new();

        while at != dst {
            current_slice = header.step(current_slice, k);
            if header.counter == 0 && !drained_states.insert((at, current_slice)) {
                return ForwardingOutcome::PersistentLoop(Trace {
                    src,
                    dst,
                    steps,
                    last: at,
                });
            }
            let Some((next, edge)) = self.splicing.next_hop(current_slice, at, dst) else {
                return ForwardingOutcome::DeadEnd(Trace {
                    src,
                    dst,
                    steps,
                    last: at,
                });
            };
            if self.mask.is_failed(edge) {
                return ForwardingOutcome::LinkDown {
                    trace: Trace {
                        src,
                        dst,
                        steps,
                        last: at,
                    },
                    slice: current_slice,
                };
            }
            steps.push(TraceStep {
                node: at,
                slice: current_slice,
                edge,
            });
            at = next;
            if steps.len() > opts.ttl {
                return ForwardingOutcome::TtlExceeded(Trace {
                    src,
                    dst,
                    steps,
                    last: at,
                });
            }
        }
        ForwardingOutcome::Delivered(Trace {
            src,
            dst,
            steps,
            last: at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slices::SplicingConfig;
    use splice_graph::graph::from_edges;
    use splice_topology::abilene::abilene;

    fn setup() -> (Graph, Splicing) {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(4, 0.0, 3.0), 21);
        (g, sp)
    }

    #[test]
    fn delivers_on_clean_network() {
        let (g, sp) = setup();
        let mask = EdgeMask::all_up(g.edge_count());
        let fwd = Forwarder::new(&sp, &g, &mask);
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t {
                    continue;
                }
                let out = fwd.forward(
                    s,
                    t,
                    ForwardingBits::stay_in_slice(0, sp.k()),
                    &ForwarderOptions::default(),
                );
                assert!(out.is_delivered(), "{s:?}->{t:?}: {out:?}");
            }
        }
    }

    #[test]
    fn slice0_trace_matches_shortest_path() {
        let (g, sp) = setup();
        let mask = EdgeMask::all_up(g.edge_count());
        let fwd = Forwarder::new(&sp, &g, &mask);
        let (s, t) = (NodeId(0), NodeId(10));
        let out = fwd.forward(
            s,
            t,
            ForwardingBits::stay_in_slice(0, sp.k()),
            &ForwarderOptions::default(),
        );
        let ForwardingOutcome::Delivered(trace) = out else {
            panic!("not delivered")
        };
        let spt = splice_graph::dijkstra(&g, t, &g.base_weights());
        let expect = spt.path_from(s).unwrap();
        assert_eq!(trace.hop_count(), expect.hop_count());
        let w = g.base_weights();
        assert!((trace.length(&w) - expect.length(&w)).abs() < 1e-9);
    }

    #[test]
    fn drops_at_failed_link_without_recovery() {
        let (g, sp) = setup();
        // Fail the first edge of 0's shortest path to 10 in slice 0.
        let (_, edge) = sp.next_hop(0, NodeId(0), NodeId(10)).unwrap();
        let mask = EdgeMask::from_failed(g.edge_count(), &[edge]);
        let fwd = Forwarder::new(&sp, &g, &mask);
        let out = fwd.forward(
            NodeId(0),
            NodeId(10),
            ForwardingBits::stay_in_slice(0, sp.k()),
            &ForwarderOptions::default(),
        );
        match out {
            ForwardingOutcome::LinkDown { trace, slice } => {
                assert_eq!(slice, 0);
                assert_eq!(trace.last, NodeId(0));
                assert_eq!(trace.hop_count(), 0);
            }
            other => panic!("expected LinkDown, got {other:?}"),
        }
    }

    #[test]
    fn header_switches_slices_mid_path() {
        let (g, sp) = setup();
        let mask = EdgeMask::all_up(g.edge_count());
        let fwd = Forwarder::new(&sp, &g, &mask);
        // Alternate slices every hop; must still deliver (all links up).
        let hops: Vec<u8> = (0..20).map(|i| (i % sp.k()) as u8).collect();
        let out = fwd.forward(
            NodeId(0),
            NodeId(9),
            ForwardingBits::from_hops(&hops, sp.k()),
            &ForwarderOptions::default(),
        );
        assert!(out.is_delivered(), "{out:?}");
    }

    #[test]
    fn ttl_bounds_the_walk() {
        let (g, sp) = setup();
        let mask = EdgeMask::all_up(g.edge_count());
        let fwd = Forwarder::new(&sp, &g, &mask);
        let out = fwd.forward(
            NodeId(0),
            NodeId(10),
            ForwardingBits::stay_in_slice(0, sp.k()),
            &ForwarderOptions {
                ttl: 1,
                ..Default::default()
            },
        );
        assert!(matches!(out, ForwardingOutcome::TtlExceeded(_)));
    }

    #[test]
    fn persistent_loop_detected() {
        // Two slices that bounce a packet between nodes 0 and 1 forever:
        // build a 4-cycle and craft FIBs via weights so slice routes differ.
        // Simplest deterministic check: exhausted header + a crafted state
        // where next hops cycle. We emulate by TTL-free loop: node 0 -> 1
        // in slice 0 and 1 -> 0 is impossible in one SPT (trees are loop
        // free), so loops need slice switches. With an exhausted header and
        // StayInCurrent the walk stays in one tree, so delivery or progress
        // is guaranteed -- assert that instead.
        let (g, sp) = setup();
        let mask = EdgeMask::all_up(g.edge_count());
        let fwd = Forwarder::new(&sp, &g, &mask);
        let out = fwd.forward(
            NodeId(3),
            NodeId(7),
            ForwardingBits::empty(sp.k()),
            &ForwarderOptions::default(),
        );
        assert!(out.is_delivered(), "single-tree walks cannot loop: {out:?}");
    }

    #[test]
    fn empty_header_uses_hash_slice() {
        let (g, sp) = setup();
        let mask = EdgeMask::all_up(g.edge_count());
        let fwd = Forwarder::new(&sp, &g, &mask);
        let (s, t) = (NodeId(2), NodeId(8));
        let out = fwd.forward(
            s,
            t,
            ForwardingBits::empty(sp.k()),
            &ForwarderOptions::default(),
        );
        let ForwardingOutcome::Delivered(trace) = out else {
            panic!()
        };
        let expected_slice = crate::hash::slice_for_flow(s, t, sp.k());
        assert!(trace.steps.iter().all(|st| st.slice == expected_slice));
    }

    #[test]
    fn trace_loop_metrics() {
        let t = Trace {
            src: NodeId(0),
            dst: NodeId(3),
            steps: vec![
                TraceStep {
                    node: NodeId(0),
                    slice: 0,
                    edge: EdgeId(0),
                },
                TraceStep {
                    node: NodeId(1),
                    slice: 1,
                    edge: EdgeId(0),
                },
                TraceStep {
                    node: NodeId(0),
                    slice: 0,
                    edge: EdgeId(1),
                },
            ],
            last: NodeId(3),
        };
        assert!(t.has_loop());
        assert_eq!(t.loop_lengths(), vec![2]); // 0 -> 1 -> 0
        assert_eq!(t.slice_switches(), 2);
        assert_eq!(t.slices_used(), 2);
    }

    #[test]
    fn simple_trace_has_no_loops() {
        let t = Trace {
            src: NodeId(0),
            dst: NodeId(2),
            steps: vec![
                TraceStep {
                    node: NodeId(0),
                    slice: 0,
                    edge: EdgeId(0),
                },
                TraceStep {
                    node: NodeId(1),
                    slice: 0,
                    edge: EdgeId(1),
                },
            ],
            last: NodeId(2),
        };
        assert!(!t.has_loop());
        assert_eq!(t.slice_switches(), 0);
    }

    #[test]
    fn counter_zero_follows_hash_slice() {
        let (g, sp) = setup();
        let mask = EdgeMask::all_up(g.edge_count());
        let fwd = Forwarder::new(&sp, &g, &mask);
        let (s, t) = (NodeId(1), NodeId(9));
        let out = fwd.forward_counter(
            s,
            t,
            crate::header::CounterHeader::new(0),
            &ForwarderOptions::default(),
        );
        let ForwardingOutcome::Delivered(tr) = out else {
            panic!()
        };
        let expected = crate::hash::slice_for_flow(s, t, sp.k());
        assert!(tr.steps.iter().all(|st| st.slice == expected));
    }

    #[test]
    fn counter_deflections_still_deliver_clean() {
        let (g, sp) = setup();
        let mask = EdgeMask::all_up(g.edge_count());
        let fwd = Forwarder::new(&sp, &g, &mask);
        for n in [1u32, 2, 3, 5] {
            let out = fwd.forward_counter(
                NodeId(0),
                NodeId(10),
                crate::header::CounterHeader::new(n),
                &ForwarderOptions::default(),
            );
            assert!(out.is_delivered(), "counter={n}: {out:?}");
        }
    }

    #[test]
    fn counter_changes_the_path() {
        let (g, sp) = setup();
        let mask = EdgeMask::all_up(g.edge_count());
        let fwd = Forwarder::new(&sp, &g, &mask);
        let base = fwd.forward_counter(
            NodeId(0),
            NodeId(10),
            crate::header::CounterHeader::new(0),
            &ForwarderOptions::default(),
        );
        // Some counter value must divert the walk (slices differ somewhere).
        let diverted = (1..=4u32).any(|n| {
            let out = fwd.forward_counter(
                NodeId(0),
                NodeId(10),
                crate::header::CounterHeader::new(n),
                &ForwarderOptions::default(),
            );
            out.trace().steps != base.trace().steps
        });
        assert!(diverted, "no counter value changed the path");
    }

    #[test]
    fn dead_end_when_destination_unreachable() {
        let g = from_edges(3, &[(0, 1, 1.0)]); // node 2 isolated
        let sp = Splicing::build(&g, &SplicingConfig::uniform(2, 1.0), 1);
        let mask = EdgeMask::all_up(g.edge_count());
        let fwd = Forwarder::new(&sp, &g, &mask);
        let out = fwd.forward(
            NodeId(0),
            NodeId(2),
            ForwardingBits::stay_in_slice(0, 2),
            &ForwarderOptions::default(),
        );
        assert!(matches!(out, ForwardingOutcome::DeadEnd(_)));
    }
}
