//! Link-weight perturbations (§3.1.1).
//!
//! Every slice is the shortest-path forest of a *perturbed* weight vector:
//!
//! ```text
//! L'(i,j) = L(i,j) + Weight(a,b,i,j) · Random(0, L(i,j))
//! ```
//!
//! The perturbed weight is always at least the original (`Random ≥ 0`), so
//! slice paths can be longer but never shorter than true shortest paths —
//! this is what bounds stretch (§2, Appendix B).
//!
//! Two `Weight()` functions from the paper:
//!
//! * [`Uniform`] — `Weight` is the same constant for every link.
//! * [`DegreeBased`] — `Weight(a,b,i,j) = f_ab(degree(i) + degree(j))`, a
//!   linear map of the degree sum into `[a, b]`: links touching hubs are
//!   perturbed harder, discouraging many shortest paths from sharing the
//!   same hub link. Figure 3 uses `Weight(0, 3)`.
//!
//! Plus the range perturbation of Theorem A.1 ([`TheoremA1`]), which draws
//! the whole weight uniformly from `(L, 2·D·k·L)`.

use rand::rngs::StdRng;
use rand::Rng;
use splice_graph::Graph;

/// A strategy producing one perturbed weight vector per call.
///
/// Implementations must be deterministic given the RNG state, so that a
/// seeded experiment is exactly reproducible.
pub trait Perturbation {
    /// Produce a perturbed weight vector for `g` (length = edge count).
    fn perturb(&self, g: &Graph, rng: &mut StdRng) -> Vec<f64>;

    /// A short human-readable label for experiment output.
    fn label(&self) -> String;
}

/// Uniform perturbation: `Weight(a,b,i,j) = strength` for every link, so
/// `L' = L + strength · U(0, L)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Uniform {
    /// The constant multiplier applied to `U(0, L)`.
    pub strength: f64,
}

impl Uniform {
    /// A uniform perturbation with the given strength (must be ≥ 0).
    pub fn new(strength: f64) -> Self {
        assert!(strength >= 0.0 && strength.is_finite());
        Uniform { strength }
    }
}

impl Perturbation for Uniform {
    fn perturb(&self, g: &Graph, rng: &mut StdRng) -> Vec<f64> {
        g.edges()
            .iter()
            .map(|e| {
                // `Random(0, L)` needs a non-empty range; graphs reject
                // non-positive weights at construction, so the guard only
                // fires for graphs built around [`Graph::add_edge`] and
                // keeps `perturb` total (passing such weights through for
                // `validate_weights` to report).
                if e.weight.is_finite() && e.weight > 0.0 {
                    e.weight + self.strength * rng.gen_range(0.0..e.weight)
                } else {
                    e.weight
                }
            })
            .collect()
    }

    fn label(&self) -> String {
        format!("uniform({})", self.strength)
    }
}

/// Degree-based perturbation: `Weight(a, b, i, j) = f_ab(deg(i) + deg(j))`
/// where `f_ab` maps the observed degree-sum range linearly onto `[a, b]`.
///
/// With `a = 0, b = 3` (the paper's Figure 3 setting), the lightest-degree
/// link keeps its weight exactly, while a link between the two biggest
/// hubs can up to quadruple.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeBased {
    /// `Weight` at the minimum degree sum.
    pub a: f64,
    /// `Weight` at the maximum degree sum.
    pub b: f64,
}

impl DegreeBased {
    /// The paper's `Weight(a, b)` with `a <= b`, both finite and ≥ 0.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(a >= 0.0 && b >= a && b.is_finite());
        DegreeBased { a, b }
    }

    /// The multiplier for an edge with the given degree sum, given the
    /// topology-wide degree-sum range.
    fn weight_for(&self, degree_sum: usize, lo: usize, hi: usize) -> f64 {
        if hi == lo {
            // Regular graph: f_ab degenerates to the midpoint.
            return (self.a + self.b) / 2.0;
        }
        let t = (degree_sum - lo) as f64 / (hi - lo) as f64;
        self.a + t * (self.b - self.a)
    }
}

impl Perturbation for DegreeBased {
    fn perturb(&self, g: &Graph, rng: &mut StdRng) -> Vec<f64> {
        let (lo, hi) = g.degree_sum_range();
        g.edges()
            .iter()
            .map(|e| {
                let dsum = g.degree(e.u) + g.degree(e.v);
                let w = self.weight_for(dsum, lo, hi);
                // Same degenerate-weight passthrough as [`Uniform`].
                if e.weight.is_finite() && e.weight > 0.0 {
                    e.weight + w * rng.gen_range(0.0..e.weight)
                } else {
                    e.weight
                }
            })
            .collect()
    }

    fn label(&self) -> String {
        format!("degree({},{})", self.a, self.b)
    }
}

/// Theorem A.1's perturbation: each weight drawn uniformly from
/// `(L, 2·D·k·L)` where `D` is the allowed stretch and `k` the slice
/// count. Used by the scaling experiments, not the headline figures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TheoremA1 {
    /// Maximum allowable stretch `D ≥ 1`.
    pub d: f64,
    /// Number of slices `k ≥ 1`.
    pub k: usize,
}

impl TheoremA1 {
    /// Theorem A.1's perturbation for stretch bound `d ≥ 1` and `k ≥ 1`
    /// slices (validated here, like its siblings' constructors, rather
    /// than mid-`perturb`).
    pub fn new(d: f64, k: usize) -> Self {
        assert!(d >= 1.0 && d.is_finite(), "stretch bound D must be >= 1");
        assert!(k >= 1, "need at least one slice");
        TheoremA1 { d, k }
    }
}

impl Perturbation for TheoremA1 {
    fn perturb(&self, g: &Graph, rng: &mut StdRng) -> Vec<f64> {
        let hi = 2.0 * self.d * self.k as f64;
        g.edges()
            .iter()
            .map(|e| {
                // Same degenerate-weight passthrough as [`Uniform`]; the
                // range is non-empty whenever the weight is valid, since
                // `new` guarantees `hi = 2Dk ≥ 2`.
                if e.weight.is_finite() && e.weight > 0.0 && hi > 1.0 {
                    rng.gen_range(e.weight..(hi * e.weight))
                } else {
                    e.weight
                }
            })
            .collect()
    }

    fn label(&self) -> String {
        format!("thmA1(D={},k={})", self.d, self.k)
    }
}

/// Boxed perturbation so configs can hold any strategy.
pub type BoxedPerturbation = Box<dyn Perturbation + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use splice_graph::graph::from_edges;

    fn star_plus_path() -> Graph {
        // hub 0 with 3 leaves, plus a path 1-2: mixed degrees.
        from_edges(4, &[(0, 1, 2.0), (0, 2, 2.0), (0, 3, 2.0), (1, 2, 2.0)])
    }

    #[test]
    fn uniform_bounds() {
        let g = star_plus_path();
        let mut rng = StdRng::seed_from_u64(7);
        let p = Uniform::new(3.0);
        for _ in 0..50 {
            let w = p.perturb(&g, &mut rng);
            for (i, e) in g.edges().iter().enumerate() {
                assert!(w[i] >= e.weight, "never below original");
                assert!(w[i] < e.weight * (1.0 + 3.0), "bounded by (1+strength)L");
            }
        }
    }

    #[test]
    fn zero_strength_is_identity() {
        let g = star_plus_path();
        let mut rng = StdRng::seed_from_u64(7);
        let w = Uniform::new(0.0).perturb(&g, &mut rng);
        assert_eq!(w, g.base_weights());
    }

    #[test]
    fn degree_based_bounds_and_ordering() {
        let g = star_plus_path();
        // degree sums: (0,1)=3+2=5? degrees: 0:3, 1:2, 2:2, 3:1.
        // edges: 0-1 sum 5, 0-2 sum 5, 0-3 sum 4, 1-2 sum 4.
        let (lo, hi) = g.degree_sum_range();
        assert_eq!((lo, hi), (4, 5));
        let p = DegreeBased::new(0.0, 3.0);
        let mut rng = StdRng::seed_from_u64(1);
        // Statistically, hub-hub links get perturbed more.
        let (mut hub_excess, mut tail_excess) = (0.0, 0.0);
        for _ in 0..500 {
            let w = p.perturb(&g, &mut rng);
            hub_excess += w[0] - 2.0; // edge 0-1, degree sum 5 (max -> Weight=3)
            tail_excess += w[2] - 2.0; // edge 0-3, degree sum 4 (min -> Weight=0)
        }
        assert_eq!(
            tail_excess, 0.0,
            "Weight(0,·) at min degree sum is exactly 0"
        );
        assert!(hub_excess > 100.0, "hub links perturbed substantially");
    }

    #[test]
    fn degree_based_regular_graph_uses_midpoint() {
        let ring = from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        let p = DegreeBased::new(1.0, 3.0);
        let mut rng = StdRng::seed_from_u64(2);
        let w = p.perturb(&ring, &mut rng);
        // All multipliers are 2.0; L' in [L, 3L).
        for (i, e) in ring.edges().iter().enumerate() {
            assert!(w[i] >= e.weight && w[i] < 3.0 * e.weight);
        }
    }

    #[test]
    fn theorem_a1_range() {
        let g = star_plus_path();
        let p = TheoremA1::new(2.0, 3);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let w = p.perturb(&g, &mut rng);
            for (i, e) in g.edges().iter().enumerate() {
                assert!(w[i] > e.weight);
                assert!(w[i] < 12.0 * e.weight);
            }
        }
    }

    #[test]
    fn seeded_reproducibility() {
        let g = star_plus_path();
        let p = DegreeBased::new(0.0, 3.0);
        let w1 = p.perturb(&g, &mut StdRng::seed_from_u64(99));
        let w2 = p.perturb(&g, &mut StdRng::seed_from_u64(99));
        assert_eq!(w1, w2);
    }

    #[test]
    fn labels() {
        assert_eq!(Uniform::new(1.5).label(), "uniform(1.5)");
        assert_eq!(DegreeBased::new(0.0, 3.0).label(), "degree(0,3)");
        assert_eq!(TheoremA1::new(2.0, 4).label(), "thmA1(D=2,k=4)");
    }

    #[test]
    #[should_panic]
    fn negative_strength_rejected() {
        Uniform::new(-1.0);
    }

    #[test]
    #[should_panic]
    fn inverted_degree_range_rejected() {
        DegreeBased::new(3.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "stretch bound")]
    fn theorem_a1_substretch_rejected() {
        TheoremA1::new(0.5, 3);
    }

    #[test]
    fn zero_weight_edges_rejected_before_perturbation() {
        // The original bug: a zero-weight edge made `Random(0, L)` an
        // empty range and `perturb` panicked deep inside the RNG. Graphs
        // now refuse the weight at construction, so no perturbation can
        // ever see it.
        let caught = std::panic::catch_unwind(|| from_edges(2, &[(0, 1, 0.0)]));
        assert!(caught.is_err(), "zero-weight edge must fail construction");
    }

    #[test]
    fn perturbations_total_over_tiny_valid_weights() {
        // Near-degenerate but valid weights must not panic in any strategy.
        let g = from_edges(3, &[(0, 1, 1e-300), (1, 2, 1.0), (2, 0, 1e-12)]);
        let mut rng = StdRng::seed_from_u64(4);
        for w in [
            Uniform::new(3.0).perturb(&g, &mut rng),
            DegreeBased::new(0.0, 3.0).perturb(&g, &mut rng),
            TheoremA1::new(2.0, 3).perturb(&g, &mut rng),
        ] {
            assert!(w.iter().all(|x| x.is_finite() && *x > 0.0));
        }
    }
}
