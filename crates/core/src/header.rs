//! The splicing header: forwarding bits (§3.2, Algorithm 1).
//!
//! A shim between the network and transport headers carries an opaque
//! bitstream. Each hop reads the rightmost `lg(k)` bits to pick one of
//! `k` forwarding tables, then shifts the stream right so the next hop
//! does the same. End systems change paths *without knowing any paths* —
//! they just write different bits.
//!
//! Two encodings are provided:
//!
//! * [`ForwardingBits`] — the per-hop `lg(k)`-bit scheme of Algorithm 1
//!   (the paper's experiments use 20 hops of bits).
//! * [`CounterHeader`] — the compressed single-number scheme sketched in
//!   §5: any hop seeing a non-zero counter deflects (deterministically,
//!   based on the number) and decrements it.
//!
//! When `ForwardingBits` runs out of bits, §4.4 specifies that traffic
//! "will remain in its current tree en route to the destination"; the
//! forwarder honours that (with the literal Algorithm-1 hash fallback
//! available as an option).

use rand::rngs::StdRng;
use rand::Rng;

/// Bits needed to select one of `k` slices: `ceil(log2 k)`, and 0 when a
/// single slice leaves nothing to select.
pub fn bits_per_hop(k: usize) -> u8 {
    assert!(k >= 1, "k must be at least 1");
    if k == 1 {
        0
    } else {
        (usize::BITS - (k - 1).leading_zeros()) as u8
    }
}

/// The per-hop forwarding-bits header of Algorithm 1.
///
/// The bitstream is right-aligned: the low `bits_per_hop` bits select the
/// slice at the *next* hop. A 128-bit store comfortably holds the paper's
/// 20 hops × `lg(k)` bits for any practical `k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ForwardingBits {
    bits: u128,
    len_bits: u8,
    bph: u8,
}

impl ForwardingBits {
    /// An empty header (no bits left): traffic stays in its current slice.
    pub fn empty(k: usize) -> Self {
        ForwardingBits {
            bits: 0,
            len_bits: 0,
            bph: bits_per_hop(k),
        }
    }

    /// Encode an explicit per-hop slice sequence (`hops[0]` read first).
    ///
    /// # Panics
    /// Panics if a hop value is ≥ `k` or if the encoded stream would
    /// exceed 128 bits.
    pub fn from_hops(hops: &[u8], k: usize) -> Self {
        let bph = bits_per_hop(k);
        assert!(
            hops.len() * bph as usize <= 128,
            "header overflow: {} hops x {} bits",
            hops.len(),
            bph
        );
        let mut bits: u128 = 0;
        // Pack so the first hop occupies the lowest bits.
        for &h in hops.iter().rev() {
            assert!((h as usize) < k, "hop value {h} out of range for k={k}");
            bits = (bits << bph) | h as u128;
        }
        ForwardingBits {
            bits,
            len_bits: (hops.len() * bph as usize) as u8,
            bph,
        }
    }

    /// A header keeping traffic pinned to `slice` for its whole journey:
    /// one explicit hop, then §4.4's stay-in-current-tree behaviour.
    pub fn stay_in_slice(slice: usize, k: usize) -> Self {
        Self::from_hops(&[slice as u8], k)
    }

    /// A fully random header: `hops` hop selectors uniform over `0..k`.
    pub fn random(rng: &mut StdRng, hops: usize, k: usize) -> Self {
        let v: Vec<u8> = (0..hops).map(|_| rng.gen_range(0..k) as u8).collect();
        Self::from_hops(&v, k)
    }

    /// Algorithm 1's per-hop step: read the rightmost `lg(k)` bits and
    /// shift them out. `None` once the stream is exhausted (or for k = 1,
    /// which has no bits to read).
    ///
    /// Raw values ≥ `k` (possible when k is not a power of two) are
    /// reduced modulo `k`, keeping every bit pattern meaningful.
    pub fn read_and_shift(&mut self, k: usize) -> Option<usize> {
        if self.bph == 0 || self.len_bits == 0 {
            return None;
        }
        let mask = (1u128 << self.bph) - 1;
        let mut raw = (self.bits & mask) as usize;
        self.bits >>= self.bph;
        self.len_bits -= self.bph;
        // Reduce modulo k without a hardware divide on the hot path: a
        // header built for this k has `raw < 2^lg(k) < 2k`, so one
        // subtract suffices; the real `%` only runs for wire headers
        // whose `bph` is oversized for k.
        if raw >= k {
            raw -= k;
            if raw >= k {
                raw %= k;
            }
        }
        Some(raw)
    }

    /// Hops still encoded in the stream.
    pub fn remaining_hops(&self) -> usize {
        self.len_bits.checked_div(self.bph).unwrap_or(0) as usize
    }

    /// Whether any bits remain.
    pub fn is_exhausted(&self) -> bool {
        self.len_bits == 0 || self.bph == 0
    }

    /// Serialize: `[bph, len_bits, 16 bytes of little-endian bits]`.
    /// This is the wire layout `splice-dataplane` places between the
    /// network and transport headers.
    pub fn to_bytes(&self) -> [u8; 18] {
        let mut out = [0u8; 18];
        out[0] = self.bph;
        out[1] = self.len_bits;
        out[2..].copy_from_slice(&self.bits.to_le_bytes());
        out
    }

    /// Deserialize the wire layout; `None` when the fields are
    /// inconsistent (truncated or corrupted shim).
    ///
    /// Decoding is strict about canonical form: any set bit above
    /// `len_bits` is payload the reader would never consume, so such
    /// shims are rejected rather than silently carrying dead state (which
    /// would also break the decode → encode identity).
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() != 18 {
            return None;
        }
        let (bph, len_bits) = (b[0], b[1]);
        if bph > 8 || (bph > 0 && len_bits % bph != 0) || len_bits as usize > 128 {
            return None;
        }
        if bph == 0 && len_bits != 0 {
            return None; // claims hops but no bits per hop to read them
        }
        let mut raw = [0u8; 16];
        raw.copy_from_slice(&b[2..]);
        let bits = u128::from_le_bytes(raw);
        if len_bits < 128 && (bits >> len_bits) != 0 {
            return None; // non-canonical: set bits beyond the stream
        }
        Some(ForwardingBits {
            bits,
            len_bits,
            bph,
        })
    }
}

/// §5's compressed encoding: the forwarding bits reduced to one number.
/// A hop seeing a non-zero counter deflects to an alternate slice chosen
/// deterministically from the number, then decrements it; zero means
/// "stay".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterHeader {
    /// Remaining deflections.
    pub counter: u32,
}

impl CounterHeader {
    /// A header causing `n` deflections.
    pub fn new(n: u32) -> Self {
        CounterHeader { counter: n }
    }

    /// Per-hop step: returns the slice to use given the current slice,
    /// and decrements on deflection. Deterministic in (counter, current),
    /// so the same header always traces the same path.
    pub fn step(&mut self, current_slice: usize, k: usize) -> usize {
        if self.counter == 0 || k <= 1 {
            return current_slice;
        }
        // Pick one of the other k-1 slices from the counter value.
        let offset = 1 + (self.counter as usize - 1) % (k - 1);
        let next = (current_slice + offset) % k;
        self.counter -= 1;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bits_per_hop_values() {
        assert_eq!(bits_per_hop(1), 0);
        assert_eq!(bits_per_hop(2), 1);
        assert_eq!(bits_per_hop(3), 2);
        assert_eq!(bits_per_hop(4), 2);
        assert_eq!(bits_per_hop(5), 3);
        assert_eq!(bits_per_hop(10), 4);
        assert_eq!(bits_per_hop(16), 4);
    }

    #[test]
    fn encode_decode_order() {
        let mut h = ForwardingBits::from_hops(&[2, 0, 3, 1], 4);
        assert_eq!(h.remaining_hops(), 4);
        assert_eq!(h.read_and_shift(4), Some(2));
        assert_eq!(h.read_and_shift(4), Some(0));
        assert_eq!(h.read_and_shift(4), Some(3));
        assert_eq!(h.read_and_shift(4), Some(1));
        assert_eq!(h.read_and_shift(4), None);
        assert!(h.is_exhausted());
    }

    #[test]
    fn twenty_hops_fit() {
        // The paper's setting: 20 hops, k up to 10 (4 bits) = 80 bits.
        let hops = vec![9u8; 20];
        let mut h = ForwardingBits::from_hops(&hops, 10);
        for _ in 0..20 {
            assert_eq!(h.read_and_shift(10), Some(9));
        }
        assert!(h.is_exhausted());
    }

    #[test]
    fn k_one_has_no_bits() {
        let mut h = ForwardingBits::stay_in_slice(0, 1);
        assert!(h.is_exhausted());
        assert_eq!(h.read_and_shift(1), None);
    }

    #[test]
    fn non_power_of_two_values_reduced() {
        // k = 3 uses 2 bits; a raw 3 decodes as 3 % 3 = 0.
        let mut h = ForwardingBits {
            bits: 0b11,
            len_bits: 2,
            bph: 2,
        };
        assert_eq!(h.read_and_shift(3), Some(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hop_value_bounds_checked() {
        ForwardingBits::from_hops(&[4], 4);
    }

    #[test]
    #[should_panic(expected = "header overflow")]
    fn overflow_rejected() {
        ForwardingBits::from_hops(&[1u8; 65], 4); // 65*2 = 130 bits
    }

    #[test]
    fn random_headers_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let mut h = ForwardingBits::random(&mut rng, 20, 5);
            while let Some(s) = h.read_and_shift(5) {
                assert!(s < 5);
            }
        }
    }

    #[test]
    fn wire_roundtrip() {
        let h = ForwardingBits::from_hops(&[1, 2, 3, 0, 1], 4);
        let bytes = h.to_bytes();
        let h2 = ForwardingBits::from_bytes(&bytes).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn wire_rejects_garbage() {
        assert!(ForwardingBits::from_bytes(&[0u8; 4]).is_none()); // short
        let mut bad = [0u8; 18];
        bad[0] = 9; // bph > 8
        assert!(ForwardingBits::from_bytes(&bad).is_none());
        let mut bad2 = [0u8; 18];
        bad2[0] = 3;
        bad2[1] = 4; // not a multiple of bph
        assert!(ForwardingBits::from_bytes(&bad2).is_none());
    }

    #[test]
    fn wire_rejects_noncanonical_shims() {
        // Valid header, then a stray bit above len_bits: 2 hops x 2 bits
        // = 4 live bits, bit 5 set.
        let mut bytes = ForwardingBits::from_hops(&[1, 2], 4).to_bytes();
        bytes[2] |= 1 << 5;
        assert!(ForwardingBits::from_bytes(&bytes).is_none());
        // bph = 0 cannot carry hops.
        let mut bad = [0u8; 18];
        bad[1] = 4; // len_bits > 0 with bph == 0
        assert!(ForwardingBits::from_bytes(&bad).is_none());
        // A full 128-bit stream is still canonical by definition.
        let full = ForwardingBits::from_hops(&[3u8; 64], 4);
        assert_eq!(ForwardingBits::from_bytes(&full.to_bytes()), Some(full));
    }

    #[test]
    fn wire_decode_encode_identity() {
        // Any accepted shim re-encodes to the same 18 bytes.
        for h in [
            ForwardingBits::empty(4),
            ForwardingBits::stay_in_slice(3, 8),
            ForwardingBits::from_hops(&[0, 1, 2, 3, 4], 5),
        ] {
            let bytes = h.to_bytes();
            let decoded = ForwardingBits::from_bytes(&bytes).unwrap();
            assert_eq!(decoded, h);
            assert_eq!(decoded.to_bytes(), bytes);
        }
    }

    #[test]
    fn stay_in_slice_pins() {
        let mut h = ForwardingBits::stay_in_slice(2, 4);
        assert_eq!(h.read_and_shift(4), Some(2));
        assert!(h.is_exhausted()); // forwarder then stays in slice 2
    }

    #[test]
    fn counter_header_deflects_and_drains() {
        let mut c = CounterHeader::new(2);
        let s1 = c.step(0, 4);
        assert_ne!(s1, 0, "non-zero counter must deflect");
        assert_eq!(c.counter, 1);
        let s2 = c.step(s1, 4);
        assert_ne!(s2, s1);
        assert_eq!(c.counter, 0);
        // Drained: stays put forever.
        assert_eq!(c.step(s2, 4), s2);
        assert_eq!(c.step(s2, 4), s2);
    }

    #[test]
    fn counter_header_single_slice_noop() {
        let mut c = CounterHeader::new(5);
        assert_eq!(c.step(0, 1), 0);
        assert_eq!(c.counter, 5, "k=1 cannot consume deflections");
    }

    #[test]
    fn counter_header_deterministic() {
        let trace = |mut c: CounterHeader| {
            let mut s = 0;
            let mut path = Vec::new();
            for _ in 0..6 {
                s = c.step(s, 5);
                path.push(s);
            }
            path
        };
        assert_eq!(trace(CounterHeader::new(3)), trace(CounterHeader::new(3)));
    }
}
