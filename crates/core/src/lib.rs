//! # splice-core
//!
//! The path-splicing primitive (Motiwala, Feamster, Vempala): build `k`
//! routing slices from randomly perturbed link weights, expose them to
//! packets through a few opaque *forwarding bits*, and recover from
//! failures by changing those bits.
//!
//! ## The pieces, mapped to the paper
//!
//! | Paper | Module |
//! |---|---|
//! | §3.1.1 link-weight perturbations (`L' = L + Weight(a,b,i,j)·Random(0,L)`) | [`perturb`] |
//! | §3.1.2 multiple routing instances → k forwarding tables | [`slices`] |
//! | §3.1 generalized: alternative slice constructions (trees, arc-disjoint) | [`strategy`] |
//! | §3.2 forwarding bits + Algorithm 1 | [`header`], [`forwarding`] |
//! | §3.2/§4.3 recovery by changing bits | [`recovery`] |
//! | §2 stretch metrics | [`stretch`] |
//! | Algorithm 1's `Hash(src, dst)` default slice | [`hash`] |
//! | §5 compressed single-counter encoding | [`header::CounterHeader`] |
//! | §3.1.2 operationally: the control plane as a live event-driven owner | [`control`] |
//!
//! ## Quick example
//!
//! ```
//! use splice_core::prelude::*;
//! use splice_graph::{EdgeMask, NodeId};
//! use splice_topology::abilene::abilene;
//!
//! let topo = abilene();
//! let g = topo.graph();
//! // Five slices: the base tree plus four degree-perturbed ones.
//! let cfg = SplicingConfig::degree_based(5, 0.0, 3.0);
//! let splicing = Splicing::build(&g, &cfg, 42);
//!
//! // All links up: slice 0 forwards along plain shortest paths.
//! let mask = EdgeMask::all_up(g.edge_count());
//! let fwd = Forwarder::new(&splicing, &g, &mask);
//! let out = fwd.forward(
//!     NodeId(0),
//!     NodeId(10),
//!     ForwardingBits::stay_in_slice(0, splicing.k()),
//!     &ForwarderOptions::default(),
//! );
//! assert!(out.is_delivered());
//! ```

pub mod control;
pub mod coverage;
pub mod forwarding;
pub mod hash;
pub mod header;
pub mod mrc;
pub mod perturb;
pub mod recovery;
pub mod slices;
pub mod strategy;
pub mod stretch;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::control::{
        control_channel, fib_checksum, run_event_loop, ControlEvent, ControlHandle, ControlMsg,
        ControlPlane, ControlStats, EventLoopReport,
    };
    pub use crate::forwarding::{Forwarder, ForwarderOptions, ForwardingOutcome, Trace};
    pub use crate::header::ForwardingBits;
    pub use crate::perturb::{DegreeBased, Perturbation, Uniform};
    pub use crate::recovery::{EndSystemRecovery, NetworkRecovery, RecoveryOutcome};
    pub use crate::slices::{RepairEvent, Slice, Splicing, SplicingConfig};
    pub use crate::strategy::{SliceStrategy, StrategyKind};
    pub use crate::stretch::StretchStats;
}

pub use prelude::*;
