//! Stretch accounting (§2 "Small Stretch", §4.3's numbers).
//!
//! Stretch of a pair `(s, t)` is the ratio of the delivered path's latency
//! to the latency of the shortest path in the base topology; hop stretch
//! is the same ratio in hop counts. The paper reports end-system recovery
//! at ≈1.3× latency / +50% hops, network recovery at ≈1.33× / +55%, and
//! per-slice 99th-percentile stretch < 2.6.

use crate::forwarding::Trace;
use crate::slices::Splicing;
use splice_graph::{dijkstra, Graph, NodeId};

/// Latency stretch of a delivered trace against the base shortest path.
///
/// `base_latency[s][t]`-style data is expensive to precompute for every
/// caller, so this takes the shortest-path latency directly.
pub fn latency_stretch(trace: &Trace, latencies: &[f64], shortest_latency: f64) -> f64 {
    assert!(
        shortest_latency > 0.0,
        "distinct nodes have positive latency"
    );
    trace.length(latencies) / shortest_latency
}

/// Hop stretch of a delivered trace against the base shortest path's hops.
pub fn hop_stretch(trace: &Trace, shortest_hops: usize) -> f64 {
    assert!(shortest_hops > 0);
    trace.hop_count() as f64 / shortest_hops as f64
}

/// Summary statistics over a set of stretch samples.
#[derive(Clone, Debug, PartialEq)]
pub struct StretchStats {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile — the paper's per-slice headline (< 2.6).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl StretchStats {
    /// Compute stats from raw samples. Returns `None` for an empty set.
    pub fn from_samples(mut samples: Vec<f64>) -> Option<StretchStats> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN stretch"));
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let pct = |p: f64| -> f64 {
            let idx = ((p * count as f64).ceil() as usize).clamp(1, count) - 1;
            samples[idx]
        };
        Some(StretchStats {
            count,
            mean,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: samples[count - 1],
        })
    }
}

/// Per-slice path stretch over all ordered pairs: for each slice and each
/// pair `(s, t)`, the latency of the slice path divided by the latency of
/// the base shortest path. Returns one vector of samples per slice.
///
/// The slice path is read from the installed FIB column, not recomputed
/// from slice weights — strategies whose slices are not shortest-path
/// trees (spanning-tree and low-stretch splicers report base weights as
/// their slice weights) would otherwise all read as stretch 1.0. For
/// perturbed-SPF the FIB is built from the same Dijkstra run, so the
/// samples are identical either way. Unrouted pairs contribute no sample.
///
/// This is the §4.3 "in any particular slice, 99% of all paths in each
/// tree have stretch of less than 2.6" experiment.
pub fn per_slice_stretch(splicing: &Splicing, g: &Graph, latencies: &[f64]) -> Vec<Vec<f64>> {
    let n = g.node_count();
    let mut per_slice = vec![Vec::with_capacity(n * (n - 1)); splicing.k()];
    for t in g.nodes() {
        // Base shortest path *by IGP weight*, measured in latency.
        let base = dijkstra(g, t, &g.base_weights());
        let base_latency: Vec<f64> = g
            .nodes()
            .map(|s| base.path_from(s).map_or(f64::NAN, |p| p.length(latencies)))
            .collect();
        for si in 0..splicing.k() {
            for s in g.nodes() {
                if s == t {
                    continue;
                }
                let bl = base_latency[s.index()];
                if bl.is_nan() || bl <= 0.0 {
                    continue;
                }
                // Walk the slice's FIB column hop by hop; slices are
                // loop-free, so the n-hop cap only guards corrupt state.
                let mut len = 0.0;
                let mut u = s;
                let mut hops = 0usize;
                let delivered = loop {
                    if u == t {
                        break true;
                    }
                    let Some((v, e)) = splicing.next_hop(si, u, t) else {
                        break false;
                    };
                    len += latencies[e.index()];
                    u = v;
                    hops += 1;
                    if hops > n {
                        break false;
                    }
                };
                if delivered {
                    per_slice[si].push(len / bl);
                }
            }
        }
    }
    per_slice
}

/// Shortest-path latency and hop count between `s` and `t` under base
/// weights — the denominators of both stretch metrics.
pub fn base_path_metrics(
    g: &Graph,
    latencies: &[f64],
    s: NodeId,
    t: NodeId,
) -> Option<(f64, usize)> {
    let spt = dijkstra(g, t, &g.base_weights());
    spt.path_from(s)
        .map(|p| (p.length(latencies), p.hop_count()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forwarding::TraceStep;
    use crate::slices::SplicingConfig;
    use splice_graph::EdgeId;
    use splice_topology::abilene::abilene;

    #[test]
    fn stats_percentiles() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let st = StretchStats::from_samples(samples).unwrap();
        assert_eq!(st.count, 100);
        assert_eq!(st.p50, 50.0);
        assert_eq!(st.p95, 95.0);
        assert_eq!(st.p99, 99.0);
        assert_eq!(st.max, 100.0);
        assert!((st.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_samples_yield_none() {
        assert!(StretchStats::from_samples(vec![]).is_none());
    }

    #[test]
    fn single_sample() {
        let st = StretchStats::from_samples(vec![1.3]).unwrap();
        assert_eq!(st.p50, 1.3);
        assert_eq!(st.p99, 1.3);
        assert_eq!(st.max, 1.3);
    }

    #[test]
    fn trace_stretch_computation() {
        let trace = Trace {
            src: NodeId(0),
            dst: NodeId(2),
            steps: vec![
                TraceStep {
                    node: NodeId(0),
                    slice: 0,
                    edge: EdgeId(0),
                },
                TraceStep {
                    node: NodeId(1),
                    slice: 0,
                    edge: EdgeId(1),
                },
            ],
            last: NodeId(2),
        };
        let latencies = vec![2.0, 3.0];
        assert_eq!(latency_stretch(&trace, &latencies, 5.0), 1.0);
        assert_eq!(latency_stretch(&trace, &latencies, 2.5), 2.0);
        assert_eq!(hop_stretch(&trace, 1), 2.0);
    }

    #[test]
    fn base_slice_has_unit_latency_stretch() {
        // Slice 0 = base weights; since our latencies equal weights in the
        // generated topology, slice-0 stretch is exactly 1 for every pair.
        let topo = abilene();
        let g = topo.graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(3, 0.0, 3.0), 4);
        let lat = topo.latencies();
        let per_slice = per_slice_stretch(&sp, &g, &lat);
        assert_eq!(per_slice.len(), 3);
        let s0 = StretchStats::from_samples(per_slice[0].clone()).unwrap();
        // Base weights are distance/100 and latency distance-derived, so
        // the weight-shortest path is also latency-shortest: stretch ~1.
        // (Equal only up to weight/latency proportionality; both are
        // monotone in distance here.)
        assert!(s0.max < 1.01, "slice-0 max stretch {}", s0.max);
        assert_eq!(s0.count, 11 * 10);
    }

    #[test]
    fn perturbed_slices_have_bounded_stretch() {
        let topo = abilene();
        let g = topo.graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(5, 0.0, 3.0), 4);
        let lat = topo.latencies();
        let per_slice = per_slice_stretch(&sp, &g, &lat);
        for (i, samples) in per_slice.iter().enumerate() {
            let st = StretchStats::from_samples(samples.clone()).unwrap();
            assert!(st.mean >= 0.99, "slice {i} mean {}", st.mean);
            // Weight(0,3) perturbation keeps weights within 4x, so no path
            // can stretch beyond 4x in weight terms; latency tracks weight.
            assert!(st.max <= 4.0 + 1e-9, "slice {i} max {}", st.max);
        }
    }

    #[test]
    fn base_path_metrics_work() {
        let topo = abilene();
        let g = topo.graph();
        let lat = topo.latencies();
        let (l, h) = base_path_metrics(&g, &lat, NodeId(0), NodeId(10)).unwrap();
        assert!(l > 0.0);
        assert!(h >= 1);
        assert!(base_path_metrics(&g, &lat, NodeId(3), NodeId(3)).is_some());
    }
}
