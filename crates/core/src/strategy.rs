//! Slice-construction strategies: how a slice's forwarding columns are
//! produced (§3.1, generalized).
//!
//! The paper builds every slice the same way — perturb link weights, run
//! shortest-path-first. [`SliceStrategy`] extracts that choice behind a
//! trait so a deployment can instead splice *random spanning trees*
//! ("Expanders via Random Spanning Trees" shows a few uniform trees of a
//! well-connected graph already union into an expander, i.e. carry the
//! path diversity splicing needs at O(n) control state per tree) or
//! *arc-disjoint failover DAGs* (the static-failover line of work:
//! later slices avoid the out-arcs earlier slices committed to, so a
//! slice switch after a failure lands on a genuinely different arc).
//!
//! The contract every strategy honors:
//!
//! * **Determinism.** A slice's columns are a pure function of
//!   `(graph, weights, mask, seed, slice index)`. Rebuilding a plane with
//!   the same inputs reproduces it bit-for-bit — the property
//!   [`Splicing::repair`](crate::slices::Splicing::repair) leans on when
//!   a strategy cannot delta-patch and must rebuild instead.
//! * **k-independence.** Slice `i` never reads `k`, so a
//!   [`prefix`](crate::slices::Splicing::prefix) view equals a smaller
//!   build — the incremental-k methodology survives the trait.
//! * **Loop-freedom.** Within one slice, following next hops toward a
//!   destination never cycles (trees and SPF DAGs are loop-free by
//!   construction; the arc-disjoint rounds are each a shortest-path tree
//!   of a restricted subgraph).

use crate::perturb::Perturbation;
use crate::slices::SplicingConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_graph::dijkstra::SpfWorkspace;
use splice_graph::{
    arc_diverse_parents, low_stretch_forest, random_spanning_forest, EdgeMask, Graph,
};
use splice_routing::arena::{PlaneMut, SpliceFib};
use splice_routing::spf::{spf_fill_plane, spf_refill_plane, FlightEvent, SpfTelemetry};
use std::cell::RefCell;
use std::time::Instant;

/// The seed of slice `slice`'s private RNG stream: the build seed xored
/// with a golden-ratio multiple of the slice index. This is byte-for-byte
/// the stream the pre-trait builder fed each perturbation, so
/// perturbed-SPF slices stay bit-identical across the refactor, and tree
/// strategies inherit the same slice-independence property (slice i's
/// randomness does not depend on k).
#[inline]
pub fn slice_seed(seed: u64, slice: usize) -> u64 {
    seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(slice as u64 + 1))
}

thread_local! {
    static SPF_WORKSPACE: RefCell<SpfWorkspace> = RefCell::new(SpfWorkspace::new());
}

/// Run `f` with this thread's shared [`SpfWorkspace`], so builds, repairs
/// and test oracles on the same thread reuse one set of Dijkstra scratch
/// buffers instead of reallocating per call.
///
/// Not reentrant: `f` must not call `with_spf_workspace` again (the
/// nested borrow would panic). Strategy hooks receive the workspace as an
/// argument precisely so they never need to.
pub fn with_spf_workspace<T>(f: impl FnOnce(&mut SpfWorkspace) -> T) -> T {
    SPF_WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

/// Which slice-construction strategy a config uses — a closed enum (like
/// [`PerturbationKind`](crate::slices::PerturbationKind)) so configs stay
/// `Copy`-cheap, comparable, and trivially serializable in run manifests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// The paper's construction: per-slice perturbed weights, full SPF.
    PerturbedSpf,
    /// One uniform random spanning tree per slice (Wilson's algorithm).
    RandomSpanningTree,
    /// One low-stretch tree proxy per slice (SPT from a random center).
    LowStretchTree,
    /// Arc-disjoint failover: slice `i` is the `i`-th greedy Dijkstra
    /// round that forbids out-arcs used by rounds `0..i`.
    ArcDisjointFailover,
}

impl StrategyKind {
    /// Every strategy, in sweep order.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::PerturbedSpf,
        StrategyKind::RandomSpanningTree,
        StrategyKind::LowStretchTree,
        StrategyKind::ArcDisjointFailover,
    ];

    /// Canonical token: the CLI `--strategy` value, the testkit scenario
    /// segment, and the `strategy` telemetry label.
    pub fn name(self) -> &'static str {
        self.instance().name()
    }

    /// Parse a CLI / scenario token. Accepts the canonical names plus a
    /// few self-explanatory aliases; returns `None` for anything else so
    /// callers can produce their own error message.
    pub fn parse(token: &str) -> Option<StrategyKind> {
        match token {
            "perturbed-spf" | "spf" | "perturbed" => Some(StrategyKind::PerturbedSpf),
            "tree" | "rst" | "spanning-tree" => Some(StrategyKind::RandomSpanningTree),
            "lst" | "low-stretch" => Some(StrategyKind::LowStretchTree),
            "arc" | "arc-disjoint" => Some(StrategyKind::ArcDisjointFailover),
            _ => None,
        }
    }

    /// The strategy implementation behind this kind. Strategies are
    /// stateless, so one static instance serves every deployment.
    pub fn instance(self) -> &'static dyn SliceStrategy {
        match self {
            StrategyKind::PerturbedSpf => &PerturbedSpf,
            StrategyKind::RandomSpanningTree => &RandomSpanningTree,
            StrategyKind::LowStretchTree => &LowStretchTree,
            StrategyKind::ArcDisjointFailover => &ArcDisjointFailover,
        }
    }
}

/// How one slice of a splicing is constructed.
///
/// [`Splicing::build`](crate::slices::Splicing::build) drives the two
/// construction hooks per slice — [`slice_weights`] then [`fill_slice`] —
/// and [`Splicing::repair`](crate::slices::Splicing::repair) consults the
/// capability hooks to pick delta-patching or masked rebuild.
///
/// [`slice_weights`]: SliceStrategy::slice_weights
/// [`fill_slice`]: SliceStrategy::fill_slice
pub trait SliceStrategy: Send + Sync + std::fmt::Debug {
    /// Canonical strategy name (see [`StrategyKind::name`]).
    fn name(&self) -> &'static str;

    /// The weight vector recorded for slice `slice`. For SPF strategies
    /// this is the routing input; tree strategies route on structure, not
    /// weights, and return the base vector so stretch accounting and
    /// weight validation keep working.
    fn slice_weights(&self, g: &Graph, cfg: &SplicingConfig, slice: usize, seed: u64) -> Vec<f64>;

    /// (Re)compute every destination column of an already-borrowed slice
    /// plane over the `mask`-up subgraph. `slice` names the plane for
    /// seeding and telemetry labels only — the write target is `plane`,
    /// which the parallel batch-repair path hands out per worker thread.
    /// Must be deterministic in its arguments and must tolerate a dirty
    /// plane (repairs rebuild in place over a plane-level copy).
    #[allow(clippy::too_many_arguments)]
    fn fill_plane(
        &self,
        g: &Graph,
        slice: usize,
        seed: u64,
        weights: &[f64],
        mask: &EdgeMask,
        ws: &mut SpfWorkspace,
        plane: &mut PlaneMut<'_>,
        telemetry: Option<&SpfTelemetry>,
    );

    /// [`SliceStrategy::fill_plane`] through an owned arena — the
    /// sequential build/repair convenience form.
    #[allow(clippy::too_many_arguments)]
    fn fill_slice(
        &self,
        g: &Graph,
        slice: usize,
        seed: u64,
        weights: &[f64],
        mask: &EdgeMask,
        ws: &mut SpfWorkspace,
        fib: &mut SpliceFib,
        telemetry: Option<&SpfTelemetry>,
    ) {
        self.fill_plane(
            g,
            slice,
            seed,
            weights,
            mask,
            ws,
            &mut fib.plane_mut(slice),
            telemetry,
        );
    }

    /// Whether repairs may delta-patch this strategy's planes with the
    /// incremental-SPF engine. Strategies that answer `false` get a
    /// masked full rebuild of each plane instead — slower, but exactly
    /// equivalent by the determinism contract.
    fn supports_delta_repair(&self) -> bool {
        false
    }

    /// Logical per-slice control state in bytes on an `n`-node graph —
    /// what a compressed control plane would have to carry, as opposed to
    /// the arena's physical (always dense) footprint. A full next-hop
    /// matrix costs `2·n²·4` bytes; a shared tree costs one `(parent,
    /// edge)` pair per node.
    fn slice_state_bytes(&self, n: usize) -> usize;
}

/// Record one per-slice fill into the build-time histogram plus the
/// flight recorder, tagged with the strategy that did the filling.
fn record_fill(telemetry: Option<&SpfTelemetry>, name: &'static str, slice: usize, t0: Instant) {
    if let Some(tel) = telemetry {
        tel.spf_seconds.record_duration(t0.elapsed());
        if let Some(flight) = &tel.flight {
            flight.record(FlightEvent::new("fill", name).field("slice", slice as u64));
        }
    }
}

/// The paper's construction (§3.1): slice 0 keeps the base weights (when
/// configured), slices 1..k perturb them, and every slice runs full SPF.
/// The all-links-up path is literally the pre-trait
/// [`spf_fill_arena`] call with the unchanged RNG stream, so fig. 3
/// artifacts stay byte-identical across the refactor.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerturbedSpf;

impl SliceStrategy for PerturbedSpf {
    fn name(&self) -> &'static str {
        "perturbed-spf"
    }

    fn slice_weights(&self, g: &Graph, cfg: &SplicingConfig, slice: usize, seed: u64) -> Vec<f64> {
        if slice == 0 && cfg.include_base_slice {
            g.base_weights()
        } else {
            // Distinct, independent stream per slice.
            let mut rng = StdRng::seed_from_u64(slice_seed(seed, slice));
            cfg.perturbation.perturb(g, &mut rng)
        }
    }

    fn fill_plane(
        &self,
        g: &Graph,
        slice: usize,
        _seed: u64,
        weights: &[f64],
        mask: &EdgeMask,
        ws: &mut SpfWorkspace,
        plane: &mut PlaneMut<'_>,
        telemetry: Option<&SpfTelemetry>,
    ) {
        if mask.failed_count() == 0 {
            spf_fill_plane(g, weights, plane, slice, ws, telemetry);
        } else {
            spf_refill_plane(g, weights, plane, slice, mask, ws, telemetry);
        }
    }

    fn supports_delta_repair(&self) -> bool {
        true
    }

    fn slice_state_bytes(&self, n: usize) -> usize {
        2 * n * n * 4
    }
}

/// Orient `forest` toward every destination and install the parent arrays
/// into `plane` — the shared tree *is* the slice, every destination
/// column is just a re-rooting of it.
fn fill_from_forest(g: &Graph, forest: &splice_graph::SpanningForest, plane: &mut PlaneMut<'_>) {
    for t in g.nodes() {
        plane.patch_column(t, &forest.parents_toward(t));
    }
}

/// One uniform random spanning tree per slice, sampled with Wilson's
/// loop-erased random walk from the slice's private RNG stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomSpanningTree;

impl SliceStrategy for RandomSpanningTree {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn slice_weights(
        &self,
        g: &Graph,
        _cfg: &SplicingConfig,
        _slice: usize,
        _seed: u64,
    ) -> Vec<f64> {
        g.base_weights()
    }

    fn fill_plane(
        &self,
        g: &Graph,
        slice: usize,
        seed: u64,
        _weights: &[f64],
        mask: &EdgeMask,
        _ws: &mut SpfWorkspace,
        plane: &mut PlaneMut<'_>,
        telemetry: Option<&SpfTelemetry>,
    ) {
        let t0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(slice_seed(seed, slice));
        let forest = random_spanning_forest(g, mask, &mut rng);
        fill_from_forest(g, &forest, plane);
        record_fill(telemetry, self.name(), slice, t0);
    }

    fn slice_state_bytes(&self, n: usize) -> usize {
        // One (parent node, out edge) pair per node.
        n * 8
    }
}

/// One low-stretch tree proxy per slice: the shortest-path tree from a
/// random center, under the slice's weights.
#[derive(Clone, Copy, Debug, Default)]
pub struct LowStretchTree;

impl SliceStrategy for LowStretchTree {
    fn name(&self) -> &'static str {
        "lst"
    }

    fn slice_weights(
        &self,
        g: &Graph,
        _cfg: &SplicingConfig,
        _slice: usize,
        _seed: u64,
    ) -> Vec<f64> {
        g.base_weights()
    }

    fn fill_plane(
        &self,
        g: &Graph,
        slice: usize,
        seed: u64,
        weights: &[f64],
        mask: &EdgeMask,
        _ws: &mut SpfWorkspace,
        plane: &mut PlaneMut<'_>,
        telemetry: Option<&SpfTelemetry>,
    ) {
        let t0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(slice_seed(seed, slice));
        let forest = low_stretch_forest(g, weights, mask, &mut rng);
        fill_from_forest(g, &forest, plane);
        record_fill(telemetry, self.name(), slice, t0);
    }

    fn slice_state_bytes(&self, n: usize) -> usize {
        n * 8
    }
}

/// Arc-disjoint failover: slice `i`'s column toward each destination is
/// the `i`-th greedy Dijkstra round where out-arcs spent by rounds
/// `0..i` carry a path-dominating penalty, so a slice switch after a
/// failure tries a different link at every router that has one to spare
/// — while every slice still delivers (a router with exhausted arcs
/// falls back to a spent one rather than going unrouted). Slice 0 is
/// exactly the shortest-path tree.
#[derive(Clone, Copy, Debug, Default)]
pub struct ArcDisjointFailover;

impl SliceStrategy for ArcDisjointFailover {
    fn name(&self) -> &'static str {
        "arc"
    }

    fn slice_weights(
        &self,
        g: &Graph,
        _cfg: &SplicingConfig,
        _slice: usize,
        _seed: u64,
    ) -> Vec<f64> {
        g.base_weights()
    }

    fn fill_plane(
        &self,
        g: &Graph,
        slice: usize,
        _seed: u64,
        weights: &[f64],
        mask: &EdgeMask,
        _ws: &mut SpfWorkspace,
        plane: &mut PlaneMut<'_>,
        telemetry: Option<&SpfTelemetry>,
    ) {
        let t0 = Instant::now();
        // Recomputing rounds 0..slice keeps the fill a pure function of
        // (slice, inputs) — the k-independence and rebuild-determinism
        // contracts — at an O(k) factor the small k of splicing absorbs.
        for t in g.nodes() {
            let rounds = arc_diverse_parents(g, t, weights, mask, slice + 1);
            plane.patch_column(t, &rounds[slice]);
        }
        record_fill(telemetry, self.name(), slice, t0);
    }

    fn slice_state_bytes(&self, n: usize) -> usize {
        2 * n * n * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slices::Splicing;
    use splice_graph::{EdgeId, NodeId};
    use splice_topology::abilene::abilene;

    fn cfg_for(kind: StrategyKind, k: usize) -> SplicingConfig {
        SplicingConfig::degree_based(k, 0.0, 3.0).with_strategy(kind)
    }

    /// Follow next hops from every router toward every destination: each
    /// routed walk must reach the destination without revisiting a node.
    fn assert_loop_free_and_delivering(g: &Graph, sp: &Splicing, require_delivery: bool) {
        for slice in 0..sp.k() {
            for t in g.nodes() {
                for s in g.nodes() {
                    let mut at = s;
                    let mut hops = 0;
                    while at != t {
                        match sp.next_hop(slice, at, t) {
                            Some((nh, _)) => at = nh,
                            None => {
                                assert!(
                                    !require_delivery,
                                    "slice {slice}: {s:?} unrouted toward {t:?}"
                                );
                                break;
                            }
                        }
                        hops += 1;
                        assert!(hops <= g.node_count(), "slice {slice}: loop {s:?}->{t:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn tokens_roundtrip_and_reject_garbage() {
        for kind in StrategyKind::ALL {
            assert_eq!(StrategyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(StrategyKind::parse("spf"), Some(StrategyKind::PerturbedSpf));
        assert_eq!(
            StrategyKind::parse("arc-disjoint"),
            Some(StrategyKind::ArcDisjointFailover)
        );
        assert_eq!(StrategyKind::parse("ospf"), None);
        assert_eq!(StrategyKind::parse(""), None);
    }

    #[test]
    fn every_strategy_builds_loop_free_delivering_slices() {
        let g = abilene().graph();
        for kind in StrategyKind::ALL {
            let sp = Splicing::build(&g, &cfg_for(kind, 3), 7);
            assert_eq!(sp.strategy(), kind);
            assert_loop_free_and_delivering(&g, &sp, true);
        }
    }

    #[test]
    fn perturbed_spf_stays_bit_identical_through_the_trait() {
        // The golden guard: the default config routes exactly as the
        // pre-trait builder did — slice 0 is the unperturbed SPF tree and
        // perturbed slices draw from the unchanged per-slice streams.
        let g = abilene().graph();
        let cfg = SplicingConfig::degree_based(3, 0.0, 3.0);
        assert_eq!(cfg.strategy, StrategyKind::PerturbedSpf);
        let sp = Splicing::build(&g, &cfg, 11);
        assert_eq!(sp.weights(0), g.base_weights());
        with_spf_workspace(|ws| {
            for t in g.nodes() {
                ws.run(&g, t, &g.base_weights(), None);
                for u in g.nodes() {
                    assert_eq!(sp.next_hop(0, u, t), ws.parents()[u.index()]);
                }
            }
        });
    }

    #[test]
    fn tree_slices_are_k_independent() {
        let g = abilene().graph();
        for kind in [
            StrategyKind::RandomSpanningTree,
            StrategyKind::LowStretchTree,
            StrategyKind::ArcDisjointFailover,
        ] {
            let s2 = Splicing::build(&g, &cfg_for(kind, 2), 42);
            let s4 = Splicing::build(&g, &cfg_for(kind, 4), 42);
            for slice in 0..2 {
                for u in g.nodes() {
                    for t in g.nodes() {
                        assert_eq!(
                            s2.next_hop(slice, u, t),
                            s4.next_hop(slice, u, t),
                            "{kind:?} slice {slice} depends on k"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rebuild_only_repairs_match_from_scratch_masked_build() {
        let g = abilene().graph();
        for kind in [
            StrategyKind::RandomSpanningTree,
            StrategyKind::LowStretchTree,
            StrategyKind::ArcDisjointFailover,
        ] {
            let sp = Splicing::build(&g, &cfg_for(kind, 3), 9);
            assert!(!kind.instance().supports_delta_repair());
            let (repaired, stats) =
                sp.repair_report(&g, &crate::slices::RepairEvent::LinkFailure(EdgeId(2)));
            assert_eq!(stats.patched_columns, 3 * g.node_count());
            // Stacking a second failure equals the one-shot rebuild with
            // the cumulative mask (determinism contract).
            let stacked = repaired.repair(&g, &crate::slices::RepairEvent::LinkFailure(EdgeId(5)));
            let batch = sp.repair(
                &g,
                &crate::slices::RepairEvent::LinkSetFailure(vec![EdgeId(2), EdgeId(5)]),
            );
            for slice in 0..3 {
                assert_eq!(
                    stacked.tables(slice),
                    batch.tables(slice),
                    "{kind:?} slice {slice}"
                );
            }
            // No plane routes over a failed link.
            for slice in 0..3 {
                for t in g.nodes() {
                    for u in g.nodes() {
                        if let Some((_, e)) = stacked.next_hop(slice, u, t) {
                            assert!(stacked.failed_mask().is_up(e));
                        }
                    }
                }
            }
            assert_loop_free_and_delivering(&g, &stacked, false);
        }
    }

    #[test]
    fn arc_disjoint_slices_use_distinct_out_arcs() {
        // Contract: every slice delivers every pair, and the greedy
        // penalization yields real out-arc diversity. Full divergence is
        // impossible on a sparse backbone (a degree-2 router whose spare
        // neighbor is uphill must reuse, as must the neighbors of a
        // destination whose incoming arcs slice 0 exhausted), so demand
        // a healthy floor: 40% of (router, destination) pairs diverge
        // between slices 0 and 1, and some spread across three arcs.
        let g = abilene().graph();
        let sp = Splicing::build(&g, &cfg_for(StrategyKind::ArcDisjointFailover, 3), 1);
        let mut pairs = 0usize;
        let mut diverge01 = 0usize;
        let mut triple_diverse = 0usize;
        for t in g.nodes() {
            for u in g.nodes() {
                if u == t {
                    continue;
                }
                let arcs: Vec<EdgeId> = (0..3)
                    .map(|slice| {
                        sp.next_hop(slice, u, t)
                            .unwrap_or_else(|| panic!("slice {slice}: {u:?} unrouted to {t:?}"))
                            .1
                    })
                    .collect();
                pairs += 1;
                if arcs[0] != arcs[1] {
                    diverge01 += 1;
                }
                let mut distinct = arcs.clone();
                distinct.sort_unstable();
                distinct.dedup();
                if distinct.len() == 3 {
                    triple_diverse += 1;
                }
            }
        }
        assert!(
            5 * diverge01 >= 2 * pairs,
            "slices 0/1 diverge on only {diverge01}/{pairs} pairs"
        );
        assert!(
            triple_diverse > 0,
            "no router ever used three distinct arcs"
        );
    }

    #[test]
    fn logical_state_is_linear_for_trees_quadratic_for_matrices() {
        let g = abilene().graph();
        let n = g.node_count();
        let spf = Splicing::build(&g, &cfg_for(StrategyKind::PerturbedSpf, 3), 5);
        let tree = Splicing::build(&g, &cfg_for(StrategyKind::RandomSpanningTree, 3), 5);
        assert_eq!(spf.logical_state_bytes(), 3 * 2 * n * n * 4);
        assert_eq!(spf.logical_state_bytes(), spf.state_bytes());
        assert_eq!(tree.logical_state_bytes(), 3 * n * 8);
        assert!(tree.logical_state_bytes() < tree.state_bytes());
        // Physical arena cost is strategy-independent (dense planes).
        assert_eq!(tree.state_bytes(), spf.state_bytes());
    }

    #[test]
    fn tree_strategies_vary_across_slices_and_seeds() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &cfg_for(StrategyKind::RandomSpanningTree, 4), 3);
        let other = Splicing::build(&g, &cfg_for(StrategyKind::RandomSpanningTree, 4), 4);
        let column = |sp: &Splicing, slice: usize| -> Vec<Option<NodeId>> {
            g.nodes()
                .map(|u| sp.next_hop(slice, u, NodeId(0)).map(|(nh, _)| nh))
                .collect()
        };
        let distinct_slices = (0..4)
            .map(|s| column(&sp, s))
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct_slices > 1, "4 tree slices should not coincide");
        assert_ne!(column(&sp, 0), column(&other, 0), "seed must matter");
        // Same seed, same deployment: deterministic.
        let again = Splicing::build(&g, &cfg_for(StrategyKind::RandomSpanningTree, 4), 3);
        for s in 0..4 {
            assert_eq!(column(&sp, s), column(&again, s));
        }
    }
}
