//! `Hash(src, dst)` — the default slice selector of Algorithm 1.
//!
//! When a packet carries no forwarding bits, routers hash the address pair
//! to pick a slice. The paper leans on this for "automatic" load
//! balancing (§5): different flows land on different slices even without
//! failures. Any deterministic, well-mixing hash works; we use FNV-1a,
//! implemented here so the data plane has no dependencies.

use splice_graph::NodeId;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64's finalizer: a full-avalanche bijection on `u64`.
///
/// Used directly where the input is already well-spread (FNV output below:
/// FNV's low bits are weakly mixed — its prime only propagates low bits
/// upward — so we avalanche before reducing modulo k), and via
/// [`splitmix64`] where inputs may be small or sequential.
#[inline]
pub fn splitmix64_mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// One SplitMix64 step: golden-ratio increment then finalizer. The
/// workspace's single definition — `splice_sim::parallel` re-exports it
/// for seed derivation.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    splitmix64_mix(x.wrapping_add(0x9e3779b97f4a7c15))
}

/// The slice a bit-less packet from `src` to `dst` uses, out of `k`.
///
/// # Panics
/// Panics if `k == 0`.
pub fn slice_for_flow(src: NodeId, dst: NodeId, k: usize) -> usize {
    assert!(k > 0, "need at least one slice");
    let mut bytes = [0u8; 8];
    bytes[..4].copy_from_slice(&src.0.to_be_bytes());
    bytes[4..].copy_from_slice(&dst.0.to_be_bytes());
    (splitmix64_mix(fnv1a(&bytes)) % k as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = slice_for_flow(NodeId(3), NodeId(9), 5);
        let b = slice_for_flow(NodeId(3), NodeId(9), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn in_range() {
        for s in 0..20u32 {
            for d in 0..20u32 {
                for k in 1..8 {
                    assert!(slice_for_flow(NodeId(s), NodeId(d), k) < k);
                }
            }
        }
    }

    #[test]
    fn direction_matters() {
        // Forward and reverse flows may hash differently (they are
        // different flows); just assert the hash actually uses both inputs.
        let mut distinct = 0;
        for s in 0..50u32 {
            if slice_for_flow(NodeId(s), NodeId(0), 4) != slice_for_flow(NodeId(0), NodeId(s), 4) {
                distinct += 1;
            }
        }
        assert!(distinct > 10, "hash ignores argument order?");
    }

    #[test]
    fn spreads_flows_across_slices() {
        // Over many flows every slice should receive a decent share.
        let k = 5;
        let mut counts = vec![0usize; k];
        for s in 0..40u32 {
            for d in 0..40u32 {
                if s != d {
                    counts[slice_for_flow(NodeId(s), NodeId(d), k)] += 1;
                }
            }
        }
        let total: usize = counts.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let share = c as f64 / total as f64;
            assert!((0.1..0.35).contains(&share), "slice {i} got share {share}");
        }
    }

    #[test]
    fn k_one_always_zero() {
        assert_eq!(slice_for_flow(NodeId(1), NodeId(2), 1), 0);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b""), FNV_OFFSET);
    }
}
