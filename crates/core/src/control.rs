//! The control plane as a long-running state machine: typed topology
//! events in, epoch-published FIB snapshots out.
//!
//! Everything below this module is batch-shaped — build a deployment,
//! apply a schedule, exit. [`ControlPlane`] is the daemon-shaped owner
//! the paper's operational story implies (§3.1.2: the control plane
//! *runs* the k instances; recovery happens while forwarding continues):
//! it owns the mutable deployment, consumes a stream of [`ControlEvent`]s,
//! coalesces them into [`Splicing::repair_batch`] passes, and publishes
//! each repaired arena as an immutable `Arc<SpliceFib>` snapshot through
//! a [`SnapshotHub`] that forwarding workers subscribe to.
//!
//! ## Semantics: bit-identical to batch replay
//!
//! Event semantics mirror the testkit's replay engine exactly —
//! reweights are multiplicative against *shadow* weights (the weights
//! the slice currently runs, permille factors), and a recovery
//! re-converges from the base deployment carrying every surviving
//! reweight plus one failure set for the links still down. Because
//! `repair_batch` is bit-identical to folding its events one at a time,
//! the final deployment does not depend on where batch boundaries fall:
//! a daemon under live churn, the batch driver
//! (`schedule_to_batches`/`apply_batches`), and the one-event-at-a-time
//! oracle all land on the same bytes. [`fib_checksum`] is the digest the
//! acceptance gates compare.
//!
//! ## Arena recycling
//!
//! A repair normally allocates a fresh `k·n²` arena. The control plane
//! instead keeps the last few superseded snapshots in a retirement list;
//! once every subscriber has dropped a retired `Arc`, the arena is
//! reclaimed and handed back to the next repair as scratch
//! ([`Splicing::try_repair_batch_recycling`]) — sustained churn then
//! runs allocation-free in the steady state.

use crate::slices::{RepairEvent, Splicing};
use splice_graph::{EdgeId, EdgeMask, Graph, NodeId};
use splice_routing::spf::{Histogram, SpfTelemetry};
use splice_routing::{SnapshotHub, SpliceFib};
use std::sync::Arc;
use std::time::Instant;

/// How many superseded snapshots the retirement list holds before the
/// oldest are dropped (they still free normally once readers let go —
/// they just stop being recycling candidates).
const RETIRED_CAP: usize = 8;

/// How many reclaimed arenas are kept as repair scratch.
const SPARE_CAP: usize = 2;

/// One typed control-plane event — the daemon-facing mirror of the
/// testkit's `EventSpec`, with the same wire tokens (`f4`, `g2.7`, `n1`,
/// `w2.5.1500`, `r4`) and the same semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlEvent {
    /// Fail one link (`f<edge>`).
    FailLink(EdgeId),
    /// Fail a shared-risk group of links at once (`g<e1>.<e2>...`).
    FailGroup(Vec<EdgeId>),
    /// Fail a node: all incident links go down (`n<node>`).
    FailNode(NodeId),
    /// Reweight one edge in one slice to `current * milli / 1000`
    /// (`w<slice>.<edge>.<milli>`, multiplicative against the weight the
    /// slice is running *now*, like the replay engine's shadow state).
    Reweight {
        /// Slice whose weight vector changes.
        slice: usize,
        /// The reweighted edge.
        edge: EdgeId,
        /// New weight as a permille of the current weight (> 0).
        milli: u32,
    },
    /// Restore a failed link (`r<edge>`): re-converge from the base
    /// deployment, carrying surviving reweights and failures forward.
    Recover(EdgeId),
}

impl ControlEvent {
    /// Parse one event token (the testkit spec grammar).
    pub fn parse(token: &str) -> Result<ControlEvent, String> {
        if token.is_empty() {
            return Err("empty event token".to_string());
        }
        let num = |t: &str| -> Result<u32, String> {
            t.parse::<u32>()
                .map_err(|_| format!("bad number {t:?} in event token {token:?}"))
        };
        let (kind, rest) = token.split_at(1);
        match kind {
            "f" => Ok(ControlEvent::FailLink(EdgeId(num(rest)?))),
            "g" => {
                let ids: Result<Vec<u32>, String> = rest.split('.').map(num).collect();
                let ids = ids?;
                if ids.is_empty() {
                    return Err(format!("empty link group in {token:?}"));
                }
                Ok(ControlEvent::FailGroup(
                    ids.into_iter().map(EdgeId).collect(),
                ))
            }
            "n" => Ok(ControlEvent::FailNode(NodeId(num(rest)?))),
            "w" => {
                let parts: Vec<&str> = rest.split('.').collect();
                if parts.len() != 3 {
                    return Err(format!(
                        "bad reweight {token:?}; want w<slice>.<edge>.<milli>"
                    ));
                }
                let milli = num(parts[2])?;
                if milli == 0 {
                    return Err(format!("reweight factor must be positive in {token:?}"));
                }
                Ok(ControlEvent::Reweight {
                    slice: num(parts[0])? as usize,
                    edge: EdgeId(num(parts[1])?),
                    milli,
                })
            }
            "r" => Ok(ControlEvent::Recover(EdgeId(num(rest)?))),
            other => Err(format!("unknown event kind {other:?} in {token:?}")),
        }
    }

    /// Parse a `+`-joined token list (`f4+w1.2.1500+r4`). Whitespace
    /// around the whole string is tolerated; an empty string is an empty
    /// schedule.
    pub fn parse_schedule(s: &str) -> Result<Vec<ControlEvent>, String> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Vec::new());
        }
        s.split('+').map(ControlEvent::parse).collect()
    }

    /// The canonical token for this event (inverse of
    /// [`ControlEvent::parse`]).
    pub fn token(&self) -> String {
        match self {
            ControlEvent::FailLink(e) => format!("f{}", e.0),
            ControlEvent::FailGroup(es) => {
                let ids: Vec<String> = es.iter().map(|e| e.0.to_string()).collect();
                format!("g{}", ids.join("."))
            }
            ControlEvent::FailNode(v) => format!("n{}", v.0),
            ControlEvent::Reweight { slice, edge, milli } => {
                format!("w{slice}.{}.{milli}", edge.0)
            }
            ControlEvent::Recover(e) => format!("r{}", e.0),
        }
    }

    /// Bounds-check this event against a graph and slice count.
    pub fn validate(&self, g: &Graph, k: usize) -> Result<(), String> {
        let m = g.edge_count();
        let edge_ok = |e: &EdgeId| -> Result<(), String> {
            if e.index() < m {
                Ok(())
            } else {
                Err(format!("edge {} out of range (m = {m})", e.0))
            }
        };
        match self {
            ControlEvent::FailLink(e) | ControlEvent::Recover(e) => edge_ok(e),
            ControlEvent::FailGroup(es) => es.iter().try_for_each(edge_ok),
            ControlEvent::FailNode(v) => {
                if v.index() < g.node_count() {
                    Ok(())
                } else {
                    Err(format!(
                        "node {} out of range (n = {})",
                        v.0,
                        g.node_count()
                    ))
                }
            }
            ControlEvent::Reweight { slice, edge, milli } => {
                edge_ok(edge)?;
                if *slice >= k {
                    return Err(format!("slice {slice} out of range (k = {k})"));
                }
                if *milli == 0 {
                    return Err("reweight factor must be positive".to_string());
                }
                Ok(())
            }
        }
    }
}

/// Counters describing what a [`ControlPlane`] has done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Events ingested (including no-ops).
    pub events: u64,
    /// Coalesced `repair_batch` passes applied.
    pub repair_batches: u64,
    /// Recovery re-convergences from the base deployment.
    pub rebuilds: u64,
    /// Snapshots published to the hub.
    pub publishes: u64,
    /// Repairs that reused a recycled arena instead of allocating.
    pub arenas_recycled: u64,
}

/// The daemon's mutable owner of one spliced deployment.
///
/// Single-threaded by design: exactly one thread drives `ingest`/`flush`
/// (the event loop); concurrency lives on the read side, behind the
/// [`SnapshotHub`]. See the module docs for semantics.
pub struct ControlPlane {
    g: Graph,
    base: Splicing,
    current: Splicing,
    /// The weights each slice is running now (absolute values);
    /// multiplicative reweights compose against these.
    shadow_weights: Vec<Vec<f64>>,
    /// Links currently failed, as scheduled (matches
    /// `current.failed_mask()` after a flush).
    shadow_mask: EdgeMask,
    /// Every reweight applied since the base, in application order, as
    /// `(slice, edge, absolute_weight)` — the carry for a rebuild.
    reweights_applied: Vec<(usize, EdgeId, f64)>,
    pending: Vec<RepairEvent>,
    max_batch: usize,
    hub: Arc<SnapshotHub>,
    telemetry: Option<SpfTelemetry>,
    retired: Vec<Arc<SpliceFib>>,
    spares: Vec<SpliceFib>,
    stats: ControlStats,
}

impl ControlPlane {
    /// Take ownership of a freshly built deployment. The hub's epoch-0
    /// snapshot is `base`'s arena; `max_batch` caps how many events a
    /// single repair pass coalesces (≥ 1).
    pub fn new(g: Graph, base: Splicing, max_batch: usize) -> ControlPlane {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        let k = base.k();
        let shadow_weights: Vec<Vec<f64>> = (0..k).map(|s| base.weights(s).to_vec()).collect();
        let shadow_mask = (*base.failed_mask()).clone();
        let hub = Arc::new(SnapshotHub::new(Arc::clone(base.arena())));
        ControlPlane {
            g,
            current: base.clone(),
            base,
            shadow_weights,
            shadow_mask,
            reweights_applied: Vec::new(),
            pending: Vec::new(),
            max_batch,
            hub,
            telemetry: None,
            retired: Vec::new(),
            spares: Vec::new(),
            stats: ControlStats::default(),
        }
    }

    /// Attach SPF/repair telemetry (histograms observe each repair pass).
    pub fn with_telemetry(mut self, telemetry: SpfTelemetry) -> ControlPlane {
        self.telemetry = Some(telemetry);
        self
    }

    /// The snapshot publication handle forwarding workers subscribe to.
    pub fn hub(&self) -> &Arc<SnapshotHub> {
        &self.hub
    }

    /// The deployment as of the last flush (pending events excluded).
    pub fn current(&self) -> &Splicing {
        &self.current
    }

    /// The graph the deployment runs on.
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// Events ingested but not yet repaired into the FIB.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Work counters so far.
    pub fn stats(&self) -> ControlStats {
        self.stats
    }

    /// Ingest one event. Failures and reweights accumulate into the
    /// pending batch (auto-flushing at `max_batch`); a recovery flushes
    /// whatever is pending, then re-converges from the base deployment
    /// and publishes. Returns the epoch of the newest snapshot this call
    /// published, if any.
    ///
    /// # Panics
    /// Panics on an out-of-range slice/edge/node (validate untrusted
    /// input with [`ControlEvent::validate`] first) — same contract as
    /// [`Splicing::repair_batch`].
    pub fn ingest(&mut self, ev: &ControlEvent) -> Option<u64> {
        self.stats.events += 1;
        match ev {
            ControlEvent::FailLink(e) => {
                self.shadow_mask.fail(*e);
                self.pending.push(RepairEvent::LinkFailure(*e));
            }
            ControlEvent::FailGroup(es) => {
                for e in es {
                    self.shadow_mask.fail(*e);
                }
                self.pending.push(RepairEvent::LinkSetFailure(es.clone()));
            }
            ControlEvent::FailNode(v) => {
                for &(_, e) in self.g.neighbors(*v) {
                    self.shadow_mask.fail(e);
                }
                self.pending.push(RepairEvent::NodeFailure(*v));
            }
            ControlEvent::Reweight { slice, edge, milli } => {
                let new_weight =
                    self.shadow_weights[*slice][edge.index()] * (*milli as f64 / 1000.0);
                self.shadow_weights[*slice][edge.index()] = new_weight;
                self.reweights_applied.push((*slice, *edge, new_weight));
                self.pending.push(RepairEvent::SliceReweight {
                    slice: *slice,
                    edge: *edge,
                    new_weight,
                });
            }
            ControlEvent::Recover(e) => {
                let flushed = self.flush();
                self.shadow_mask.restore(*e);
                let rebuilt = self.rebuild();
                return rebuilt.or(flushed);
            }
        }
        if self.pending.len() >= self.max_batch {
            self.flush()
        } else {
            None
        }
    }

    /// Repair the pending batch into the deployment and publish the new
    /// snapshot. Returns the new epoch, or `None` when nothing was
    /// pending or the batch coalesced to a no-op (re-failing an already
    /// failed link publishes nothing — the FIB did not change).
    pub fn flush(&mut self) -> Option<u64> {
        if self.pending.is_empty() {
            return None;
        }
        let events = std::mem::take(&mut self.pending);
        // Only spend a spare arena when the batch will actually produce
        // a new one: any reweight dirties its slice, and failures only
        // matter if the scheduled mask differs from the installed one.
        // (A no-op repair drops the spare it was handed.)
        let changes = self.shadow_mask != *self.current.failed_mask()
            || events
                .iter()
                .any(|e| matches!(e, RepairEvent::SliceReweight { .. }));
        let spare = if changes { self.reclaim_spare() } else { None };
        let recycled = spare.is_some();
        let (next, _stats) = self
            .current
            .try_repair_batch_recycling(&self.g, &events, self.telemetry.as_ref(), spare)
            .expect("control plane reweights are positive by construction");
        self.stats.repair_batches += 1;
        self.install(next, recycled)
    }

    /// Re-converge from the base deployment: replay every surviving
    /// reweight (in application order) plus one failure set for the
    /// links still down, then publish. `None` only when the rebuilt
    /// deployment is bit-identical to the current one (nothing to
    /// publish).
    fn rebuild(&mut self) -> Option<u64> {
        let mut carry: Vec<RepairEvent> = self
            .reweights_applied
            .iter()
            .map(|&(slice, edge, new_weight)| RepairEvent::SliceReweight {
                slice,
                edge,
                new_weight,
            })
            .collect();
        let still_failed: Vec<EdgeId> = self.shadow_mask.failed_edges().collect();
        if !still_failed.is_empty() {
            carry.push(RepairEvent::LinkSetFailure(still_failed));
        }
        // An empty carry re-converges to the base deployment itself,
        // sharing its arena — don't waste a spare on it.
        let spare = if carry.is_empty() {
            None
        } else {
            self.reclaim_spare()
        };
        let recycled = spare.is_some();
        let (next, _stats) = self
            .base
            .try_repair_batch_recycling(&self.g, &carry, self.telemetry.as_ref(), spare)
            .expect("carried reweights were validated when first applied");
        self.stats.rebuilds += 1;
        self.install(next, recycled)
    }

    /// Swap in the repaired deployment; if its arena actually changed,
    /// retire the superseded one and publish. A pass that coalesced to a
    /// no-op (the result shares the old arena) publishes nothing — the
    /// FIB subscribers would act on did not change.
    fn install(&mut self, next: Splicing, recycled: bool) -> Option<u64> {
        let old = Arc::clone(self.current.arena());
        self.current = next;
        if Arc::ptr_eq(&old, self.current.arena()) {
            return None;
        }
        if recycled {
            self.stats.arenas_recycled += 1;
        }
        self.retired.push(old);
        if self.retired.len() > RETIRED_CAP {
            self.retired.remove(0);
        }
        self.stats.publishes += 1;
        Some(self.hub.publish(Arc::clone(self.current.arena())))
    }

    /// Pull a reusable arena out of the retirement list: any retired
    /// snapshot whose last outside reader is gone can be overwritten.
    fn reclaim_spare(&mut self) -> Option<SpliceFib> {
        let mut i = 0;
        while i < self.retired.len() && self.spares.len() < SPARE_CAP {
            if Arc::strong_count(&self.retired[i]) == 1 {
                let arc = self.retired.remove(i);
                match Arc::try_unwrap(arc) {
                    Ok(fib) => self.spares.push(fib),
                    // A reader raced in between the count check and the
                    // unwrap: put it back and move on.
                    Err(arc) => {
                        self.retired.insert(i, arc);
                        i += 1;
                    }
                }
            } else {
                i += 1;
            }
        }
        self.spares.pop()
    }
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane")
            .field("k", &self.current.k())
            .field("epoch", &self.hub.epoch())
            .field("pending", &self.pending.len())
            .field("stats", &self.stats)
            .finish()
    }
}

/// FNV-1a digest over a deployment's forwarding state: every
/// `(slice, node, dst)` next hop plus the failed-edge set. Two
/// deployments with equal checksums forward identically. This is the
/// canonical acceptance oracle shared by the churn benchmark, the
/// testkit's daemon differential test, and `spliced`'s exit check.
pub fn fib_checksum(g: &Graph, sp: &Splicing) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for slice in 0..sp.k() {
        for u in g.nodes() {
            for t in g.nodes() {
                match sp.next_hop(slice, u, t) {
                    Some((via, e)) => {
                        eat(1 + via.0 as u64);
                        eat(e.0 as u64);
                    }
                    None => eat(0),
                }
            }
        }
    }
    for e in sp.failed_mask().failed_edges() {
        eat(e.0 as u64);
    }
    h
}

/// A message consumed by [`run_event_loop`].
#[derive(Clone, Debug)]
pub enum ControlMsg {
    /// Ingest one topology event.
    Event(ControlEvent),
    /// Repair and publish whatever is pending (a tick boundary).
    Flush,
    /// Flush, publish the final state, and exit the loop.
    Shutdown,
}

/// A [`ControlMsg`] stamped with its enqueue time, so the loop can
/// report honest event→FIB-visible latency (queue wait included).
#[derive(Clone, Debug)]
pub struct ControlEnvelope {
    /// When the sender enqueued the message.
    pub at: Instant,
    /// The message itself.
    pub msg: ControlMsg,
}

/// The sending half of a control channel; clone freely (admin routes,
/// schedule feeders, signal handlers).
#[derive(Clone, Debug)]
pub struct ControlHandle {
    tx: crossbeam::channel::Sender<ControlEnvelope>,
}

impl ControlHandle {
    fn send(&self, msg: ControlMsg) -> bool {
        self.tx
            .send(ControlEnvelope {
                at: Instant::now(),
                msg,
            })
            .is_ok()
    }

    /// Enqueue one event; `false` if the loop has exited.
    pub fn event(&self, ev: ControlEvent) -> bool {
        self.send(ControlMsg::Event(ev))
    }

    /// Enqueue a whole schedule in order; `false` if the loop has exited.
    pub fn events(&self, evs: impl IntoIterator<Item = ControlEvent>) -> bool {
        evs.into_iter().all(|ev| self.event(ev))
    }

    /// Ask the loop to repair and publish whatever is pending.
    pub fn flush(&self) -> bool {
        self.send(ControlMsg::Flush)
    }

    /// Ask the loop to flush and exit.
    pub fn shutdown(&self) -> bool {
        self.send(ControlMsg::Shutdown)
    }
}

/// An unbounded control channel. Unbounded is the backpressure policy:
/// events are a few words each, producers (admin endpoint, schedule
/// feeder) must never block behind a slow repair, and the loop drains
/// coalescing — a backlog turns into bigger batches, not latency for
/// the producer.
pub fn control_channel() -> (ControlHandle, crossbeam::channel::Receiver<ControlEnvelope>) {
    let (tx, rx) = crossbeam::channel::unbounded();
    (ControlHandle { tx }, rx)
}

/// What [`run_event_loop`] did before exiting.
#[derive(Clone, Copy, Debug, Default)]
pub struct EventLoopReport {
    /// Control-plane work counters at exit.
    pub stats: ControlStats,
    /// The epoch of the final published snapshot (0 = never published).
    pub final_epoch: u64,
    /// Whether the loop exited via [`ControlMsg::Shutdown`] (vs. all
    /// senders dropping).
    pub clean_shutdown: bool,
}

/// Drive a [`ControlPlane`] from a channel until shutdown.
///
/// Blocks on the first message, then drains whatever else is already
/// queued (up to the plane's batch cap per repair pass) so a backlog
/// coalesces into few repair passes instead of many. After each drain
/// the pending batch is flushed and published; if `latency` is given,
/// every event's enqueue→publish wall time is recorded once its FIB
/// becomes visible. Exits on [`ControlMsg::Shutdown`] or when every
/// [`ControlHandle`] is gone; either way the final state is flushed and
/// published first. Returns the plane (for final inspection — checksum,
/// oracle comparison) and a report.
pub fn run_event_loop(
    mut cp: ControlPlane,
    rx: crossbeam::channel::Receiver<ControlEnvelope>,
    latency: Option<&Histogram>,
) -> (ControlPlane, EventLoopReport) {
    let mut arrivals: Vec<Instant> = Vec::new();
    let mut clean_shutdown = false;
    let mut record_visible = |arrivals: &mut Vec<Instant>, published: bool| {
        if !published {
            return;
        }
        if let Some(h) = latency {
            let now = Instant::now();
            for at in arrivals.drain(..) {
                h.record_duration(now.duration_since(at));
            }
        } else {
            arrivals.clear();
        }
    };

    'outer: loop {
        let first = match rx.recv() {
            Ok(env) => env,
            Err(_) => break, // every handle dropped
        };
        let mut batch = vec![first];
        while batch.len() < cp.max_batch {
            match rx.try_recv() {
                Ok(env) => batch.push(env),
                Err(_) => break,
            }
        }
        for env in batch {
            match env.msg {
                ControlMsg::Event(ev) => {
                    arrivals.push(env.at);
                    let published = cp.ingest(&ev).is_some();
                    record_visible(&mut arrivals, published);
                }
                ControlMsg::Flush => {
                    let published = cp.flush().is_some();
                    record_visible(&mut arrivals, published);
                }
                ControlMsg::Shutdown => {
                    clean_shutdown = true;
                    let published = cp.flush().is_some();
                    record_visible(&mut arrivals, published);
                    break 'outer;
                }
            }
        }
        let published = cp.flush().is_some();
        record_visible(&mut arrivals, published);
    }
    let published = cp.flush().is_some();
    record_visible(&mut arrivals, published);
    // Events whose batch coalesced to a no-op never trigger a publish;
    // their FIB-visible moment is "already" — record them at the end so
    // the histogram is complete.
    if let Some(h) = latency {
        let now = Instant::now();
        for at in arrivals.drain(..) {
            h.record_duration(now.duration_since(at));
        }
    }
    let report = EventLoopReport {
        stats: cp.stats(),
        final_epoch: cp.hub().epoch(),
        clean_shutdown,
    };
    (cp, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slices::SplicingConfig;
    use splice_topology::abilene::abilene;

    fn deployment(k: usize, seed: u64) -> (Graph, Splicing) {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), seed);
        (g, sp)
    }

    #[test]
    fn event_tokens_roundtrip() {
        for token in ["f4", "g2.7", "n1", "w2.5.1500", "r4"] {
            let ev = ControlEvent::parse(token).unwrap();
            assert_eq!(ev.token(), token);
        }
        let sched = ControlEvent::parse_schedule("f4+g2.7+n1+w2.5.1500+r4").unwrap();
        assert_eq!(sched.len(), 5);
        assert!(ControlEvent::parse_schedule("").unwrap().is_empty());
        for bad in ["", "z9", "w1.2", "w1.2.0", "g", "f", "fx"] {
            assert!(ControlEvent::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn validate_bounds_events() {
        let (g, _) = deployment(2, 1);
        let m = g.edge_count() as u32;
        let n = g.node_count() as u32;
        assert!(ControlEvent::FailLink(EdgeId(0)).validate(&g, 2).is_ok());
        assert!(ControlEvent::FailLink(EdgeId(m)).validate(&g, 2).is_err());
        assert!(ControlEvent::FailNode(NodeId(n)).validate(&g, 2).is_err());
        assert!(ControlEvent::Reweight {
            slice: 2,
            edge: EdgeId(0),
            milli: 500
        }
        .validate(&g, 2)
        .is_err());
    }

    #[test]
    fn ingest_matches_one_big_repair_batch() {
        let (g, sp) = deployment(3, 7);
        let events = [
            ControlEvent::FailLink(EdgeId(0)),
            ControlEvent::Reweight {
                slice: 1,
                edge: EdgeId(3),
                milli: 1500,
            },
            ControlEvent::FailGroup(vec![EdgeId(4), EdgeId(6)]),
        ];
        // Oracle: fold the same semantics by hand into one batch.
        let w13 = sp.weights(1)[3] * 1.5;
        let oracle = sp.repair_batch(
            &g,
            &[
                RepairEvent::LinkFailure(EdgeId(0)),
                RepairEvent::SliceReweight {
                    slice: 1,
                    edge: EdgeId(3),
                    new_weight: w13,
                },
                RepairEvent::LinkSetFailure(vec![EdgeId(4), EdgeId(6)]),
            ],
        );
        for max_batch in [1usize, 2, 64] {
            let mut cp = ControlPlane::new(g.clone(), sp.clone(), max_batch);
            for ev in &events {
                cp.ingest(ev);
            }
            cp.flush();
            assert_eq!(
                fib_checksum(&g, cp.current()),
                fib_checksum(&g, &oracle),
                "max_batch {max_batch}"
            );
        }
    }

    #[test]
    fn recover_rebuilds_from_base_with_carry() {
        let (g, sp) = deployment(2, 3);
        let mut cp = ControlPlane::new(g.clone(), sp.clone(), 64);
        cp.ingest(&ControlEvent::FailLink(EdgeId(2)));
        cp.ingest(&ControlEvent::Reweight {
            slice: 0,
            edge: EdgeId(5),
            milli: 2500,
        });
        cp.ingest(&ControlEvent::FailLink(EdgeId(7)));
        let epoch = cp.ingest(&ControlEvent::Recover(EdgeId(2)));
        assert!(epoch.is_some());
        // Oracle: rebuild from base carrying the reweight + still-down set.
        let w05 = sp.weights(0)[5] * 2.5;
        let oracle = sp.repair_batch(
            &g,
            &[
                RepairEvent::SliceReweight {
                    slice: 0,
                    edge: EdgeId(5),
                    new_weight: w05,
                },
                RepairEvent::LinkSetFailure(vec![EdgeId(7)]),
            ],
        );
        assert_eq!(fib_checksum(&g, cp.current()), fib_checksum(&g, &oracle));
        assert_eq!(cp.stats().rebuilds, 1);
        // The failed mask reflects the recovery.
        assert!(cp.current().failed_mask().is_up(EdgeId(2)));
        assert!(!cp.current().failed_mask().is_up(EdgeId(7)));
    }

    #[test]
    fn published_epochs_track_fib_changes_only() {
        let (g, sp) = deployment(2, 9);
        let mut cp = ControlPlane::new(g, sp, 1);
        let hub = Arc::clone(cp.hub());
        assert_eq!(hub.epoch(), 0);
        assert!(cp.ingest(&ControlEvent::FailLink(EdgeId(1))).is_some());
        assert_eq!(hub.epoch(), 1);
        // Re-failing the same link coalesces to a no-op: no publish.
        assert!(cp.ingest(&ControlEvent::FailLink(EdgeId(1))).is_none());
        assert_eq!(hub.epoch(), 1);
        assert_eq!(cp.stats().events, 2);
    }

    #[test]
    fn steady_churn_recycles_arenas() {
        let (g, sp) = deployment(3, 11);
        let mut cp = ControlPlane::new(g, sp, 1);
        // Alternate failures and recoveries so every pass really
        // repairs. With no outside snapshot holders, retired arenas
        // become spares after the first few passes.
        for i in 0..10u32 {
            let e = EdgeId(i % 4);
            if i % 2 == 0 {
                cp.ingest(&ControlEvent::FailLink(e));
            } else {
                cp.ingest(&ControlEvent::Recover(e));
            }
        }
        let stats = cp.stats();
        assert!(
            stats.arenas_recycled >= 5,
            "expected sustained recycling, got {stats:?}"
        );
    }

    #[test]
    fn event_loop_drains_coalesces_and_reports() {
        let (g, sp) = deployment(2, 5);
        let cp = ControlPlane::new(g.clone(), sp.clone(), 16);
        let hub = Arc::clone(cp.hub());
        let (handle, rx) = control_channel();
        let latency = Arc::new(Histogram::new());
        let worker = {
            let latency = Arc::clone(&latency);
            std::thread::spawn(move || run_event_loop(cp, rx, Some(&latency)))
        };
        let schedule = ControlEvent::parse_schedule("f1+w0.3.1500+f4+r1").unwrap();
        assert!(handle.events(schedule));
        assert!(handle.shutdown());
        let (cp, report) = worker.join().unwrap();
        assert!(report.clean_shutdown);
        assert_eq!(report.stats.events, 4);
        assert!(report.final_epoch >= 1);
        assert_eq!(hub.epoch(), report.final_epoch);
        // Every event's latency was recorded.
        assert_eq!(latency.count(), 4);
        // Differential: the live loop's final FIB equals the batch oracle.
        let mut oracle = ControlPlane::new(g.clone(), sp, 1);
        for ev in ControlEvent::parse_schedule("f1+w0.3.1500+f4+r1").unwrap() {
            oracle.ingest(&ev);
        }
        oracle.flush();
        assert_eq!(
            fib_checksum(&g, cp.current()),
            fib_checksum(&g, oracle.current())
        );
    }

    #[test]
    fn event_loop_exits_when_handles_drop() {
        let (g, sp) = deployment(1, 2);
        let cp = ControlPlane::new(g, sp, 4);
        let (handle, rx) = control_channel();
        let worker = std::thread::spawn(move || run_event_loop(cp, rx, None));
        handle.event(ControlEvent::FailLink(EdgeId(0)));
        drop(handle);
        let (_cp, report) = worker.join().unwrap();
        assert!(!report.clean_shutdown);
        assert_eq!(report.stats.events, 1);
        assert_eq!(report.final_epoch, 1, "the last event was still flushed");
    }
}
