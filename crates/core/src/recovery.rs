//! Failure recovery by changing forwarding bits (§3.2, §4.3).
//!
//! Two families, matching the paper's evaluation:
//!
//! * [`EndSystemRecovery`] — network-agnostic: the end system notices the
//!   path is dead and retries with freshly randomized forwarding bits
//!   ("a coin is tossed for every hop in the shim header; if the result
//!   is a head, a different slice is selected for that hop"), up to five
//!   trials (§4.3, Figure 4).
//! * [`NetworkRecovery`] — a router adjacent to the failure deflects the
//!   packet into an alternate slice whose next hop is still connected
//!   (§4.3, Figure 5).
//!
//! [`HeaderStrategy`] also provides the alternatives §4.4/§5 sketch:
//! first-hop-biased flipping, never-revisit-a-slice (provably free of
//! persistent loops), and bounded slice switches.

use crate::forwarding::{Forwarder, ForwarderOptions, ForwardingOutcome, Trace, TraceStep};
use crate::header::ForwardingBits;
use crate::slices::Splicing;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use splice_graph::{EdgeMask, NodeId};
use std::collections::HashSet;

/// How an end system randomizes a fresh header for a recovery trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HeaderStrategy {
    /// The paper's scheme: per hop, with probability `flip_prob`, replace
    /// the base slice with a uniformly chosen *different* slice.
    Bernoulli {
        /// Per-hop switch probability (the paper uses 0.5).
        flip_prob: f64,
    },
    /// §5's suggestion: flip early hops with higher probability (failures
    /// near the source are re-routed around sooner). The flip probability
    /// decays linearly from `flip_prob` at hop 0 to 0 at the last hop.
    FirstHopBiased {
        /// Flip probability at the first hop.
        flip_prob: f64,
    },
    /// §4.4's loop-free scheme: the slice sequence never returns to a
    /// slice it has left, so no persistent forwarding loop can form.
    NoRevisit {
        /// Probability of moving to a fresh slice at each hop.
        flip_prob: f64,
    },
    /// §4.4's other mitigation: at most `max_switches` slice changes.
    BoundedSwitches {
        /// Per-hop switch probability while switches remain.
        flip_prob: f64,
        /// Hard cap on slice changes along the path.
        max_switches: usize,
    },
}

impl HeaderStrategy {
    /// Generate the per-hop slice choices for one recovery trial,
    /// starting from `base_slice` (the slice of the failed path).
    pub fn generate_hops(
        &self,
        base_slice: usize,
        hops: usize,
        k: usize,
        rng: &mut StdRng,
    ) -> Vec<u8> {
        assert!(base_slice < k);
        if k == 1 {
            return vec![0; hops];
        }
        let other = |cur: usize, rng: &mut StdRng| -> usize {
            let r = rng.gen_range(0..k - 1);
            if r >= cur {
                r + 1
            } else {
                r
            }
        };
        match *self {
            HeaderStrategy::Bernoulli { flip_prob } => (0..hops)
                .map(|_| {
                    if rng.gen_bool(flip_prob) {
                        other(base_slice, rng) as u8
                    } else {
                        base_slice as u8
                    }
                })
                .collect(),
            HeaderStrategy::FirstHopBiased { flip_prob } => (0..hops)
                .map(|i| {
                    // Linear decay that genuinely reaches 0 at the last
                    // hop (i = hops - 1), so deflections concentrate
                    // where they help: near the source.
                    let p = if hops > 1 {
                        flip_prob * (hops - 1 - i) as f64 / (hops - 1) as f64
                    } else {
                        flip_prob
                    };
                    if rng.gen_bool(p.clamp(0.0, 1.0)) {
                        other(base_slice, rng) as u8
                    } else {
                        base_slice as u8
                    }
                })
                .collect(),
            HeaderStrategy::NoRevisit { flip_prob } => {
                let mut used: HashSet<usize> = HashSet::from([base_slice]);
                let mut current = base_slice;
                (0..hops)
                    .map(|_| {
                        if rng.gen_bool(flip_prob) {
                            let fresh: Vec<usize> = (0..k).filter(|s| !used.contains(s)).collect();
                            if let Some(&next) = fresh.as_slice().choose(rng) {
                                used.insert(next);
                                current = next;
                            }
                        }
                        current as u8
                    })
                    .collect()
            }
            HeaderStrategy::BoundedSwitches {
                flip_prob,
                max_switches,
            } => {
                let mut current = base_slice;
                let mut switches = 0;
                (0..hops)
                    .map(|_| {
                        if switches < max_switches && rng.gen_bool(flip_prob) {
                            current = other(current, rng);
                            switches += 1;
                        }
                        current as u8
                    })
                    .collect()
            }
        }
    }

    /// [`Self::generate_hops`] packed into a wire header.
    pub fn generate(
        &self,
        base_slice: usize,
        hops: usize,
        k: usize,
        rng: &mut StdRng,
    ) -> ForwardingBits {
        ForwardingBits::from_hops(&self.generate_hops(base_slice, hops, k, rng), k)
    }
}

/// Result of a (multi-trial) recovery attempt.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryOutcome {
    /// Whether any trial delivered the packet.
    pub recovered: bool,
    /// Trials attempted (= the successful trial's index when recovered).
    pub trials: usize,
    /// The successful trace, when recovered.
    pub delivery: Option<Trace>,
    /// Loop lengths observed across *all* trial traces (§4.4's metric).
    pub loops_seen: Vec<usize>,
}

/// End-system recovery (§4.3, Figure 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EndSystemRecovery {
    /// Trial budget; the paper deems a path recoverable within 5 trials
    /// ("these trials could be run in parallel").
    pub max_trials: usize,
    /// Hops encoded per header; the paper uses 20.
    pub header_hops: usize,
    /// Header randomization scheme.
    pub strategy: HeaderStrategy,
}

impl Default for EndSystemRecovery {
    fn default() -> Self {
        EndSystemRecovery {
            max_trials: 5,
            header_hops: 20,
            strategy: HeaderStrategy::Bernoulli { flip_prob: 0.5 },
        }
    }
}

impl EndSystemRecovery {
    /// Attempt recovery of the `(src, dst)` flow whose `base_slice` path
    /// failed: up to `max_trials` independent random headers.
    pub fn recover(
        &self,
        fwd: &Forwarder<'_>,
        src: NodeId,
        dst: NodeId,
        base_slice: usize,
        opts: &ForwarderOptions,
        rng: &mut StdRng,
    ) -> RecoveryOutcome {
        let k = fwd.k();
        let mut loops_seen = Vec::new();
        for trial in 1..=self.max_trials {
            let header = self.strategy.generate(base_slice, self.header_hops, k, rng);
            let out = fwd.forward(src, dst, header, opts);
            loops_seen.extend(out.trace().loop_lengths());
            if let ForwardingOutcome::Delivered(trace) = out {
                return RecoveryOutcome {
                    recovered: true,
                    trials: trial,
                    delivery: Some(trace),
                    loops_seen,
                };
            }
        }
        RecoveryOutcome {
            recovered: false,
            trials: self.max_trials,
            delivery: None,
            loops_seen,
        }
    }
}

/// Recovery with §5's compressed counter header: the end system retries
/// with counter values 1, 2, … — each value deterministically deflects
/// the packet at its first hops. No randomness, one u32 of header state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterRecovery {
    /// Trial budget (counter values tried, starting at 1).
    pub max_trials: usize,
}

impl Default for CounterRecovery {
    fn default() -> Self {
        CounterRecovery { max_trials: 5 }
    }
}

impl CounterRecovery {
    /// Attempt recovery of `(src, dst)` by sweeping counter values.
    pub fn recover(
        &self,
        fwd: &Forwarder<'_>,
        src: NodeId,
        dst: NodeId,
        opts: &ForwarderOptions,
    ) -> RecoveryOutcome {
        let mut loops_seen = Vec::new();
        for trial in 1..=self.max_trials {
            let header = crate::header::CounterHeader::new(trial as u32);
            let out = fwd.forward_counter(src, dst, header, opts);
            loops_seen.extend(out.trace().loop_lengths());
            if let ForwardingOutcome::Delivered(trace) = out {
                return RecoveryOutcome {
                    recovered: true,
                    trials: trial,
                    delivery: Some(trace),
                    loops_seen,
                };
            }
        }
        RecoveryOutcome {
            recovered: false,
            trials: self.max_trials,
            delivery: None,
            loops_seen,
        }
    }
}

/// How network-based recovery picks the alternate slice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SliceSelection {
    /// Deterministic: the lowest-numbered slice with a live next hop.
    #[default]
    FirstAlternate,
    /// Uniformly random among slices with a live next hop.
    Random,
}

/// Network-based recovery (§4.3, Figure 5): "when a router x receives
/// packets destined to d with next-hop y and discovers that link (x, y)
/// has failed, it finds in its forwarding table an alternate slice with a
/// connected next-hop for d (if one exists)".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkRecovery {
    /// Alternate-slice choice rule.
    pub selection: SliceSelection,
    /// Hop budget.
    pub ttl: usize,
}

impl Default for NetworkRecovery {
    fn default() -> Self {
        NetworkRecovery {
            selection: SliceSelection::FirstAlternate,
            ttl: 64,
        }
    }
}

impl NetworkRecovery {
    /// Walk a packet from `src` toward `dst`, starting in `initial_slice`,
    /// deflecting at dead links. Returns the forwarding outcome; the paper
    /// counts the pair recoverable iff this delivers.
    pub fn forward(
        &self,
        splicing: &Splicing,
        mask: &EdgeMask,
        src: NodeId,
        dst: NodeId,
        initial_slice: usize,
        rng: &mut StdRng,
    ) -> ForwardingOutcome {
        let k = splicing.k();
        assert!(initial_slice < k);
        let mut slice = initial_slice;
        let mut at = src;
        let mut steps = Vec::new();
        // Deterministic selection ⇒ (node, slice) revisit proves a loop.
        let mut seen: HashSet<(NodeId, usize)> = HashSet::new();

        while at != dst {
            if self.selection == SliceSelection::FirstAlternate && !seen.insert((at, slice)) {
                return ForwardingOutcome::PersistentLoop(Trace {
                    src,
                    dst,
                    steps,
                    last: at,
                });
            }
            let usable = |s: usize| {
                splicing
                    .next_hop(s, at, dst)
                    .filter(|&(_, e)| mask.is_up(e))
            };
            let chosen = match usable(slice) {
                Some(hop) => Some((slice, hop)),
                None => {
                    // Local deflection: find an alternate slice whose next
                    // hop is still connected.
                    let mut candidates: Vec<usize> = (0..k)
                        .filter(|&s| s != slice && usable(s).is_some())
                        .collect();
                    match self.selection {
                        SliceSelection::FirstAlternate => {}
                        SliceSelection::Random => candidates.shuffle(rng),
                    }
                    candidates
                        .first()
                        .map(|&s| (s, usable(s).expect("candidate is usable")))
                }
            };
            let Some((new_slice, (next, edge))) = chosen else {
                return ForwardingOutcome::DeadEnd(Trace {
                    src,
                    dst,
                    steps,
                    last: at,
                });
            };
            slice = new_slice;
            steps.push(TraceStep {
                node: at,
                slice,
                edge,
            });
            at = next;
            if steps.len() > self.ttl {
                return ForwardingOutcome::TtlExceeded(Trace {
                    src,
                    dst,
                    steps,
                    last: at,
                });
            }
        }
        ForwardingOutcome::Delivered(Trace {
            src,
            dst,
            steps,
            last: at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slices::SplicingConfig;
    use rand::SeedableRng;
    use splice_graph::EdgeId;
    use splice_topology::abilene::abilene;

    fn setup(k: usize) -> (splice_graph::Graph, Splicing) {
        let g = abilene().graph();
        // The recovery tests below need the perturbed slices to diverge at
        // Seattle (node 0) for the 0 -> 10 flow, and node 0 must still
        // reach 10 once any one slice's first hop is failed — otherwise
        // there is no alternative for recovery to find. Seed 3 has this
        // property under rand 0.8's StdRng stream; scanning forward pins
        // the tests to the property itself instead of to one stream's
        // draws.
        for seed in 3..200 {
            let sp = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), seed);
            if k == 1 {
                return (g, sp);
            }
            let first_hops: HashSet<_> = (0..k)
                .filter_map(|s| sp.next_hop(s, NodeId(0), NodeId(10)))
                .collect();
            let recoverable = first_hops.len() >= 2
                && first_hops.iter().all(|&(_, e)| {
                    let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
                    sp.reachable_to(NodeId(10), k, &mask)[0]
                });
            if recoverable {
                return (g, sp);
            }
        }
        panic!("no seed in 3..200 yields recoverable slice divergence at node 0");
    }

    #[test]
    fn bernoulli_hops_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = HeaderStrategy::Bernoulli { flip_prob: 0.5 };
        let mut switched = 0usize;
        let total = 200 * 20;
        for _ in 0..200 {
            let hops = strat.generate_hops(0, 20, 4, &mut rng);
            switched += hops.iter().filter(|&&h| h != 0).count();
            for &h in &hops {
                assert!(h < 4);
            }
        }
        let frac = switched as f64 / total as f64;
        assert!((0.45..0.55).contains(&frac), "switch fraction {frac}");
    }

    #[test]
    fn first_hop_biased_front_loads_switches() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = HeaderStrategy::FirstHopBiased { flip_prob: 0.8 };
        let (mut front, mut back) = (0usize, 0usize);
        for _ in 0..500 {
            let hops = strat.generate_hops(0, 20, 3, &mut rng);
            front += hops[..5].iter().filter(|&&h| h != 0).count();
            back += hops[15..].iter().filter(|&&h| h != 0).count();
        }
        assert!(front > back * 2, "front {front} vs back {back}");
    }

    #[test]
    fn first_hop_biased_decays_to_zero_at_last_hop() {
        // With flip_prob = 1.0 the decay schedule is fully observable:
        // the first hop always flips, the last hop never does.
        let mut rng = StdRng::seed_from_u64(21);
        let strat = HeaderStrategy::FirstHopBiased { flip_prob: 1.0 };
        for _ in 0..300 {
            let hops = strat.generate_hops(0, 20, 4, &mut rng);
            assert_ne!(hops[0], 0, "hop 0 must flip at flip_prob = 1");
            assert_eq!(hops[19], 0, "last hop's flip probability must be 0");
        }
    }

    #[test]
    fn first_hop_biased_single_hop_uses_full_flip_prob() {
        // A 1-hop header has no room for decay: the single hop flips
        // with the full probability, not 0/0.
        let mut rng = StdRng::seed_from_u64(22);
        let strat = HeaderStrategy::FirstHopBiased { flip_prob: 1.0 };
        for _ in 0..50 {
            let hops = strat.generate_hops(2, 1, 4, &mut rng);
            assert_ne!(hops[0], 2);
        }
    }

    #[test]
    fn no_revisit_with_certain_flips_walks_distinct_slices() {
        // flip_prob = 1.0 forces a fresh slice every hop until all k are
        // used, then stays put: the hop sequence's distinct values are a
        // prefix-free chain of exactly k slices.
        let mut rng = StdRng::seed_from_u64(23);
        let strat = HeaderStrategy::NoRevisit { flip_prob: 1.0 };
        for _ in 0..100 {
            let hops = strat.generate_hops(0, 20, 4, &mut rng);
            let mut distinct: Vec<u8> = Vec::new();
            for &h in &hops {
                if distinct.last() != Some(&h) {
                    distinct.push(h);
                }
            }
            assert_eq!(distinct.len(), 3, "3 fresh slices beyond base: {hops:?}");
            let mut sorted = distinct.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "no slice repeats: {hops:?}");
            assert!(
                hops[19 - 3..].iter().all(|&h| h == hops[19]),
                "parks once exhausted"
            );
        }
    }

    #[test]
    fn bounded_switches_zero_cap_never_switches() {
        let mut rng = StdRng::seed_from_u64(24);
        let strat = HeaderStrategy::BoundedSwitches {
            flip_prob: 1.0,
            max_switches: 0,
        };
        for _ in 0..50 {
            let hops = strat.generate_hops(1, 20, 4, &mut rng);
            assert!(hops.iter().all(|&h| h == 1), "{hops:?}");
        }
    }

    #[test]
    fn no_revisit_never_returns_to_left_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = HeaderStrategy::NoRevisit { flip_prob: 0.7 };
        for _ in 0..300 {
            let hops = strat.generate_hops(1, 20, 5, &mut rng);
            // Once a slice value is abandoned, it must not reappear.
            let mut seen_and_left: HashSet<u8> = HashSet::new();
            let mut current = hops[0];
            for &h in &hops[1..] {
                if h != current {
                    seen_and_left.insert(current);
                    assert!(
                        !seen_and_left.contains(&h),
                        "revisited slice {h} in {hops:?}"
                    );
                    current = h;
                }
            }
        }
    }

    #[test]
    fn bounded_switches_respects_cap() {
        let mut rng = StdRng::seed_from_u64(4);
        let strat = HeaderStrategy::BoundedSwitches {
            flip_prob: 0.9,
            max_switches: 2,
        };
        for _ in 0..300 {
            let hops = strat.generate_hops(0, 20, 4, &mut rng);
            let switches = hops.windows(2).filter(|w| w[0] != w[1]).count();
            assert!(switches <= 2, "{switches} switches in {hops:?}");
        }
    }

    #[test]
    fn k1_headers_are_all_base() {
        let mut rng = StdRng::seed_from_u64(5);
        let hops = HeaderStrategy::Bernoulli { flip_prob: 0.5 }.generate_hops(0, 20, 1, &mut rng);
        assert!(hops.iter().all(|&h| h == 0));
    }

    #[test]
    fn end_system_recovers_single_failure() {
        let (g, sp) = setup(5);
        // Break slice 0's first hop for (0 -> 10).
        let (_, edge) = sp.next_hop(0, NodeId(0), NodeId(10)).unwrap();
        let mask = EdgeMask::from_failed(g.edge_count(), &[edge]);
        let fwd = Forwarder::new(&sp, &g, &mask);
        let mut rng = StdRng::seed_from_u64(6);
        let rec = EndSystemRecovery::default();
        let out = rec.recover(
            &fwd,
            NodeId(0),
            NodeId(10),
            0,
            &ForwarderOptions::default(),
            &mut rng,
        );
        assert!(out.recovered, "recovery failed: {out:?}");
        assert!(out.trials <= 5);
        let t = out.delivery.unwrap();
        assert_eq!(t.last, NodeId(10));
        // The delivered walk must avoid the failed edge.
        assert!(t.steps.iter().all(|s| s.edge != edge));
    }

    #[test]
    fn end_system_cannot_recover_with_one_slice() {
        let (g, sp) = setup(1);
        let (_, edge) = sp.next_hop(0, NodeId(0), NodeId(10)).unwrap();
        let mask = EdgeMask::from_failed(g.edge_count(), &[edge]);
        let fwd = Forwarder::new(&sp, &g, &mask);
        let mut rng = StdRng::seed_from_u64(7);
        let rec = EndSystemRecovery::default();
        let out = rec.recover(
            &fwd,
            NodeId(0),
            NodeId(10),
            0,
            &ForwarderOptions::default(),
            &mut rng,
        );
        assert!(!out.recovered, "k=1 has no alternate paths");
        assert_eq!(out.trials, 5);
    }

    #[test]
    fn network_recovery_deflects_around_failure() {
        let (g, sp) = setup(5);
        let (_, edge) = sp.next_hop(0, NodeId(0), NodeId(10)).unwrap();
        let mask = EdgeMask::from_failed(g.edge_count(), &[edge]);
        let mut rng = StdRng::seed_from_u64(8);
        let nr = NetworkRecovery::default();
        let out = nr.forward(&sp, &mask, NodeId(0), NodeId(10), 0, &mut rng);
        assert!(out.is_delivered(), "{out:?}");
        assert!(out.trace().steps.iter().all(|s| s.edge != edge));
    }

    #[test]
    fn network_recovery_random_mode_also_delivers() {
        let (g, sp) = setup(5);
        let (_, edge) = sp.next_hop(0, NodeId(0), NodeId(10)).unwrap();
        let mask = EdgeMask::from_failed(g.edge_count(), &[edge]);
        let mut rng = StdRng::seed_from_u64(9);
        let nr = NetworkRecovery {
            selection: SliceSelection::Random,
            ttl: 64,
        };
        let out = nr.forward(&sp, &mask, NodeId(0), NodeId(10), 0, &mut rng);
        assert!(out.is_delivered(), "{out:?}");
    }

    #[test]
    fn network_recovery_dead_end_on_cut() {
        // Cut node 0 off entirely: every incident edge failed.
        let (g, sp) = setup(3);
        let incident: Vec<EdgeId> = g.neighbors(NodeId(0)).iter().map(|&(_, e)| e).collect();
        let mask = EdgeMask::from_failed(g.edge_count(), &incident);
        let mut rng = StdRng::seed_from_u64(10);
        let out = NetworkRecovery::default().forward(&sp, &mask, NodeId(0), NodeId(5), 0, &mut rng);
        assert!(matches!(out, ForwardingOutcome::DeadEnd(_)), "{out:?}");
    }

    #[test]
    fn network_recovery_clean_path_is_untouched() {
        let (g, sp) = setup(4);
        let mask = EdgeMask::all_up(g.edge_count());
        let mut rng = StdRng::seed_from_u64(11);
        let out = NetworkRecovery::default().forward(&sp, &mask, NodeId(1), NodeId(8), 0, &mut rng);
        let ForwardingOutcome::Delivered(trace) = out else {
            panic!()
        };
        assert!(
            trace.steps.iter().all(|s| s.slice == 0),
            "no deflection without failure"
        );
    }

    #[test]
    fn counter_recovery_finds_alternates() {
        let (g, sp) = setup(5);
        // Fail the hash-slice first hop for a pair, then sweep counters.
        let (s, t) = (NodeId(0), NodeId(10));
        let hash_slice = crate::hash::slice_for_flow(s, t, sp.k());
        let (_, edge) = sp.next_hop(hash_slice, s, t).unwrap();
        let mask = EdgeMask::from_failed(g.edge_count(), &[edge]);
        let fwd = Forwarder::new(&sp, &g, &mask);
        let out = CounterRecovery::default().recover(&fwd, s, t, &ForwarderOptions::default());
        assert!(out.recovered, "{out:?}");
        let tr = out.delivery.unwrap();
        assert!(tr.steps.iter().all(|st| st.edge != edge));
    }

    #[test]
    fn counter_recovery_fails_across_cut() {
        let (g, sp) = setup(5);
        let incident: Vec<EdgeId> = g.neighbors(NodeId(0)).iter().map(|&(_, e)| e).collect();
        let mask = EdgeMask::from_failed(g.edge_count(), &incident);
        let fwd = Forwarder::new(&sp, &g, &mask);
        let out = CounterRecovery { max_trials: 8 }.recover(
            &fwd,
            NodeId(0),
            NodeId(5),
            &ForwarderOptions::default(),
        );
        assert!(!out.recovered);
        assert_eq!(out.trials, 8);
    }

    #[test]
    fn recovery_outcome_records_loops() {
        let (g, sp) = setup(5);
        let (_, edge) = sp.next_hop(0, NodeId(0), NodeId(10)).unwrap();
        let mask = EdgeMask::from_failed(g.edge_count(), &[edge]);
        let fwd = Forwarder::new(&sp, &g, &mask);
        let mut rng = StdRng::seed_from_u64(12);
        // Run many recoveries; loops_seen must be consistent (possibly empty,
        // but the field is always well-formed: lengths >= 2).
        for _ in 0..50 {
            let out = EndSystemRecovery::default().recover(
                &fwd,
                NodeId(0),
                NodeId(10),
                0,
                &ForwarderOptions::default(),
                &mut rng,
            );
            assert!(out.loops_seen.iter().all(|&l| l >= 2));
        }
    }
}
