//! Coverage-aware slice construction (§5 "alternate slicing mechanisms").
//!
//! Random perturbation is oblivious: two slices may rediscover the same
//! trees. The paper suggests splicing "might perform even better if each
//! slice were configured with some consideration of the edges in the
//! underlying graph that were already covered by other slices". This
//! module implements that idea: slices are built sequentially, and each
//! new slice sees the weights of *already-covered* edges inflated by a
//! penalty factor, steering its shortest-path trees onto fresh links.
//!
//! The construction remains fully distributed-friendly: the penalty is a
//! deterministic function of the previous slices' (globally agreed)
//! trees, so every router derives identical weights, exactly as with the
//! pseudorandom perturbations of §3.1.

use crate::perturb::Perturbation;
use crate::slices::{Slice, Splicing, SplicingConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_graph::Graph;
use splice_routing::spf::spf_from_weights;

/// Configuration for coverage-aware construction.
#[derive(Clone, Debug, PartialEq)]
pub struct CoverageConfig {
    /// The base (random-perturbation) configuration; its `k` and
    /// perturbation are reused.
    pub base: SplicingConfig,
    /// Multiplicative penalty applied to an edge's weight for each
    /// previous slice that used it, as `w · (1 + penalty·uses)`.
    /// 0 recovers plain independent perturbation.
    pub penalty: f64,
}

/// Build `k` slices where each new slice is repelled from the edges the
/// previous slices' trees already cover.
///
/// Slice 0 stays the unperturbed base (when the base config says so);
/// slice `i > 0` draws its random perturbation, then multiplies each
/// edge's weight by `1 + penalty · uses(e)` where `uses(e)` counts the
/// previous slices whose trees (toward any destination) include `e`.
pub fn build_coverage_aware(g: &Graph, cfg: &CoverageConfig, seed: u64) -> Splicing {
    assert!(cfg.base.k >= 1, "need at least one slice");
    assert!(cfg.penalty >= 0.0 && cfg.penalty.is_finite());
    let m = g.edge_count();
    let mut uses = vec![0u32; m];
    let mut slices = Vec::with_capacity(cfg.base.k);
    for id in 0..cfg.base.k {
        let mut weights = if id == 0 && cfg.base.include_base_slice {
            g.base_weights()
        } else {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(id as u64 + 1)));
            cfg.base.perturbation.perturb(g, &mut rng)
        };
        if id > 0 && cfg.penalty > 0.0 {
            for (i, w) in weights.iter_mut().enumerate() {
                *w *= 1.0 + cfg.penalty * uses[i] as f64;
            }
        }
        let tables = spf_from_weights(g, &weights);
        // Record which physical edges this slice's trees cover.
        let mut covered = vec![false; m];
        for fib in &tables.fibs {
            for entry in fib.entries.iter().flatten() {
                covered[entry.1.index()] = true;
            }
        }
        for (i, c) in covered.iter().enumerate() {
            if *c {
                uses[i] += 1;
            }
        }
        slices.push(Slice {
            id,
            weights,
            tables,
        });
    }
    Splicing::from_slices(slices)
}

/// Fraction of physical edges covered by the union of the first
/// `k_prefix` slices' trees — the quantity coverage-aware construction
/// maximizes.
pub fn edge_coverage(splicing: &Splicing, k_prefix: usize) -> f64 {
    let used = splicing.union_edges(k_prefix);
    let covered = used.iter().filter(|&&b| b).count();
    covered as f64 / used.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_topology::sprint::sprint;

    fn cfg(k: usize, penalty: f64) -> CoverageConfig {
        CoverageConfig {
            base: SplicingConfig::degree_based(k, 0.0, 3.0),
            penalty,
        }
    }

    #[test]
    fn zero_penalty_equals_independent_construction() {
        let g = sprint().graph();
        let aware = build_coverage_aware(&g, &cfg(4, 0.0), 9);
        let plain = Splicing::build(&g, &SplicingConfig::degree_based(4, 0.0, 3.0), 9);
        for i in 0..4 {
            assert_eq!(aware.weights(i), plain.weights(i));
        }
    }

    #[test]
    fn penalty_improves_edge_coverage() {
        let g = sprint().graph();
        let k = 5;
        let plain = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), 3);
        let aware = build_coverage_aware(&g, &cfg(k, 2.0), 3);
        let cov_plain = edge_coverage(&plain, k);
        let cov_aware = edge_coverage(&aware, k);
        assert!(
            cov_aware >= cov_plain,
            "coverage-aware {cov_aware} < plain {cov_plain}"
        );
    }

    #[test]
    fn slice_zero_untouched() {
        let g = sprint().graph();
        let aware = build_coverage_aware(&g, &cfg(3, 5.0), 1);
        assert_eq!(aware.weights(0), g.base_weights());
    }

    #[test]
    fn deterministic() {
        let g = sprint().graph();
        let a = build_coverage_aware(&g, &cfg(3, 1.5), 7);
        let b = build_coverage_aware(&g, &cfg(3, 1.5), 7);
        for i in 0..3 {
            assert_eq!(a.weights(i), b.weights(i));
        }
    }

    #[test]
    #[should_panic]
    fn negative_penalty_rejected() {
        let g = sprint().graph();
        build_coverage_aware(&g, &cfg(2, -1.0), 1);
    }
}
