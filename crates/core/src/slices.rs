//! Slice construction: k routing instances over one topology (§3.1).
//!
//! A [`Slice`] is one converged routing instance — a perturbed weight
//! vector and the forwarding tables it induces. A [`Splicing`] is the set
//! of `k` slices a deployment runs. By convention (matching the paper's
//! "k = 1 (normal)" baseline) slice 0 uses the *unperturbed* base weights,
//! so a single-slice splicing is exactly ordinary shortest-path routing;
//! slices 1..k are independently perturbed.

use crate::perturb::{DegreeBased, Perturbation, TheoremA1, Uniform};
use crate::strategy::{with_spf_workspace, SliceStrategy, StrategyKind};
use rand::rngs::StdRng;
use splice_graph::dijkstra::{validate_weights, SpfWorkspace, WeightError};
use splice_graph::traversal::reverse_reachable;
use splice_graph::{EdgeId, EdgeMask, Graph, NodeId};
use splice_routing::arena::{PlaneMut, RepairStats, SpliceFib};
use splice_routing::spf::{
    spf_repair_arena_failures, spf_repair_arena_reweight, spf_repair_plane_failures,
    spf_repair_plane_reweight, FlightEvent, SpfTelemetry,
};
use splice_routing::RoutingTables;
use std::sync::Arc;

/// A topology or weight event a deployed splicing must absorb without a
/// full rebuild — the reconvergence workload of §4.2's dynamics story.
#[derive(Clone, Debug, PartialEq)]
pub enum RepairEvent {
    /// One link went down (in every slice — failures are physical).
    LinkFailure(EdgeId),
    /// Several links went down at once (e.g. a shared-risk group).
    LinkSetFailure(Vec<EdgeId>),
    /// A router went down: every incident link fails.
    NodeFailure(NodeId),
    /// One slice's weight for `edge` changed to `new_weight` — the
    /// control-plane event behind traffic engineering and perturbation
    /// re-draws. Weight changes are per-slice; other slices keep routing
    /// on their own vectors.
    SliceReweight {
        /// The slice whose vector changes.
        slice: usize,
        /// The reweighted link.
        edge: EdgeId,
        /// Its new weight (must be positive and finite).
        new_weight: f64,
    },
}

impl RepairEvent {
    /// A static label for the event class — the `name` flight-recorder
    /// entries and log lines file this event under.
    pub fn kind_label(&self) -> &'static str {
        match self {
            RepairEvent::LinkFailure(_) => "link_failure",
            RepairEvent::LinkSetFailure(_) => "link_set_failure",
            RepairEvent::NodeFailure(_) => "node_failure",
            RepairEvent::SliceReweight { .. } => "slice_reweight",
        }
    }
}

/// Which perturbation strategy a config uses (a closed enum so configs
/// stay `Clone + Send + Sync` and trivially serializable in results).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PerturbationKind {
    /// Constant `Weight` for all links.
    Uniform(Uniform),
    /// The paper's degree-based `Weight(a, b)`.
    DegreeBased(DegreeBased),
    /// Theorem A.1's full-range redraw.
    TheoremA1(TheoremA1),
}

impl Perturbation for PerturbationKind {
    fn perturb(&self, g: &Graph, rng: &mut StdRng) -> Vec<f64> {
        match self {
            PerturbationKind::Uniform(p) => p.perturb(g, rng),
            PerturbationKind::DegreeBased(p) => p.perturb(g, rng),
            PerturbationKind::TheoremA1(p) => p.perturb(g, rng),
        }
    }

    fn label(&self) -> String {
        match self {
            PerturbationKind::Uniform(p) => p.label(),
            PerturbationKind::DegreeBased(p) => p.label(),
            PerturbationKind::TheoremA1(p) => p.label(),
        }
    }
}

/// Configuration for building a [`Splicing`].
#[derive(Clone, Debug, PartialEq)]
pub struct SplicingConfig {
    /// Number of slices `k ≥ 1`.
    pub k: usize,
    /// Perturbation applied to slices 1..k (slice 0 stays base when
    /// `include_base_slice`). Only the perturbed-SPF strategy reads it.
    pub perturbation: PerturbationKind,
    /// Keep slice 0 unperturbed (the paper's baseline convention;
    /// perturbed-SPF only — tree strategies own every slice).
    pub include_base_slice: bool,
    /// How each slice's forwarding columns are constructed.
    pub strategy: StrategyKind,
}

impl SplicingConfig {
    /// The paper's headline configuration: degree-based `Weight(a, b)`.
    pub fn degree_based(k: usize, a: f64, b: f64) -> Self {
        SplicingConfig {
            k,
            perturbation: PerturbationKind::DegreeBased(DegreeBased::new(a, b)),
            include_base_slice: true,
            strategy: StrategyKind::PerturbedSpf,
        }
    }

    /// Uniform perturbation with the given strength.
    pub fn uniform(k: usize, strength: f64) -> Self {
        SplicingConfig {
            k,
            perturbation: PerturbationKind::Uniform(Uniform::new(strength)),
            include_base_slice: true,
            strategy: StrategyKind::PerturbedSpf,
        }
    }

    /// The same config with a different slice-construction strategy.
    pub fn with_strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }
}

/// One routing slice as a *construction input*: a weight vector and the
/// tables it induces. Built deployments store this state flattened in a
/// shared [`SpliceFib`] arena; `Slice` survives as the unit alternative
/// constructions (e.g. [`crate::coverage::build_coverage_aware`]) hand to
/// [`Splicing::from_slices`].
#[derive(Clone, Debug)]
pub struct Slice {
    /// Slice index (0 = base slice when configured).
    pub id: usize,
    /// The perturbed (or base) weight vector.
    pub weights: Vec<f64>,
    /// Converged forwarding tables for every router.
    pub tables: RoutingTables,
}

/// A full splicing deployment: `k` slices over one graph, with all
/// forwarding state in one flat [`SpliceFib`] arena.
///
/// The arena and the weight vectors are shared behind `Arc`s, so cloning
/// a `Splicing` — and, crucially, taking a [`Splicing::prefix`] view — is
/// O(1) and copies no forwarding state.
#[derive(Clone, Debug)]
pub struct Splicing {
    /// Slices visible through this handle (≤ planes built in `fib`).
    k: usize,
    /// Per-slice weight vectors for every *built* plane (shared).
    weights: Arc<[Vec<f64>]>,
    /// The flat forwarding-state arena (shared).
    fib: Arc<SpliceFib>,
    /// Cumulative failed-link set the arena's state reflects (all-up for
    /// a fresh build; grows as [`Splicing::repair`] absorbs failures).
    failed: Arc<EdgeMask>,
    /// How the planes were constructed — consulted by [`Splicing::repair`]
    /// to choose delta-patching vs masked rebuild.
    strategy: StrategyKind,
    /// The build seed, kept so rebuild-only strategies can regenerate a
    /// slice's randomness (trees) deterministically during repair.
    seed: u64,
}

impl Splicing {
    /// Assemble a deployment from pre-built slices (used by alternative
    /// constructions such as [`crate::coverage::build_coverage_aware`]).
    ///
    /// # Panics
    /// Panics if `slices` is empty or slice ids are not `0..k` in order.
    pub fn from_slices(slices: Vec<Slice>) -> Splicing {
        assert!(!slices.is_empty(), "need at least one slice");
        for (i, s) in slices.iter().enumerate() {
            assert_eq!(s.id, i, "slice ids must be dense and ordered");
        }
        let fib = SpliceFib::from_tables(slices.iter().map(|s| &s.tables));
        let weights: Vec<Vec<f64>> = slices.into_iter().map(|s| s.weights).collect();
        let edge_count = weights[0].len();
        Splicing {
            k: weights.len(),
            weights: weights.into(),
            fib: Arc::new(fib),
            failed: Arc::new(EdgeMask::all_up(edge_count)),
            // Pre-built slices carry SPF-shaped state; repairs keep using
            // the delta engine exactly as before the strategy extraction.
            strategy: StrategyKind::PerturbedSpf,
            seed: 0,
        }
    }

    /// Assemble a deployment from explicit state: per-slice weight
    /// vectors, a pre-populated arena, and the failure mask that arena
    /// is meant to reflect.
    ///
    /// Production deployments come from [`Splicing::build`] and
    /// [`Splicing::repair`], which keep these three consistent by
    /// construction. This constructor exists for test harnesses that
    /// need to break that consistency on purpose — `splice-testkit`
    /// uses it to inject corrupted forwarding state (e.g. a slice whose
    /// columns skipped a repair) and prove its oracles catch it.
    ///
    /// # Panics
    /// Panics when the shapes disagree: no slices, mismatched
    /// weight-vector lengths, or an arena of a different `k`/`n`.
    pub fn from_parts(weights: Vec<Vec<f64>>, fib: SpliceFib, failed: EdgeMask) -> Splicing {
        assert!(!weights.is_empty(), "need at least one slice");
        assert_eq!(weights.len(), fib.k(), "weight vectors vs arena planes");
        let m = failed.len();
        for (i, w) in weights.iter().enumerate() {
            assert_eq!(w.len(), m, "slice {i} weight length vs failure mask");
        }
        Splicing {
            k: weights.len(),
            weights: weights.into(),
            fib: Arc::new(fib),
            failed: Arc::new(failed),
            strategy: StrategyKind::PerturbedSpf,
            seed: 0,
        }
    }

    /// Build `cfg.k` slices over `g`, deterministically from `seed`.
    ///
    /// Each perturbed slice draws from its own seeded RNG stream, so
    /// changing `k` does not change the weights of lower-numbered slices —
    /// the property the paper's incremental-k reliability methodology
    /// needs ("we fail the same set of links for different values of k").
    ///
    /// # Panics
    /// Panics if `cfg.k == 0` or a perturbation produces an invalid
    /// weight vector (see [`Splicing::try_build`] for the typed error).
    pub fn build(g: &Graph, cfg: &SplicingConfig, seed: u64) -> Splicing {
        Splicing::build_with_telemetry(g, cfg, seed, None)
    }

    /// [`Splicing::build`], returning a typed [`WeightError`] instead of
    /// panicking when a perturbation yields NaN/non-positive weights.
    pub fn try_build(g: &Graph, cfg: &SplicingConfig, seed: u64) -> Result<Splicing, WeightError> {
        Splicing::try_build_with_telemetry(g, cfg, seed, None)
    }

    /// [`Splicing::build`] with optional per-slice SPF timing and arena
    /// state-size accounting.
    ///
    /// Telemetry is observation only: the perturbation RNG streams are
    /// untouched, so the resulting slices are bit-identical to an
    /// untimed build with the same seed.
    pub fn build_with_telemetry(
        g: &Graph,
        cfg: &SplicingConfig,
        seed: u64,
        telemetry: Option<&SpfTelemetry>,
    ) -> Splicing {
        match Splicing::try_build_with_telemetry(g, cfg, seed, telemetry) {
            Ok(sp) => sp,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Splicing::build_with_telemetry`] with weight validation surfaced
    /// as a typed error. Each slice is produced by the configured
    /// [`crate::strategy::SliceStrategy`]; for the default perturbed-SPF
    /// strategy all k·n destination-rooted Dijkstras share one workspace
    /// and emit directly into the arena, exactly as before the strategy
    /// extraction.
    ///
    /// # Panics
    /// Panics if `cfg.k == 0` (a structural misuse, unlike bad weights
    /// which can arise from data).
    pub fn try_build_with_telemetry(
        g: &Graph,
        cfg: &SplicingConfig,
        seed: u64,
        telemetry: Option<&SpfTelemetry>,
    ) -> Result<Splicing, WeightError> {
        assert!(cfg.k >= 1, "need at least one slice");
        let strategy = cfg.strategy.instance();
        let mut fib = SpliceFib::empty(cfg.k, g.node_count());
        let mut weights = Vec::with_capacity(cfg.k);
        let all_up = EdgeMask::all_up(g.edge_count());
        with_spf_workspace(|ws| -> Result<(), WeightError> {
            for id in 0..cfg.k {
                let w = strategy.slice_weights(g, cfg, id, seed);
                validate_weights(g, &w)?;
                strategy.fill_slice(g, id, seed, &w, &all_up, ws, &mut fib, telemetry);
                weights.push(w);
            }
            Ok(())
        })?;
        if let Some(tel) = telemetry {
            tel.arena_bytes.record(fib.state_bytes() as u64);
        }
        Ok(Splicing {
            k: cfg.k,
            weights: weights.into(),
            fib: Arc::new(fib),
            failed: Arc::new(all_up),
            strategy: cfg.strategy,
            seed,
        })
    }

    /// Build a deployment from explicit per-slice weight vectors — for
    /// callers whose slices come from something other than random
    /// perturbation (e.g. overlay routing metrics, §5's "combine overlay
    /// networks that use independent metrics").
    pub fn from_weight_vectors(g: &Graph, weight_vectors: Vec<Vec<f64>>) -> Splicing {
        match Splicing::try_from_weight_vectors(g, weight_vectors) {
            Ok(sp) => sp,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Splicing::from_weight_vectors`] with weight validation surfaced
    /// as a typed error.
    pub fn try_from_weight_vectors(
        g: &Graph,
        weight_vectors: Vec<Vec<f64>>,
    ) -> Result<Splicing, WeightError> {
        assert!(!weight_vectors.is_empty(), "need at least one slice");
        let mut fib = SpliceFib::empty(weight_vectors.len(), g.node_count());
        with_spf_workspace(|ws| -> Result<(), WeightError> {
            for (id, weights) in weight_vectors.iter().enumerate() {
                assert_eq!(weights.len(), g.edge_count(), "slice {id} weight length");
                validate_weights(g, weights)?;
                splice_routing::spf::spf_fill_arena(g, weights, &mut fib, id, ws, None);
            }
            Ok(())
        })?;
        Ok(Splicing {
            k: weight_vectors.len(),
            weights: weight_vectors.into(),
            fib: Arc::new(fib),
            failed: Arc::new(EdgeMask::all_up(g.edge_count())),
            strategy: StrategyKind::PerturbedSpf,
            seed: 0,
        })
    }

    /// Number of slices.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// A deployment consisting of just the first `k` slices. Because slice
    /// weights are independent of `k`, this is exactly what building with
    /// a smaller `k` would have produced — the incremental-k methodology's
    /// workhorse.
    ///
    /// This is a zero-copy *view*: a k-prefix is literally the first k
    /// planes of the shared arena, so per-trial prefix loops in the
    /// Monte-Carlo experiments cost two `Arc` clones, not a deep copy.
    pub fn prefix(&self, k: usize) -> Splicing {
        assert!(k >= 1 && k <= self.k());
        Splicing {
            k,
            weights: Arc::clone(&self.weights),
            fib: Arc::clone(&self.fib),
            failed: Arc::clone(&self.failed),
            strategy: self.strategy,
            seed: self.seed,
        }
    }

    /// How this deployment's slices were constructed.
    #[inline]
    pub fn strategy(&self) -> StrategyKind {
        self.strategy
    }

    /// The seed the deployment was built from (0 for assembled-from-parts
    /// deployments, whose randomness lived outside the builder).
    #[inline]
    pub fn build_seed(&self) -> u64 {
        self.seed
    }

    /// The cumulative failed-link set this deployment's forwarding state
    /// reflects: all-up after a fresh build, growing as
    /// [`Splicing::repair`] absorbs failure events.
    #[inline]
    pub fn failed_mask(&self) -> &EdgeMask {
        &self.failed
    }

    /// Absorb a topology or weight event by incrementally repairing the
    /// affected slice planes — delta-SPF instead of the k·n full
    /// Dijkstras a rebuild costs.
    ///
    /// The returned deployment starts from a plane-level copy of this
    /// one's arena (two `memcpy`s, no shortest-path work) and rewrites
    /// only the destination columns the event can have touched; every
    /// other column is carried over byte-identical. The result is
    /// provably next-hop-identical to building from scratch on the
    /// post-event topology: distances are repaired exactly and the
    /// deterministic tie-break makes parents a pure function of exact
    /// distances.
    ///
    /// Events stack: repairing an already-repaired splicing composes the
    /// failure masks (see [`Splicing::failed_mask`]).
    ///
    /// # Panics
    /// Panics on an invalid reweight (non-positive/non-finite weight or
    /// out-of-range slice); see [`Splicing::try_repair_with_telemetry`]
    /// for the typed error.
    pub fn repair(&self, g: &Graph, event: &RepairEvent) -> Splicing {
        self.repair_report(g, event).0
    }

    /// [`Splicing::repair`], also returning what the repair did — how
    /// many columns were patched vs proven untouched, and the total
    /// re-relaxed frontier.
    pub fn repair_report(&self, g: &Graph, event: &RepairEvent) -> (Splicing, RepairStats) {
        match self.try_repair_with_telemetry(g, event, None) {
            Ok(pair) => pair,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Splicing::repair_report`] with optional per-plane repair timing
    /// and frontier observations, and weight validation surfaced as a
    /// typed error.
    pub fn try_repair_with_telemetry(
        &self,
        g: &Graph,
        event: &RepairEvent,
        telemetry: Option<&SpfTelemetry>,
    ) -> Result<(Splicing, RepairStats), WeightError> {
        let mut stats = RepairStats::default();
        // The trigger goes into the flight recorder before any plane is
        // touched, so a dump reads trigger-then-repairs in causal order.
        if let Some(flight) = telemetry.and_then(|t| t.flight.as_ref()) {
            let ev = FlightEvent::new("repair_event", event.kind_label());
            let ev = match event {
                RepairEvent::LinkFailure(e) => ev.field("edge", e.index() as u64),
                RepairEvent::LinkSetFailure(es) => ev.field("links", es.len() as u64),
                RepairEvent::NodeFailure(n) => ev.field("node", n.index() as u64),
                RepairEvent::SliceReweight { slice, edge, .. } => ev
                    .field("slice", *slice as u64)
                    .field("edge", edge.index() as u64),
            };
            flight.record(ev);
        }
        match event {
            RepairEvent::LinkFailure(_)
            | RepairEvent::LinkSetFailure(_)
            | RepairEvent::NodeFailure(_) => {
                // The cloned mask doubles as the new-failure dedup set:
                // an edge is newly failed exactly when it is still up,
                // and failing it on sight keeps SRLG-sized sets linear
                // (the old `newly.contains` scan was quadratic).
                let mut mask = (*self.failed).clone();
                let mut newly: Vec<EdgeId> = Vec::new();
                let mut note = |e: EdgeId| {
                    if mask.is_up(e) {
                        mask.fail(e);
                        newly.push(e);
                    }
                };
                match event {
                    RepairEvent::LinkFailure(e) => note(*e),
                    RepairEvent::LinkSetFailure(es) => es.iter().copied().for_each(note),
                    RepairEvent::NodeFailure(n) => {
                        g.neighbors(*n).iter().for_each(|&(_, e)| note(e))
                    }
                    RepairEvent::SliceReweight { .. } => unreachable!(),
                }
                if newly.is_empty() {
                    // No new failures (e.g. re-failing an already-failed
                    // link): nothing in the arena can change, so share
                    // every Arc instead of deep-copying k·n² entries.
                    return Ok((
                        Splicing {
                            k: self.k,
                            weights: Arc::clone(&self.weights),
                            fib: Arc::clone(&self.fib),
                            failed: Arc::clone(&self.failed),
                            strategy: self.strategy,
                            seed: self.seed,
                        },
                        stats,
                    ));
                }
                let mut fib = self.fib.clone_prefix(self.k);
                let strategy = self.strategy.instance();
                with_spf_workspace(|ws| {
                    for slice in 0..self.k {
                        if strategy.supports_delta_repair() {
                            stats.absorb(spf_repair_arena_failures(
                                g,
                                &self.weights[slice],
                                &mut fib,
                                slice,
                                &mask,
                                &newly,
                                ws,
                                telemetry,
                            ));
                        } else {
                            // Masked rebuild: by the determinism
                            // contract this equals what the strategy
                            // would have built on the failed topology,
                            // so stacked repairs compose exactly like
                            // the delta path's.
                            strategy.fill_slice(
                                g,
                                slice,
                                self.seed,
                                &self.weights[slice],
                                &mask,
                                ws,
                                &mut fib,
                                telemetry,
                            );
                            stats.absorb(rebuild_stats(g));
                        }
                    }
                });
                Ok((
                    Splicing {
                        k: self.k,
                        weights: Arc::clone(&self.weights),
                        fib: Arc::new(fib),
                        failed: Arc::new(mask),
                        strategy: self.strategy,
                        seed: self.seed,
                    },
                    stats,
                ))
            }
            RepairEvent::SliceReweight {
                slice,
                edge,
                new_weight,
            } => {
                assert!(
                    *slice < self.k,
                    "slice {slice} out of range (k = {})",
                    self.k
                );
                if !(new_weight.is_finite() && *new_weight > 0.0) {
                    return Err(WeightError::BadWeight {
                        edge: *edge,
                        value: *new_weight,
                    });
                }
                let old_weight = self.weights[*slice][edge.index()];
                let mut weights: Vec<Vec<f64>> = self.weights.to_vec();
                weights[*slice][edge.index()] = *new_weight;
                let mut fib = self.fib.clone_prefix(self.k);
                let strategy = self.strategy.instance();
                with_spf_workspace(|ws| {
                    if strategy.supports_delta_repair() {
                        stats.absorb(spf_repair_arena_reweight(
                            g,
                            &weights[*slice],
                            &mut fib,
                            *slice,
                            &self.failed,
                            *edge,
                            old_weight,
                            ws,
                            telemetry,
                        ));
                    } else {
                        // Only the reweighted slice can have changed;
                        // rebuild it over the unchanged failure mask.
                        strategy.fill_slice(
                            g,
                            *slice,
                            self.seed,
                            &weights[*slice],
                            &self.failed,
                            ws,
                            &mut fib,
                            telemetry,
                        );
                        stats.absorb(rebuild_stats(g));
                    }
                });
                Ok((
                    Splicing {
                        k: self.k,
                        weights: weights.into(),
                        fib: Arc::new(fib),
                        failed: Arc::clone(&self.failed),
                        strategy: self.strategy,
                        seed: self.seed,
                    },
                    stats,
                ))
            }
        }
    }

    /// Absorb a whole batch of repair events in one coalesced pass —
    /// the sustained-churn fast path.
    ///
    /// Semantically this is exactly `events.iter().fold(self, repair)`:
    /// the result is bit-identical to stacking the events one at a time
    /// (property-tested across every strategy). The difference is cost.
    /// Folding runs one delta-SPF pass over every slice *per event*;
    /// the batch path first composes all failures into one mask delta
    /// and dedups reweights per `(slice, edge)`, then runs one failure
    /// pass per slice for the whole union plus one short reweight chain
    /// on just the reweighted slices — and repairs the (disjoint) slice
    /// planes on parallel workers.
    ///
    /// Bit-exactness falls out of the delta-repair invariant: every
    /// pass leaves a plane equal to a masked rebuild at its current
    /// (weights, mask), and the deterministic tie-break makes parents a
    /// pure function of exact distances, so any event order that ends
    /// at the same final (weights, mask) ends at the same bytes.
    ///
    /// An empty or fully-absorbed batch (e.g. re-failing already-failed
    /// links) returns a deployment sharing this one's arena — no copy.
    ///
    /// # Panics
    /// Panics on an invalid reweight (see
    /// [`Splicing::try_repair_batch_with_telemetry`] for the typed
    /// error); the batch is atomic — nothing is applied on error.
    pub fn repair_batch(&self, g: &Graph, events: &[RepairEvent]) -> Splicing {
        self.repair_batch_report(g, events).0
    }

    /// [`Splicing::repair_batch`], also returning the aggregate repair
    /// stats folded across all slices and workers.
    pub fn repair_batch_report(
        &self,
        g: &Graph,
        events: &[RepairEvent],
    ) -> (Splicing, RepairStats) {
        match self.try_repair_batch_with_telemetry(g, events, None) {
            Ok(pair) => pair,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Splicing::repair_batch_report`] with optional telemetry and
    /// reweight validation surfaced as a typed error. On `Err` nothing
    /// has been applied: the batch validates every reweight up front so
    /// it is atomic.
    pub fn try_repair_batch_with_telemetry(
        &self,
        g: &Graph,
        events: &[RepairEvent],
        telemetry: Option<&SpfTelemetry>,
    ) -> Result<(Splicing, RepairStats), WeightError> {
        self.try_repair_batch_recycling(g, events, telemetry, None)
    }

    /// [`Splicing::try_repair_batch_with_telemetry`] with an optional
    /// recycled arena — the mutable-owner path for a long-running
    /// control plane.
    ///
    /// The batch path starts every repair by cloning the current arena
    /// (`clone_prefix`), a `k·n²` allocation per event batch. A daemon
    /// that owns its deployment can instead hand back a *retired* arena
    /// (a superseded snapshot no reader holds anymore): when its shape
    /// matches it is overwritten in place ([`SpliceFib::copy_from`]) and
    /// no allocation happens. A mismatched or absent spare falls back to
    /// the clone — the result is bit-identical either way. A no-op batch
    /// returns the spare unused (dropped), since the result shares this
    /// deployment's arena.
    pub fn try_repair_batch_recycling(
        &self,
        g: &Graph,
        events: &[RepairEvent],
        telemetry: Option<&SpfTelemetry>,
        recycle: Option<SpliceFib>,
    ) -> Result<(Splicing, RepairStats), WeightError> {
        // Validate the whole batch before touching anything.
        for event in events {
            if let RepairEvent::SliceReweight {
                slice,
                edge,
                new_weight,
            } = event
            {
                assert!(
                    *slice < self.k,
                    "slice {slice} out of range (k = {})",
                    self.k
                );
                if !(new_weight.is_finite() && *new_weight > 0.0) {
                    return Err(WeightError::BadWeight {
                        edge: *edge,
                        value: *new_weight,
                    });
                }
            }
        }

        // Coalesce. The cloned mask doubles as the new-failure dedup
        // set (same trick as the single-event path); reweights keep
        // first-occurrence order per slice and only their final value —
        // intermediate values are unobservable in the fold's result.
        let mut mask = (*self.failed).clone();
        let mut newly: Vec<EdgeId> = Vec::new();
        let mut note = |e: EdgeId| {
            if mask.is_up(e) {
                mask.fail(e);
                newly.push(e);
            }
        };
        let mut reweighted: Vec<Vec<EdgeId>> = vec![Vec::new(); self.k];
        let mut final_weights: Option<Vec<Vec<f64>>> = None;
        for event in events {
            match event {
                RepairEvent::LinkFailure(e) => note(*e),
                RepairEvent::LinkSetFailure(es) => es.iter().copied().for_each(&mut note),
                RepairEvent::NodeFailure(n) => g.neighbors(*n).iter().for_each(|&(_, e)| note(e)),
                RepairEvent::SliceReweight {
                    slice,
                    edge,
                    new_weight,
                } => {
                    let w = final_weights.get_or_insert_with(|| self.weights.to_vec());
                    if !reweighted[*slice].contains(edge) {
                        reweighted[*slice].push(*edge);
                    }
                    w[*slice][edge.index()] = *new_weight;
                }
            }
        }

        if let Some(flight) = telemetry.and_then(|t| t.flight.as_ref()) {
            flight.record(
                FlightEvent::new("repair_event", "batch")
                    .field("events", events.len() as u64)
                    .field("links", newly.len() as u64),
            );
        }

        if newly.is_empty() && final_weights.is_none() {
            // Nothing survived coalescing: share everything.
            return Ok((
                Splicing {
                    k: self.k,
                    weights: Arc::clone(&self.weights),
                    fib: Arc::clone(&self.fib),
                    failed: Arc::clone(&self.failed),
                    strategy: self.strategy,
                    seed: self.seed,
                },
                RepairStats::default(),
            ));
        }

        // A slice is dirty when any failure touched the topology (every
        // plane shares the mask) or it was reweighted. Clean planes ride
        // along untouched from the prefix copy.
        let dirty: Vec<usize> = (0..self.k)
            .filter(|&s| !newly.is_empty() || !reweighted[s].is_empty())
            .collect();
        let strategy = self.strategy.instance();
        let seed = self.seed;
        let base_weights: &[Vec<f64>] = &self.weights;
        let finals = final_weights.as_ref();
        let mut fib = match recycle {
            Some(mut spare) if spare.k() == self.k && spare.n() == self.fib.n() => {
                spare.copy_from(&self.fib);
                spare
            }
            _ => self.fib.clone_prefix(self.k),
        };
        let mut stats = RepairStats::default();
        {
            // Per-slice planes are disjoint arena views, so workers can
            // patch their columns concurrently and the "merge" is just
            // handing the borrows back — no copying, no reconciliation.
            let mut planes: Vec<Option<PlaneMut<'_>>> =
                fib.planes_mut().into_iter().map(Some).collect();
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(dirty.len());
            if threads <= 1 {
                with_spf_workspace(|ws| {
                    for &slice in &dirty {
                        let plane = planes[slice].as_mut().expect("each plane taken once");
                        stats.absorb(repair_plane_batched(
                            g,
                            slice,
                            plane,
                            strategy,
                            seed,
                            &base_weights[slice],
                            finals.map_or(&base_weights[slice], |w| &w[slice]),
                            &reweighted[slice],
                            &self.failed,
                            &mask,
                            &newly,
                            ws,
                            telemetry,
                        ));
                    }
                });
            } else {
                // Static round-robin assignment: worker w owns dirty
                // slices w, w+threads, ... — deterministic, and stats
                // fold commutatively so join order is immaterial.
                let mut jobs: Vec<Vec<(usize, PlaneMut<'_>)>> =
                    (0..threads).map(|_| Vec::new()).collect();
                for (i, &slice) in dirty.iter().enumerate() {
                    let plane = planes[slice].take().expect("each plane taken once");
                    jobs[i % threads].push((slice, plane));
                }
                let old_mask: &EdgeMask = &self.failed;
                let new_mask = &mask;
                let newly_ref = &newly;
                let reweighted_ref = &reweighted;
                let per_worker: Vec<RepairStats> = crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = jobs
                        .into_iter()
                        .map(|job| {
                            scope.spawn(move |_| {
                                let mut ws = SpfWorkspace::new();
                                let mut local = RepairStats::default();
                                for (slice, mut plane) in job {
                                    local.absorb(repair_plane_batched(
                                        g,
                                        slice,
                                        &mut plane,
                                        strategy,
                                        seed,
                                        &base_weights[slice],
                                        finals.map_or(&base_weights[slice], |w| &w[slice]),
                                        &reweighted_ref[slice],
                                        old_mask,
                                        new_mask,
                                        newly_ref,
                                        &mut ws,
                                        telemetry,
                                    ));
                                }
                                local
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("repair worker panicked"))
                        .collect()
                })
                .expect("repair worker panicked");
                for s in per_worker {
                    stats.absorb(s);
                }
            }
        }
        Ok((
            Splicing {
                k: self.k,
                weights: match final_weights {
                    Some(w) => w.into(),
                    None => Arc::clone(&self.weights),
                },
                fib: Arc::new(fib),
                failed: if newly.is_empty() {
                    Arc::clone(&self.failed)
                } else {
                    Arc::new(mask)
                },
                strategy: self.strategy,
                seed: self.seed,
            },
            stats,
        ))
    }

    /// The weight vector of `slice`.
    #[inline]
    pub fn weights(&self, slice: usize) -> &[f64] {
        assert!(
            slice < self.k,
            "slice {slice} out of range (k = {})",
            self.k
        );
        &self.weights[slice]
    }

    /// Materialize `slice`'s forwarding state as legacy [`RoutingTables`]
    /// (for serialization and protocol-simulator comparisons). This
    /// allocates; the data plane should read the arena instead.
    pub fn tables(&self, slice: usize) -> RoutingTables {
        assert!(
            slice < self.k,
            "slice {slice} out of range (k = {})",
            self.k
        );
        self.fib.to_tables(slice)
    }

    /// The shared flat FIB arena. Note the arena may hold more planes
    /// than [`Splicing::k`] when `self` is a prefix view — consumers must
    /// bound slice indices by `k()`, not by the arena's plane count.
    #[inline]
    pub fn arena(&self) -> &Arc<SpliceFib> {
        &self.fib
    }

    /// Forwarding-state footprint of this deployment in bytes: `k` planes
    /// of the arena — the measured quantity behind §4.2's "state grows
    /// linearly in k".
    pub fn state_bytes(&self) -> usize {
        self.k * self.fib.plane_bytes()
    }

    /// Logical control-plane state in bytes: what the construction
    /// actually has to disseminate, as accounted by the strategy. For
    /// perturbed-SPF this equals [`Splicing::state_bytes`] (a dense
    /// next-hop matrix per slice); tree splicers carry one parent pair
    /// per node per slice, so this is the O(k·n) number the
    /// state-vs-diversity tradeoff study compares against.
    pub fn logical_state_bytes(&self) -> usize {
        self.k * self.strategy.instance().slice_state_bytes(self.fib.n())
    }

    /// Installed FIB entries across this deployment's `k` slices (the
    /// legacy entry-count state metric).
    pub fn total_state(&self) -> usize {
        self.fib.installed(self.k)
    }

    /// Next hop and outgoing edge of `node` toward `dst` in `slice`.
    #[inline]
    pub fn next_hop(&self, slice: usize, node: NodeId, dst: NodeId) -> Option<(NodeId, EdgeId)> {
        debug_assert!(slice < self.k, "slice {slice} out of range");
        self.fib.lookup(slice, node, dst)
    }

    /// Successor sets toward `dst` using the first `k_prefix` slices,
    /// skipping next hops whose outgoing link is failed in `mask`:
    /// `succ[u]` = distinct usable next hops of `u`.
    ///
    /// This directed structure *is* the spliced graph for destination
    /// `dst` — union of the `k` trees rooted at `dst` (§4.2).
    pub fn successors_toward(
        &self,
        dst: NodeId,
        k_prefix: usize,
        mask: &EdgeMask,
    ) -> Vec<Vec<NodeId>> {
        assert!(k_prefix >= 1 && k_prefix <= self.k());
        let n = self.fib.n();
        let mut succ: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for slice in 0..k_prefix {
            for (u, s) in succ.iter_mut().enumerate() {
                if let Some((nh, e)) = self.fib.lookup(slice, NodeId(u as u32), dst) {
                    if mask.is_up(e) && !s.contains(&nh) {
                        s.push(nh);
                    }
                }
            }
        }
        succ
    }

    /// Which nodes can still deliver to `dst` through *some* sequence of
    /// slice choices, using the first `k_prefix` slices under `mask`.
    pub fn reachable_to(&self, dst: NodeId, k_prefix: usize, mask: &EdgeMask) -> Vec<bool> {
        let succ = self.successors_toward(dst, k_prefix, mask);
        reverse_reachable(&succ, dst)
    }

    /// Count ordered `(s, t)` pairs (s ≠ t) that splicing with the first
    /// `k_prefix` slices *cannot* connect under `mask` — the quantity
    /// Figure 3 plots (before normalization). Uses the *directed*
    /// (operationally exact) semantics; see [`Self::union_disconnected_pairs`]
    /// for the paper's union-graph accounting.
    pub fn disconnected_pairs(&self, k_prefix: usize, mask: &EdgeMask) -> usize {
        let n = self.fib.n();
        let mut disconnected = 0;
        for t in 0..n as u32 {
            let reach = self.reachable_to(NodeId(t), k_prefix, mask);
            disconnected += reach.iter().filter(|&&r| !r).count();
            // `reach[t]` is always true and t==t is not a pair, so the
            // count above is exactly over s != t.
        }
        disconnected
    }

    /// Which nodes are connected to `dst` in the **undirected union** of
    /// the first `k_prefix` trees rooted at `dst`, minus failed edges.
    ///
    /// This is the spliced-graph formulation the paper's §4.2 and
    /// Theorem A.1 analyze ("taking the union of k link-perturbed
    /// shortest-path trees", "the connectivity of H"): tree edges form an
    /// undirected subgraph whose connectivity is compared against the
    /// full graph's. It upper-bounds what hop-by-hop forwarding can
    /// achieve (see [`Self::reachable_to`] for the directed semantics).
    pub fn union_reachable_to(&self, dst: NodeId, k_prefix: usize, mask: &EdgeMask) -> Vec<bool> {
        assert!(k_prefix >= 1 && k_prefix <= self.k());
        let n = self.fib.n();
        // Adjacency restricted to surviving union-tree edges.
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for slice in 0..k_prefix {
            for u in 0..n {
                if let Some((parent, e)) = self.fib.lookup(slice, NodeId(u as u32), dst) {
                    if mask.is_up(e) {
                        adj[u].push(parent);
                        adj[parent.index()].push(NodeId(u as u32));
                    }
                }
            }
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[dst.index()] = true;
        queue.push_back(dst);
        while let Some(v) = queue.pop_front() {
            for &w in &adj[v.index()] {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
        seen
    }

    /// [`Self::disconnected_pairs`] under the paper's undirected
    /// union-graph semantics.
    pub fn union_disconnected_pairs(&self, k_prefix: usize, mask: &EdgeMask) -> usize {
        let n = self.fib.n();
        let mut disconnected = 0;
        for t in 0..n as u32 {
            let reach = self.union_reachable_to(NodeId(t), k_prefix, mask);
            disconnected += reach.iter().filter(|&&r| !r).count();
        }
        disconnected
    }

    /// The set of physical edges used by any of the first `k_prefix`
    /// slices' trees toward any destination — the "spliced graph" of
    /// §4.2's union formulation, as an edge indicator.
    pub fn union_edges(&self, k_prefix: usize) -> Vec<bool> {
        assert!(k_prefix >= 1 && k_prefix <= self.k());
        let m = self.weights[0].len();
        let n = self.fib.n();
        let mut used = vec![false; m];
        for slice in 0..k_prefix {
            for u in 0..n {
                let (_, out_edges) = self.fib.row(slice, NodeId(u as u32));
                for &e in out_edges {
                    if e != splice_routing::NO_ROUTE {
                        used[e as usize] = true;
                    }
                }
            }
        }
        used
    }

    /// Number of *distinct* simple paths is exponential to enumerate; as a
    /// tractable diversity proxy, count the distinct (node, next-hop)
    /// pairs toward `dst` across the first `k_prefix` slices.
    pub fn diversity_toward(&self, dst: NodeId, k_prefix: usize) -> usize {
        let mask = EdgeMask::all_up(self.weights[0].len());
        self.successors_toward(dst, k_prefix, &mask)
            .iter()
            .map(|s| s.len())
            .sum()
    }
}

/// The [`RepairStats`] a masked full rebuild of one plane reports: every
/// column rewritten, nothing provably skippable, and the frontier counted
/// once per plane (one global pass recomputes the whole plane, unlike the
/// delta engine's per-column frontiers).
fn rebuild_stats(g: &Graph) -> RepairStats {
    RepairStats {
        patched_columns: g.node_count(),
        skipped_columns: 0,
        frontier_nodes: g.node_count(),
    }
}

/// Repair one plane against a coalesced batch: chain the slice's deduped
/// reweights (each pass exact, under the pre-batch mask), then one
/// failure pass for the whole union under the final mask. Rebuild-only
/// strategies collapse to a single masked rebuild at the final state.
///
/// `final_weights` must already hold every reweight's final value (it
/// aliases `base_weights` when the slice was not reweighted), and
/// `new_mask` must equal `old_mask` plus `newly_failed`.
#[allow(clippy::too_many_arguments)]
fn repair_plane_batched(
    g: &Graph,
    slice: usize,
    plane: &mut PlaneMut<'_>,
    strategy: &dyn SliceStrategy,
    seed: u64,
    base_weights: &[f64],
    final_weights: &[f64],
    reweighted: &[EdgeId],
    old_mask: &EdgeMask,
    new_mask: &EdgeMask,
    newly_failed: &[EdgeId],
    ws: &mut SpfWorkspace,
    telemetry: Option<&SpfTelemetry>,
) -> RepairStats {
    let mut stats = RepairStats::default();
    if !strategy.supports_delta_repair() {
        // One masked rebuild at the batch's final (weights, mask) — by
        // the determinism contract this equals folding the events.
        strategy.fill_plane(
            g,
            slice,
            seed,
            final_weights,
            new_mask,
            ws,
            plane,
            telemetry,
        );
        stats.absorb(rebuild_stats(g));
        return stats;
    }
    if !reweighted.is_empty() {
        // Walk the cumulative weight vector from pre-batch to final,
        // one exact delta pass per reweighted edge. The mask stays the
        // pre-batch one; failures land in a single pass afterwards.
        let mut cur = base_weights.to_vec();
        for &edge in reweighted {
            let old = cur[edge.index()];
            cur[edge.index()] = final_weights[edge.index()];
            stats.absorb(spf_repair_plane_reweight(
                g, &cur, plane, slice, old_mask, edge, old, ws, telemetry,
            ));
        }
    }
    if !newly_failed.is_empty() {
        stats.absorb(spf_repair_plane_failures(
            g,
            final_weights,
            plane,
            slice,
            new_mask,
            newly_failed,
            ws,
            telemetry,
        ));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_graph::graph::from_edges;
    use splice_topology::abilene::abilene;

    fn diamond() -> Graph {
        from_edges(4, &[(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 2.0)])
    }

    #[test]
    fn slice_zero_is_plain_shortest_paths() {
        let g = diamond();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(3, 0.0, 3.0), 1);
        assert_eq!(sp.weights(0), g.base_weights());
        assert_eq!(
            sp.next_hop(0, NodeId(0), NodeId(3)).map(|(n, _)| n),
            Some(NodeId(1))
        );
    }

    #[test]
    fn k_grows_monotonically_in_reachability() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(5, 0.0, 3.0), 7);
        // Fail a couple of links; more slices can only help.
        let mask = EdgeMask::from_failed(g.edge_count(), &[EdgeId(0), EdgeId(5)]);
        let mut last = usize::MAX;
        for k in 1..=5 {
            let d = sp.disconnected_pairs(k, &mask);
            assert!(d <= last, "k={k}: {d} > {last}");
            last = d;
        }
    }

    #[test]
    fn prefix_slices_stable_under_larger_k() {
        // Slice i's weights must not depend on k (incremental methodology).
        let g = abilene().graph();
        let cfg3 = SplicingConfig::degree_based(3, 0.0, 3.0);
        let cfg5 = SplicingConfig::degree_based(5, 0.0, 3.0);
        let s3 = Splicing::build(&g, &cfg3, 42);
        let s5 = Splicing::build(&g, &cfg5, 42);
        for i in 0..3 {
            assert_eq!(s3.weights(i), s5.weights(i));
        }
    }

    #[test]
    fn no_failures_everyone_reaches() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(2, 0.0, 3.0), 3);
        let mask = EdgeMask::all_up(g.edge_count());
        assert_eq!(sp.disconnected_pairs(1, &mask), 0);
        assert_eq!(sp.disconnected_pairs(2, &mask), 0);
    }

    #[test]
    fn splicing_beats_single_slice_on_diamond() {
        let g = diamond();
        // Uniform strength 3 gives slice 1 a decent chance of routing 0->3
        // via 2; find a seed where the slices differ, then kill slice 0's
        // path and verify splicing still delivers.
        let cfg = SplicingConfig::uniform(4, 3.0);
        // Seed chosen so at least one perturbed slice routes 0 -> 3 via 2.
        let sp = Splicing::build(&g, &cfg, 0);
        // Fail edge 0 (0-1). Slice 0's next hop from 0 is gone.
        let mask = EdgeMask::from_failed(4, &[EdgeId(0)]);
        let reach = sp.reachable_to(NodeId(3), 4, &mask);
        assert!(
            reach[0],
            "0 should reach 3 via the 0-2-3 segment in some slice"
        );
    }

    #[test]
    fn successors_respect_mask() {
        let g = diamond();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(1, 0.0, 3.0), 1);
        let up = EdgeMask::all_up(4);
        let succ = sp.successors_toward(NodeId(3), 1, &up);
        assert_eq!(succ[0], vec![NodeId(1)]);
        let down = EdgeMask::from_failed(4, &[EdgeId(0)]);
        let succ2 = sp.successors_toward(NodeId(3), 1, &down);
        assert!(succ2[0].is_empty(), "failed out-edge removes the successor");
    }

    #[test]
    fn union_edges_superset_of_slice0_tree() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(3, 0.0, 3.0), 9);
        let u1: usize = sp.union_edges(1).iter().filter(|&&b| b).count();
        let u3: usize = sp.union_edges(3).iter().filter(|&&b| b).count();
        assert!(u3 >= u1);
        assert!(u3 <= g.edge_count());
    }

    #[test]
    fn diversity_grows_with_k() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(5, 0.0, 3.0), 5);
        let d1 = sp.diversity_toward(NodeId(0), 1);
        let d5 = sp.diversity_toward(NodeId(0), 5);
        assert!(d5 > d1, "expected diversity growth: {d1} -> {d5}");
        // With one slice every node has exactly one next hop (n-1 pairs).
        assert_eq!(d1, g.node_count() - 1);
    }

    #[test]
    fn union_reachability_is_superset_of_directed() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(5, 0.0, 3.0), 7);
        let mask = EdgeMask::from_failed(g.edge_count(), &[EdgeId(1), EdgeId(6), EdgeId(9)]);
        for t in g.nodes() {
            let directed = sp.reachable_to(t, 5, &mask);
            let union = sp.union_reachable_to(t, 5, &mask);
            for i in 0..g.node_count() {
                assert!(
                    !directed[i] || union[i],
                    "directed reaches {i} toward {t:?} but union does not"
                );
            }
        }
        assert!(sp.union_disconnected_pairs(5, &mask) <= sp.disconnected_pairs(5, &mask));
    }

    #[test]
    fn union_disconnection_monotone_in_k() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(5, 0.0, 3.0), 7);
        let mask = EdgeMask::from_failed(g.edge_count(), &[EdgeId(0), EdgeId(5)]);
        let mut last = usize::MAX;
        for k in 1..=5 {
            let d = sp.union_disconnected_pairs(k, &mask);
            assert!(d <= last);
            last = d;
        }
    }

    #[test]
    fn union_no_failures_fully_connected() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(2, 0.0, 3.0), 1);
        let mask = EdgeMask::all_up(g.edge_count());
        assert_eq!(sp.union_disconnected_pairs(1, &mask), 0);
    }

    #[test]
    fn seeds_change_slices() {
        let g = abilene().graph();
        let cfg = SplicingConfig::degree_based(2, 0.0, 3.0);
        let a = Splicing::build(&g, &cfg, 1);
        let b = Splicing::build(&g, &cfg, 2);
        assert_ne!(a.weights(1), b.weights(1));
    }

    #[test]
    fn prefix_is_a_zero_copy_view() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(5, 0.0, 3.0), 7);
        let view = sp.prefix(2);
        assert_eq!(view.k(), 2);
        // Same arena, not a deep clone.
        assert!(Arc::ptr_eq(view.arena(), sp.arena()));
        // Lookups agree with the parent deployment on the shared planes.
        for slice in 0..2 {
            for u in g.nodes() {
                for t in g.nodes() {
                    assert_eq!(view.next_hop(slice, u, t), sp.next_hop(slice, u, t));
                }
            }
        }
        // View-level state accounting stays k-proportional.
        assert_eq!(view.state_bytes() * 5, sp.state_bytes() * 2);
    }

    #[test]
    fn arena_agrees_with_legacy_tables() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(3, 0.0, 3.0), 11);
        for slice in 0..sp.k() {
            let tables = sp.tables(slice);
            for u in g.nodes() {
                for t in g.nodes() {
                    assert_eq!(sp.next_hop(slice, u, t), tables.fib(u).entries[t.index()]);
                }
            }
        }
        assert_eq!(
            sp.total_state(),
            (0..sp.k())
                .map(|s| sp.tables(s).total_state())
                .sum::<usize>()
        );
        assert_eq!(
            sp.state_bytes(),
            sp.k() * 2 * g.node_count() * g.node_count() * 4
        );
    }

    #[test]
    fn bad_weights_yield_typed_error() {
        use splice_graph::WeightError;
        let g = diamond();
        let err =
            Splicing::try_from_weight_vectors(&g, vec![vec![1.0, f64::NAN, 2.0, 2.0]]).unwrap_err();
        assert!(matches!(err, WeightError::BadWeight { .. }));
        // The panicking entry point surfaces the same message.
        let caught = std::panic::catch_unwind(|| {
            Splicing::from_weight_vectors(&g, vec![vec![1.0, -3.0, 2.0, 2.0]])
        });
        assert!(caught.is_err());
        // Good vectors still build.
        assert!(Splicing::try_build(&g, &SplicingConfig::uniform(2, 1.0), 5).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn zero_k_rejected() {
        let g = diamond();
        Splicing::build(&g, &SplicingConfig::degree_based(0, 0.0, 3.0), 1);
    }

    /// Every (slice, router, dst) next hop of `sp` equals a from-scratch
    /// masked Dijkstra on `sp`'s own weight vectors — the repair ≡ rebuild
    /// oracle.
    fn assert_matches_masked_rebuild(g: &Graph, sp: &Splicing, mask: &EdgeMask) {
        with_spf_workspace(|ws| {
            for slice in 0..sp.k() {
                for t in g.nodes() {
                    ws.run(g, t, sp.weights(slice), Some(mask));
                    for u in g.nodes() {
                        assert_eq!(
                            sp.next_hop(slice, u, t),
                            ws.parents()[u.index()],
                            "slice {slice} {u:?}->{t:?}"
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn repair_link_failure_matches_rebuild() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(3, 0.0, 3.0), 11);
        let (repaired, stats) = sp.repair_report(&g, &RepairEvent::LinkFailure(EdgeId(0)));
        assert!(stats.patched_columns > 0, "failure must touch some columns");
        assert_eq!(repaired.failed_mask().failed_count(), 1);
        assert!(repaired.failed_mask().is_failed(EdgeId(0)));
        assert_matches_masked_rebuild(&g, &repaired, repaired.failed_mask());
        // The original deployment is untouched.
        assert_eq!(sp.failed_mask().failed_count(), 0);
        assert_matches_masked_rebuild(&g, &sp, &EdgeMask::all_up(g.edge_count()));
    }

    #[test]
    fn repair_events_stack_and_match_batch_failure() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(3, 0.0, 3.0), 7);
        let stacked = sp
            .repair(&g, &RepairEvent::LinkFailure(EdgeId(0)))
            .repair(&g, &RepairEvent::LinkFailure(EdgeId(5)));
        let batch = sp.repair(&g, &RepairEvent::LinkSetFailure(vec![EdgeId(0), EdgeId(5)]));
        assert_eq!(stacked.failed_mask().failed_count(), 2);
        assert_eq!(
            stacked.failed_mask().failed_edges().collect::<Vec<_>>(),
            batch.failed_mask().failed_edges().collect::<Vec<_>>()
        );
        assert_matches_masked_rebuild(&g, &stacked, stacked.failed_mask());
        assert_matches_masked_rebuild(&g, &batch, batch.failed_mask());
        // Re-failing an already-failed link is the identity.
        let (again, stats) = stacked.repair_report(&g, &RepairEvent::LinkFailure(EdgeId(5)));
        assert_eq!(stats, RepairStats::default());
        assert_eq!(again.failed_mask().failed_count(), 2);
    }

    #[test]
    fn repair_node_failure_fails_all_incident_links() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(2, 0.0, 3.0), 3);
        let victim = NodeId(4);
        let repaired = sp.repair(&g, &RepairEvent::NodeFailure(victim));
        assert_eq!(
            repaired.failed_mask().failed_count(),
            g.neighbors(victim).len()
        );
        for &(_, e) in g.neighbors(victim) {
            assert!(repaired.failed_mask().is_failed(e));
        }
        assert_matches_masked_rebuild(&g, &repaired, repaired.failed_mask());
    }

    #[test]
    fn repair_reweight_matches_rebuild_and_leaves_other_slices() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(3, 0.0, 3.0), 5);
        let edge = EdgeId(2);
        let new_weight = sp.weights(1)[edge.index()] * 10.0;
        let repaired = sp.repair(
            &g,
            &RepairEvent::SliceReweight {
                slice: 1,
                edge,
                new_weight,
            },
        );
        assert_eq!(repaired.weights(1)[edge.index()], new_weight);
        assert_eq!(repaired.weights(0), sp.weights(0));
        assert_eq!(repaired.weights(2), sp.weights(2));
        assert_matches_masked_rebuild(&g, &repaired, &EdgeMask::all_up(g.edge_count()));
        // And the decrease direction.
        let cheaper = repaired.repair(
            &g,
            &RepairEvent::SliceReweight {
                slice: 1,
                edge,
                new_weight: new_weight / 50.0,
            },
        );
        assert_matches_masked_rebuild(&g, &cheaper, &EdgeMask::all_up(g.edge_count()));
    }

    #[test]
    fn repair_rejects_bad_reweight() {
        let g = diamond();
        let sp = Splicing::build(&g, &SplicingConfig::uniform(2, 1.0), 1);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = sp
                .try_repair_with_telemetry(
                    &g,
                    &RepairEvent::SliceReweight {
                        slice: 1,
                        edge: EdgeId(0),
                        new_weight: bad,
                    },
                    None,
                )
                .unwrap_err();
            assert!(matches!(err, WeightError::BadWeight { .. }), "{bad}");
        }
        let caught = std::panic::catch_unwind(|| {
            sp.repair(
                &g,
                &RepairEvent::SliceReweight {
                    slice: 0,
                    edge: EdgeId(0),
                    new_weight: 0.0,
                },
            )
        });
        assert!(caught.is_err());
    }

    #[test]
    fn repair_records_trigger_and_planes_in_flight_order() {
        use splice_routing::spf::{FlightRecorder, Registry};

        let g = diamond();
        let sp = Splicing::build(&g, &SplicingConfig::uniform(2, 1.0), 1);
        let rec = FlightRecorder::new(32);
        let tel = SpfTelemetry::register(&Registry::new()).with_flight(rec.clone());
        let (repaired, _) = sp
            .try_repair_with_telemetry(&g, &RepairEvent::LinkFailure(EdgeId(0)), Some(&tel))
            .unwrap();
        let rebuilt = sp.repair(&g, &RepairEvent::LinkFailure(EdgeId(0)));
        for slice in 0..repaired.k() {
            assert_eq!(repaired.tables(slice), rebuilt.tables(slice));
        }
        let events = rec.snapshot();
        assert_eq!(events[0].event.kind, "repair_event");
        assert_eq!(events[0].event.name, "link_failure");
        assert_eq!(events[0].event.fields[0], ("edge", 0));
        // One per-plane repair event per slice follows the trigger.
        let planes = events
            .iter()
            .filter(|e| e.event.kind == "repair" && e.event.name == "patch_failures")
            .count();
        assert_eq!(planes, 2);
    }

    #[test]
    fn kind_labels_name_every_event_class() {
        assert_eq!(
            RepairEvent::LinkFailure(EdgeId(0)).kind_label(),
            "link_failure"
        );
        assert_eq!(
            RepairEvent::LinkSetFailure(vec![EdgeId(0)]).kind_label(),
            "link_set_failure"
        );
        assert_eq!(
            RepairEvent::NodeFailure(NodeId(0)).kind_label(),
            "node_failure"
        );
        assert_eq!(
            RepairEvent::SliceReweight {
                slice: 0,
                edge: EdgeId(0),
                new_weight: 1.0
            }
            .kind_label(),
            "slice_reweight"
        );
    }

    #[test]
    fn repair_works_on_prefix_views() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(5, 0.0, 3.0), 9);
        let repaired = sp
            .prefix(2)
            .repair(&g, &RepairEvent::LinkFailure(EdgeId(3)));
        assert_eq!(repaired.k(), 2);
        assert_matches_masked_rebuild(&g, &repaired, repaired.failed_mask());
    }

    #[test]
    fn noop_repair_shares_the_arena_without_spf_work() {
        use splice_routing::spf::{Registry, SpfTelemetry};

        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(3, 0.0, 3.0), 7);
        let failed = sp.repair(&g, &RepairEvent::LinkFailure(EdgeId(4)));
        let tel = SpfTelemetry::register(&Registry::new());
        let (again, stats) = failed
            .try_repair_with_telemetry(&g, &RepairEvent::LinkFailure(EdgeId(4)), Some(&tel))
            .unwrap();
        // Re-failing a failed link is free: no arena copy, no SPF work.
        assert_eq!(stats, RepairStats::default());
        assert!(Arc::ptr_eq(again.arena(), failed.arena()));
        assert_eq!(tel.spf_repair_seconds.count(), 0);
        assert_eq!(tel.spf_seconds.count(), 0);
    }

    /// Assert two deployments are bit-identical: same mask, same weight
    /// bits, same arena bytes on every plane.
    fn assert_same_deployment(g: &Graph, a: &Splicing, b: &Splicing) {
        assert_eq!(a.k(), b.k());
        assert_eq!(
            a.failed_mask().failed_edges().collect::<Vec<_>>(),
            b.failed_mask().failed_edges().collect::<Vec<_>>()
        );
        for slice in 0..a.k() {
            let (wa, wb) = (a.weights(slice), b.weights(slice));
            assert_eq!(wa.len(), wb.len());
            for (x, y) in wa.iter().zip(wb) {
                assert_eq!(x.to_bits(), y.to_bits(), "slice {slice} weight bits");
            }
            for u in g.nodes() {
                for t in g.nodes() {
                    assert_eq!(
                        a.next_hop(slice, u, t),
                        b.next_hop(slice, u, t),
                        "slice {slice} {u:?}->{t:?}"
                    );
                }
            }
        }
    }

    fn mixed_batch(sp: &Splicing) -> Vec<RepairEvent> {
        vec![
            RepairEvent::LinkFailure(EdgeId(0)),
            RepairEvent::SliceReweight {
                slice: 1,
                edge: EdgeId(2),
                new_weight: sp.weights(1)[2] * 4.0,
            },
            RepairEvent::LinkSetFailure(vec![EdgeId(5), EdgeId(0)]),
            RepairEvent::NodeFailure(NodeId(3)),
            // Reweight the same (slice, edge) twice: only the final
            // value may matter.
            RepairEvent::SliceReweight {
                slice: 1,
                edge: EdgeId(2),
                new_weight: sp.weights(1)[2] * 0.5,
            },
            RepairEvent::SliceReweight {
                slice: 2,
                edge: EdgeId(7),
                new_weight: sp.weights(2)[7] * 2.5,
            },
            RepairEvent::LinkFailure(EdgeId(5)),
        ]
    }

    #[test]
    fn repair_batch_matches_sequential_fold() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(3, 0.0, 3.0), 11);
        let events = mixed_batch(&sp);
        let folded = events.iter().fold(sp.clone(), |acc, ev| acc.repair(&g, ev));
        let (batched, stats) = sp.repair_batch_report(&g, &events);
        assert!(stats.patched_columns > 0);
        assert_same_deployment(&g, &batched, &folded);
        assert_matches_masked_rebuild(&g, &batched, batched.failed_mask());
        // And batches stack like single events do.
        let more = batched.repair_batch(&g, &[RepairEvent::LinkFailure(EdgeId(9))]);
        assert_same_deployment(
            &g,
            &more,
            &folded.repair(&g, &RepairEvent::LinkFailure(EdgeId(9))),
        );
    }

    #[test]
    fn repair_batch_parallel_on_many_slices_matches_rebuild() {
        // k = 8 so the scoped-thread path actually fans out on multicore
        // CI; the oracle is a from-scratch masked rebuild per plane.
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(8, 0.0, 3.0), 13);
        let events = vec![
            RepairEvent::LinkFailure(EdgeId(1)),
            RepairEvent::SliceReweight {
                slice: 6,
                edge: EdgeId(3),
                new_weight: sp.weights(6)[3] * 3.0,
            },
            RepairEvent::LinkFailure(EdgeId(8)),
        ];
        let batched = sp.repair_batch(&g, &events);
        assert_eq!(batched.failed_mask().failed_count(), 2);
        assert_matches_masked_rebuild(&g, &batched, batched.failed_mask());
    }

    #[test]
    fn empty_and_absorbed_batches_share_state() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(2, 0.0, 3.0), 3);
        let (same, stats) = sp.repair_batch_report(&g, &[]);
        assert_eq!(stats, RepairStats::default());
        assert!(Arc::ptr_eq(same.arena(), sp.arena()));
        // A batch fully absorbed by the current mask is also free.
        let failed = sp.repair(&g, &RepairEvent::LinkFailure(EdgeId(2)));
        let (again, stats) = failed.repair_batch_report(
            &g,
            &[
                RepairEvent::LinkFailure(EdgeId(2)),
                RepairEvent::LinkSetFailure(vec![EdgeId(2)]),
            ],
        );
        assert_eq!(stats, RepairStats::default());
        assert!(Arc::ptr_eq(again.arena(), failed.arena()));
    }

    #[test]
    fn repair_batch_rejects_bad_reweight_atomically() {
        let g = diamond();
        let sp = Splicing::build(&g, &SplicingConfig::uniform(2, 1.0), 1);
        let err = sp
            .try_repair_batch_with_telemetry(
                &g,
                &[
                    RepairEvent::LinkFailure(EdgeId(0)),
                    RepairEvent::SliceReweight {
                        slice: 1,
                        edge: EdgeId(1),
                        new_weight: f64::NAN,
                    },
                ],
                None,
            )
            .unwrap_err();
        assert!(matches!(err, WeightError::BadWeight { .. }));
        // Atomic: the valid failure earlier in the batch was not applied.
        assert_eq!(sp.failed_mask().failed_count(), 0);
    }

    #[test]
    fn repair_batch_matches_fold_for_rebuild_strategies() {
        let g = abilene().graph();
        for strategy in [
            StrategyKind::RandomSpanningTree,
            StrategyKind::LowStretchTree,
        ] {
            let config = SplicingConfig::degree_based(3, 0.0, 3.0).with_strategy(strategy);
            let sp = Splicing::build(&g, &config, 17);
            let events = mixed_batch(&sp);
            let folded = events.iter().fold(sp.clone(), |acc, ev| acc.repair(&g, ev));
            let batched = sp.repair_batch(&g, &events);
            assert_same_deployment(&g, &batched, &folded);
        }
    }
}
