//! Property-based tests for the splicing primitive.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_core::header::{bits_per_hop, CounterHeader, ForwardingBits};
use splice_core::perturb::{DegreeBased, Perturbation, TheoremA1, Uniform};
use splice_core::recovery::HeaderStrategy;
use splice_core::slices::{RepairEvent, Splicing, SplicingConfig};
use splice_graph::graph::from_edges;
use splice_graph::{EdgeId, EdgeMask, SpfWorkspace};
// Ring-backbone graphs (always initially connected) from the shared
// testkit strategy library.
use splice_testkit::strategies::arb_backbone_graph as arb_graph;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Perturbed weights never fall below base and respect the Weight
    /// budget: `L <= L' < L·(1 + W)` with `W <= b` (degree-based)
    /// or `W = strength` (uniform).
    #[test]
    fn perturbation_bounds(g in arb_graph(), seed in any::<u64>(),
                           strength in 0.0f64..5.0, b in 0.0f64..5.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = Uniform::new(strength).perturb(&g, &mut rng);
        for (i, e) in g.edges().iter().enumerate() {
            prop_assert!(u[i] >= e.weight);
            prop_assert!(u[i] < e.weight * (1.0 + strength) + 1e-9);
        }
        let d = DegreeBased::new(0.0, b).perturb(&g, &mut rng);
        for (i, e) in g.edges().iter().enumerate() {
            prop_assert!(d[i] >= e.weight);
            prop_assert!(d[i] < e.weight * (1.0 + b) + 1e-9);
        }
    }

    /// Slice i is identical whether built as part of a k-slice or a
    /// k'-slice deployment (k' > k): the incremental-k methodology.
    #[test]
    fn slice_prefix_stability(g in arb_graph(), seed in any::<u64>()) {
        let small = Splicing::build(&g, &SplicingConfig::degree_based(3, 0.0, 3.0), seed);
        let large = Splicing::build(&g, &SplicingConfig::degree_based(6, 0.0, 3.0), seed);
        for i in 0..3 {
            prop_assert_eq!(small.weights(i), large.weights(i));
        }
        // prefix() equals building small directly.
        let prefix = large.prefix(3);
        for i in 0..3 {
            prop_assert_eq!(prefix.weights(i), small.weights(i));
        }
    }

    /// The flat arena is bit-identical to the legacy per-slice
    /// `RoutingTables` pipeline: for every (slice, router, dst) the arena
    /// lookup equals what `spf_from_weights` installs from the same
    /// weight vector.
    #[test]
    fn arena_matches_legacy_tables(g in arb_graph(), seed in any::<u64>(), k in 1usize..=5) {
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), seed);
        for slice in 0..k {
            let legacy = splice_routing::spf::spf_from_weights(&g, sp.weights(slice));
            for u in g.nodes() {
                for t in g.nodes() {
                    prop_assert_eq!(
                        sp.next_hop(slice, u, t),
                        legacy.fib(u).entries[t.index()],
                        "slice {} {:?} -> {:?}", slice, u, t
                    );
                }
            }
            prop_assert_eq!(&sp.tables(slice), &legacy);
        }
    }

    /// A k-prefix view shares the arena (zero-copy) yet forwards exactly
    /// like an independently built k-slice splicing.
    #[test]
    fn prefix_views_match_smaller_builds(g in arb_graph(), seed in any::<u64>(), k in 1usize..=4) {
        let big = Splicing::build(&g, &SplicingConfig::degree_based(5, 0.0, 3.0), seed);
        let view = big.prefix(k);
        prop_assert!(std::sync::Arc::ptr_eq(view.arena(), big.arena()));
        let rebuilt = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), seed);
        prop_assert_eq!(view.k(), rebuilt.k());
        for slice in 0..k {
            prop_assert_eq!(view.weights(slice), rebuilt.weights(slice));
            for u in g.nodes() {
                for t in g.nodes() {
                    prop_assert_eq!(
                        view.next_hop(slice, u, t),
                        rebuilt.next_hop(slice, u, t)
                    );
                }
            }
        }
        prop_assert_eq!(view.total_state(), rebuilt.total_state());
        prop_assert_eq!(view.state_bytes(), rebuilt.state_bytes());
    }

    /// With no failures, every pair is spliced-reachable at every k,
    /// under both semantics (the backbone ring keeps the graph connected).
    #[test]
    fn clean_network_fully_reachable(g in arb_graph(), seed in any::<u64>()) {
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(4, 0.0, 3.0), seed);
        let mask = EdgeMask::all_up(g.edge_count());
        for k in 1..=4 {
            prop_assert_eq!(sp.disconnected_pairs(k, &mask), 0);
            prop_assert_eq!(sp.union_disconnected_pairs(k, &mask), 0);
        }
    }

    /// The tentpole invariant: repairing a deployment after an event is
    /// next-hop-identical, for every (slice, router, dst), to rebuilding
    /// every slice plane from scratch on the post-event topology.
    #[test]
    fn repair_equals_rebuild(
        g in arb_graph(),
        seed in any::<u64>(),
        k in 1usize..=5,
        fail_sels in proptest::collection::vec(any::<prop::sample::Index>(), 1..=3),
        node_sel in any::<prop::sample::Index>(),
        reweight_sel in any::<prop::sample::Index>(),
        factor in prop_oneof![0.15f64..0.9, 1.2f64..6.0],
        which in 0usize..3,
    ) {
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), seed);
        let event = match which {
            0 => {
                let mut edges: Vec<EdgeId> = fail_sels
                    .iter()
                    .map(|s| EdgeId(s.index(g.edge_count()) as u32))
                    .collect();
                edges.dedup();
                RepairEvent::LinkSetFailure(edges)
            }
            1 => RepairEvent::NodeFailure(
                splice_graph::NodeId(node_sel.index(g.node_count()) as u32),
            ),
            _ => {
                let edge = EdgeId(reweight_sel.index(g.edge_count()) as u32);
                RepairEvent::SliceReweight {
                    slice: k - 1,
                    edge,
                    new_weight: sp.weights(k - 1)[edge.index()] * factor,
                }
            }
        };
        let (repaired, stats) = sp.repair_report(&g, &event);
        // Oracle: fresh masked Dijkstra per (slice, dst) on the repaired
        // deployment's own weights and failure mask.
        let mut ws = SpfWorkspace::new();
        for slice in 0..k {
            for t in g.nodes() {
                ws.run(&g, t, repaired.weights(slice), Some(repaired.failed_mask()));
                for u in g.nodes() {
                    prop_assert_eq!(
                        repaired.next_hop(slice, u, t),
                        ws.parents()[u.index()],
                        "slice {} {:?} -> {:?} after {:?}", slice, u, t, &event
                    );
                }
            }
        }
        // Stats accounting stays within the arena's bounds.
        prop_assert!(stats.patched_columns + stats.skipped_columns <= k * g.node_count());
    }

    /// Stacked repairs compose: two successive link failures equal the
    /// batch failure of both links, plane for plane.
    #[test]
    fn stacked_repairs_compose(
        g in arb_graph(),
        seed in any::<u64>(),
        a_sel in any::<prop::sample::Index>(),
        b_sel in any::<prop::sample::Index>(),
    ) {
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(3, 0.0, 3.0), seed);
        let a = EdgeId(a_sel.index(g.edge_count()) as u32);
        let b = EdgeId(b_sel.index(g.edge_count()) as u32);
        let stacked = sp
            .repair(&g, &RepairEvent::LinkFailure(a))
            .repair(&g, &RepairEvent::LinkFailure(b));
        let batch = sp.repair(&g, &RepairEvent::LinkSetFailure(vec![a, b]));
        for slice in 0..3 {
            for u in g.nodes() {
                for t in g.nodes() {
                    prop_assert_eq!(
                        stacked.next_hop(slice, u, t),
                        batch.next_hop(slice, u, t),
                        "slice {} {:?} -> {:?} failing {:?} then {:?}", slice, u, t, a, b
                    );
                }
            }
        }
    }

    /// The batch-repair invariant: `repair_batch(events)` is bit-identical
    /// to folding the events through `repair` one at a time — same failed
    /// mask, same weight bits, same (next hop, out edge) for every
    /// (slice, router, dst) — under every slice-construction strategy.
    #[test]
    fn batched_repairs_equal_folded_repairs(
        g in arb_graph(),
        seed in any::<u64>(),
        k in 1usize..=4,
        strategy_sel in 0usize..4,
        specs in proptest::collection::vec(
            (0usize..4, any::<prop::sample::Index>(), any::<prop::sample::Index>(),
             prop_oneof![0.2f64..0.9, 1.2f64..4.0]),
            0..6,
        ),
    ) {
        use splice_core::strategy::StrategyKind;
        let strategy = [
            StrategyKind::PerturbedSpf,
            StrategyKind::RandomSpanningTree,
            StrategyKind::LowStretchTree,
            StrategyKind::ArcDisjointFailover,
        ][strategy_sel];
        let cfg = SplicingConfig::degree_based(k, 0.0, 3.0).with_strategy(strategy);
        let sp = Splicing::build(&g, &cfg, seed);
        let events: Vec<RepairEvent> = specs
            .iter()
            .map(|(which, a, b, factor)| match which {
                0 => RepairEvent::LinkFailure(EdgeId(a.index(g.edge_count()) as u32)),
                1 => RepairEvent::LinkSetFailure(vec![
                    EdgeId(a.index(g.edge_count()) as u32),
                    EdgeId(b.index(g.edge_count()) as u32),
                ]),
                2 => RepairEvent::NodeFailure(
                    splice_graph::NodeId(a.index(g.node_count()) as u32),
                ),
                _ => {
                    let slice = b.index(k);
                    let edge = EdgeId(a.index(g.edge_count()) as u32);
                    RepairEvent::SliceReweight {
                        slice,
                        edge,
                        new_weight: sp.weights(slice)[edge.index()] * factor,
                    }
                }
            })
            .collect();
        let folded = events.iter().fold(sp.clone(), |acc, ev| acc.repair(&g, ev));
        let batched = sp.repair_batch(&g, &events);
        prop_assert_eq!(
            folded.failed_mask().failed_edges().collect::<Vec<_>>(),
            batched.failed_mask().failed_edges().collect::<Vec<_>>()
        );
        for slice in 0..k {
            for (x, y) in folded.weights(slice).iter().zip(batched.weights(slice)) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "slice {} weight bits", slice);
            }
            for u in g.nodes() {
                for t in g.nodes() {
                    prop_assert_eq!(
                        folded.next_hop(slice, u, t),
                        batched.next_hop(slice, u, t),
                        "slice {} {:?} -> {:?} over {:?} with {:?}",
                        slice, u, t, &events, strategy
                    );
                }
            }
        }
    }

    /// Perturbations are total over any graph the constructor accepts —
    /// including near-degenerate tiny weights — and never produce an
    /// invalid vector from a valid one.
    #[test]
    fn perturbations_total_and_valid(seed in any::<u64>(), w in prop_oneof![1e-300f64..1e-290, 1e-9f64..10.0]) {
        let g = from_edges(3, &[(0, 1, w), (1, 2, 1.0), (2, 0, w)]);
        let mut rng = StdRng::seed_from_u64(seed);
        for v in [
            Uniform::new(3.0).perturb(&g, &mut rng),
            DegreeBased::new(0.0, 3.0).perturb(&g, &mut rng),
            TheoremA1::new(2.0, 4).perturb(&g, &mut rng),
        ] {
            prop_assert!(v.iter().all(|x| x.is_finite() && *x > 0.0));
        }
    }

    /// Header encoding: any hop sequence below k survives encode + wire
    /// round-trip + decode; reading consumes exactly the encoded hops.
    #[test]
    fn forwarding_bits_roundtrip(hops in proptest::collection::vec(0u8..10, 0..20),
                                 k in 2usize..=10) {
        let clamped: Vec<u8> = hops.iter().map(|&h| h % k as u8).collect();
        if clamped.len() * bits_per_hop(k) as usize > 128 { return Ok(()); }
        let h = ForwardingBits::from_hops(&clamped, k);
        prop_assert_eq!(h.remaining_hops(), clamped.len());
        let mut wire = ForwardingBits::from_bytes(&h.to_bytes()).unwrap();
        for &expect in &clamped {
            prop_assert_eq!(wire.read_and_shift(k), Some(expect as usize));
        }
        prop_assert!(wire.is_exhausted());
    }

    /// Corrupted shims never decode to something that panics the reader:
    /// either rejected, or decoded and readable to exhaustion. Decoding
    /// is also canonical: whatever `from_bytes` accepts re-encodes to the
    /// very same 18 bytes (so no shim carries dead state above
    /// `len_bits`).
    #[test]
    fn corrupted_shim_is_safe(bytes in proptest::collection::vec(any::<u8>(), 18), k in 1usize..=10) {
        if let Some(mut h) = ForwardingBits::from_bytes(&bytes) {
            prop_assert_eq!(
                h.to_bytes().to_vec(),
                bytes.clone(),
                "decode -> encode must be the identity on accepted shims"
            );
            let mut guard = 0;
            while h.read_and_shift(k).is_some() {
                guard += 1;
                prop_assert!(guard <= 128, "reader failed to terminate");
            }
        }
    }

    /// The counter header drains exactly its counter (for k > 1) and
    /// every emitted slice stays in range.
    #[test]
    fn counter_header_drains(n in 0u32..40, k in 2usize..=8, start in 0usize..8) {
        let start = start % k;
        let mut c = CounterHeader::new(n);
        let mut slice = start;
        for _ in 0..n {
            let next = c.step(slice, k);
            prop_assert!(next < k);
            prop_assert_ne!(next, slice, "non-zero counter must deflect");
            slice = next;
        }
        prop_assert_eq!(c.counter, 0);
        prop_assert_eq!(c.step(slice, k), slice);
    }

    /// Every header strategy produces in-range hop values and starts from
    /// the base slice distributionally (first value equals base when no
    /// flip happened — checked via the strategies' structural guarantees).
    #[test]
    fn strategies_generate_valid_hops(seed in any::<u64>(), k in 2usize..=8,
                                      base in 0usize..8, flip in 0.0f64..=1.0) {
        let base = base % k;
        let mut rng = StdRng::seed_from_u64(seed);
        for strategy in [
            HeaderStrategy::Bernoulli { flip_prob: flip },
            HeaderStrategy::FirstHopBiased { flip_prob: flip },
            HeaderStrategy::NoRevisit { flip_prob: flip },
            HeaderStrategy::BoundedSwitches { flip_prob: flip, max_switches: 3 },
        ] {
            let hops = strategy.generate_hops(base, 20, k, &mut rng);
            prop_assert_eq!(hops.len(), 20);
            prop_assert!(hops.iter().all(|&h| (h as usize) < k));
            if flip == 0.0 {
                prop_assert!(hops.iter().all(|&h| h as usize == base));
            }
        }
    }
}
