//! Long churn schedules and the schedule → batch adapter feeding
//! [`Splicing::repair_batch`].
//!
//! The differential harness ([`crate::check::replay`]) applies one
//! [`EventSpec`] at a time because it checkpoints after every event. The
//! sustained-churn benchmark wants the opposite: long event streams
//! coalesced into fixed-size batches so the batched repair path earns its
//! keep. This module provides both halves:
//!
//! - [`churn_schedule`] deterministically generates a long mixed event
//!   stream (mostly failures, some per-slice reweights, occasional
//!   recoveries once enough links are down) from a seed, using the
//!   repo's own SplitMix64 chain — no RNG crate in the loop, so the
//!   schedule is bit-stable across toolchains and stub environments.
//! - [`schedule_to_batches`] folds a schedule into [`BatchStep`]s with
//!   exactly the semantics of the replay engine: reweights are
//!   multiplicative against the *current* shadow weights, and a
//!   [`EventSpec::Recover`] re-converges from the base deployment by
//!   carrying the surviving reweights and failures forward.
//!
//! Because `repair_batch` is bit-identical to folding its events one at
//! a time, applying the same schedule at any batch size lands on the
//! same deployment — the invariant the churn experiment's cross-batch
//! checksum column asserts in CI.

use crate::scenario::EventSpec;
use splice_core::hash::splitmix64;
use splice_core::slices::{RepairEvent, Splicing};
use splice_graph::{EdgeId, EdgeMask, Graph, NodeId};

/// One unit of work for a churn driver replaying a schedule against the
/// batched repair path.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchStep {
    /// Apply these coalesced events to the *current* deployment in one
    /// [`Splicing::repair_batch`] call. At batch size 1 every step holds
    /// exactly one event, which is the sequential baseline.
    Repair(Vec<RepairEvent>),
    /// A link came back up. There is no incremental un-fail, so the
    /// driver must re-converge from the *base* deployment by applying
    /// `carry`: every surviving reweight (in application order) followed
    /// by one failure set for the links still down. Drivers time
    /// `Repair` steps only; a rebuild is control-plane re-convergence,
    /// not repair throughput.
    Rebuild {
        /// Events to replay from the base deployment.
        carry: Vec<RepairEvent>,
    },
}

/// Fold `events` into batches of at most `batch_size` repair events,
/// mirroring the replay engine's shadow-state semantics (multiplicative
/// reweights, rebuild-from-base on recovery).
///
/// `base_weights` must be the *initial* per-slice weight vectors of the
/// deployment the schedule starts from (`Splicing::weights` per slice).
///
/// # Panics
/// Panics if `batch_size == 0` or an event references an out-of-range
/// slice, edge, or node.
pub fn schedule_to_batches(
    g: &Graph,
    base_weights: &[Vec<f64>],
    events: &[EventSpec],
    batch_size: usize,
) -> Vec<BatchStep> {
    assert!(batch_size >= 1, "batch size must be at least 1");
    let mut shadow_weights: Vec<Vec<f64>> = base_weights.to_vec();
    let mut shadow_mask = EdgeMask::all_up(g.edge_count());
    let mut reweights_applied: Vec<(usize, EdgeId, f64)> = Vec::new();

    let mut steps: Vec<BatchStep> = Vec::new();
    let mut pending: Vec<RepairEvent> = Vec::new();
    for ev in events {
        match ev {
            EventSpec::FailLink(e) => {
                shadow_mask.fail(EdgeId(*e));
                pending.push(RepairEvent::LinkFailure(EdgeId(*e)));
            }
            EventSpec::FailGroup(es) => {
                let ids: Vec<EdgeId> = es.iter().map(|e| EdgeId(*e)).collect();
                for e in &ids {
                    shadow_mask.fail(*e);
                }
                pending.push(RepairEvent::LinkSetFailure(ids));
            }
            EventSpec::FailNode(v) => {
                let node = NodeId(*v);
                for &(_, e) in g.neighbors(node) {
                    shadow_mask.fail(e);
                }
                pending.push(RepairEvent::NodeFailure(node));
            }
            EventSpec::Reweight { slice, edge, milli } => {
                let slice = *slice as usize;
                let e = EdgeId(*edge);
                let new_weight = shadow_weights[slice][e.index()] * (*milli as f64 / 1000.0);
                shadow_weights[slice][e.index()] = new_weight;
                reweights_applied.push((slice, e, new_weight));
                pending.push(RepairEvent::SliceReweight {
                    slice,
                    edge: e,
                    new_weight,
                });
            }
            EventSpec::Recover(e) => {
                if !pending.is_empty() {
                    steps.push(BatchStep::Repair(std::mem::take(&mut pending)));
                }
                shadow_mask.restore(EdgeId(*e));
                let mut carry: Vec<RepairEvent> = reweights_applied
                    .iter()
                    .map(|&(slice, edge, new_weight)| RepairEvent::SliceReweight {
                        slice,
                        edge,
                        new_weight,
                    })
                    .collect();
                let still_failed: Vec<EdgeId> = shadow_mask.failed_edges().collect();
                if !still_failed.is_empty() {
                    carry.push(RepairEvent::LinkSetFailure(still_failed));
                }
                steps.push(BatchStep::Rebuild { carry });
                continue;
            }
        }
        if pending.len() >= batch_size {
            steps.push(BatchStep::Repair(std::mem::take(&mut pending)));
        }
    }
    if !pending.is_empty() {
        steps.push(BatchStep::Repair(pending));
    }
    steps
}

/// Apply `steps` starting from `base` and return the final deployment —
/// the reference driver (untimed) for tests and smoke checks.
pub fn apply_batches(g: &Graph, base: &Splicing, steps: &[BatchStep]) -> Splicing {
    let mut sp = base.clone();
    for step in steps {
        match step {
            BatchStep::Repair(events) => sp = sp.repair_batch(g, events),
            BatchStep::Rebuild { carry } => sp = base.repair_batch(g, carry),
        }
    }
    sp
}

/// Deterministically generate a churn schedule of `len` events for a
/// `k`-slice deployment on `g`: long runs of link/group/node failures
/// (~72%) mixed with per-slice reweights (factor 0.25–3.25, ~28%),
/// punctuated by recovery *bursts* — once more than a third of the
/// links are down the network drains back below a sixth, one
/// [`EventSpec::Recover`] per event. The hysteresis matters for the
/// benchmark: single opportunistic recoveries would flush the pending
/// batch every few events and no batch would ever fill. Link and group
/// failures sample currently-*up* edges, so every failure event is
/// real work rather than a free already-failed no-op.
///
/// The generator is a pure SplitMix64 chain over `seed`: the same
/// `(g, k, len, seed)` always produces the same schedule, everywhere.
pub fn churn_schedule(g: &Graph, k: usize, len: usize, seed: u64) -> Vec<EventSpec> {
    assert!(k >= 1, "need at least one slice");
    let m = g.edge_count();
    let n = g.node_count();
    assert!(m >= 1 && n >= 2, "churn needs a non-trivial graph");
    let mut mask = EdgeMask::all_up(m);
    let mut state = seed;
    let mut next = move || {
        state = splitmix64(state);
        state
    };
    let mut pick_up_edge = |mask: &EdgeMask, next: &mut dyn FnMut() -> u64| -> Option<u32> {
        let up: Vec<EdgeId> = (0..m as u32)
            .map(EdgeId)
            .filter(|&e| mask.is_up(e))
            .collect();
        if up.is_empty() {
            None
        } else {
            Some(up[(next() % up.len() as u64) as usize].0)
        }
    };

    let mut draining = false;
    let mut events = Vec::with_capacity(len);
    for _ in 0..len {
        let failed = mask.failed_count();
        if failed * 3 > m {
            draining = true;
        }
        if failed * 6 <= m {
            draining = false;
        }
        let roll = next() % 100;
        let ev = if draining && failed > 0 {
            let downed: Vec<EdgeId> = mask.failed_edges().collect();
            let e = downed[(next() % downed.len() as u64) as usize];
            mask.restore(e);
            EventSpec::Recover(e.0)
        } else if roll < 28 {
            EventSpec::Reweight {
                slice: (next() % k as u64) as u32,
                edge: (next() % m as u64) as u32,
                milli: 250 + (next() % 3000) as u32,
            }
        } else if roll < 34 {
            let mut group = Vec::new();
            for _ in 0..2 {
                if let Some(e) = pick_up_edge(&mask, &mut next) {
                    mask.fail(EdgeId(e));
                    group.push(e);
                }
            }
            if group.is_empty() {
                // Whole graph already down: reweight instead.
                EventSpec::Reweight {
                    slice: (next() % k as u64) as u32,
                    edge: (next() % m as u64) as u32,
                    milli: 250 + (next() % 3000) as u32,
                }
            } else {
                EventSpec::FailGroup(group)
            }
        } else if roll < 40 {
            let v = (next() % n as u64) as u32;
            for &(_, e) in g.neighbors(NodeId(v)) {
                mask.fail(e);
            }
            EventSpec::FailNode(v)
        } else {
            match pick_up_edge(&mask, &mut next) {
                Some(e) => {
                    mask.fail(EdgeId(e));
                    EventSpec::FailLink(e)
                }
                None => EventSpec::Reweight {
                    slice: (next() % k as u64) as u32,
                    edge: (next() % m as u64) as u32,
                    milli: 250 + (next() % 3000) as u32,
                },
            }
        };
        events.push(ev);
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::slices::SplicingConfig;
    use splice_topology::abilene::abilene;

    #[test]
    fn churn_schedule_is_deterministic_and_in_range() {
        let g = abilene().graph();
        let a = churn_schedule(&g, 3, 120, 42);
        let b = churn_schedule(&g, 3, 120, 42);
        assert_eq!(a, b);
        assert_ne!(a, churn_schedule(&g, 3, 120, 43));
        let (m, n) = (g.edge_count() as u32, g.node_count() as u32);
        let mut kinds = [0usize; 5];
        for ev in &a {
            match ev {
                EventSpec::FailLink(e) => {
                    assert!(*e < m);
                    kinds[0] += 1;
                }
                EventSpec::FailGroup(es) => {
                    assert!(es.iter().all(|e| *e < m));
                    kinds[1] += 1;
                }
                EventSpec::FailNode(v) => {
                    assert!(*v < n);
                    kinds[2] += 1;
                }
                EventSpec::Reweight { slice, edge, milli } => {
                    assert!(*slice < 3 && *edge < m && *milli > 0);
                    kinds[3] += 1;
                }
                EventSpec::Recover(e) => {
                    assert!(*e < m);
                    kinds[4] += 1;
                }
            }
        }
        // A long schedule exercises every event class.
        assert!(kinds.iter().all(|&c| c > 0), "missing a class: {kinds:?}");
    }

    #[test]
    fn batches_cover_every_event_and_respect_size() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(3, 0.0, 3.0), 5);
        let weights: Vec<Vec<f64>> = (0..3).map(|s| sp.weights(s).to_vec()).collect();
        let schedule = churn_schedule(&g, 3, 80, 9);
        let recoveries = schedule
            .iter()
            .filter(|e| matches!(e, EventSpec::Recover(_)))
            .count();
        for batch_size in [1usize, 4, 16] {
            let steps = schedule_to_batches(&g, &weights, &schedule, batch_size);
            let mut repairs = 0usize;
            let mut rebuilds = 0usize;
            for step in &steps {
                match step {
                    BatchStep::Repair(events) => {
                        assert!(!events.is_empty() && events.len() <= batch_size);
                        repairs += events.len();
                    }
                    BatchStep::Rebuild { .. } => rebuilds += 1,
                }
            }
            // One repair event per non-recovery spec, one rebuild per
            // recovery: nothing dropped, nothing duplicated.
            assert_eq!(repairs + rebuilds, schedule.len());
            assert_eq!(rebuilds, recoveries);
        }
    }

    #[test]
    fn batched_application_matches_single_event_application() {
        let g = abilene().graph();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(3, 0.0, 3.0), 7);
        let weights: Vec<Vec<f64>> = (0..3).map(|s| sp.weights(s).to_vec()).collect();
        let schedule = churn_schedule(&g, 3, 60, 11);
        let sequential = apply_batches(&g, &sp, &schedule_to_batches(&g, &weights, &schedule, 1));
        for batch_size in [2usize, 8, 64] {
            let steps = schedule_to_batches(&g, &weights, &schedule, batch_size);
            let batched = apply_batches(&g, &sp, &steps);
            assert_eq!(
                sequential.failed_mask().failed_edges().collect::<Vec<_>>(),
                batched.failed_mask().failed_edges().collect::<Vec<_>>()
            );
            for slice in 0..3 {
                for (x, y) in sequential.weights(slice).iter().zip(batched.weights(slice)) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
                for u in g.nodes() {
                    for t in g.nodes() {
                        assert_eq!(
                            sequential.next_hop(slice, u, t),
                            batched.next_hop(slice, u, t),
                            "batch size {batch_size}, slice {slice}, {u:?} -> {t:?}"
                        );
                    }
                }
            }
        }
    }
}
