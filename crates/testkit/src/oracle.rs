//! Independent reference implementations ("oracles") the production
//! stack is differentially tested against.
//!
//! Three oracles, deliberately small and dumb:
//!
//! * [`OracleTables`] — per-(slice, destination) *from-scratch* masked
//!   Dijkstra runs. The production arena is supposed to hold exactly
//!   these parents, whether it got there by full build, prefix view, or
//!   any stack of delta-SPF repairs.
//! * [`bellman_ford_masked`] cross-check — an O(N·M) algorithm with no
//!   heap, no tie-break, and no shared code with `SpfWorkspace`, pinning
//!   the distances themselves.
//! * [`naive_walk`] — a forwarding-bits walker written directly from
//!   Algorithm 1 over the oracle tables, mirroring the data-plane
//!   semantics (`ExhaustedPolicy::StayInCurrent`) of
//!   `Forwarder::forward` without sharing any of its code.

use splice_core::forwarding::{ForwardingOutcome, Trace, TraceStep};
use splice_core::hash::slice_for_flow;
use splice_core::header::ForwardingBits;
use splice_graph::{EdgeId, EdgeMask, Graph, NodeId, SpfWorkspace};
use std::collections::HashSet;

/// From-scratch shortest-path state for every (slice, destination):
/// `next[slice][dst][node]` and `dist[slice][dst][node]`.
pub struct OracleTables {
    /// Parent pointers toward each destination, per slice.
    pub next: Vec<Vec<Vec<Option<(NodeId, EdgeId)>>>>,
    /// Exact distances toward each destination, per slice.
    pub dist: Vec<Vec<Vec<f64>>>,
}

impl OracleTables {
    /// Run k·n fresh masked Dijkstras over `weights_per_slice`.
    pub fn build(g: &Graph, weights_per_slice: &[&[f64]], mask: &EdgeMask) -> OracleTables {
        let mut ws = SpfWorkspace::new();
        let mut next = Vec::with_capacity(weights_per_slice.len());
        let mut dist = Vec::with_capacity(weights_per_slice.len());
        for w in weights_per_slice {
            let mut slice_next = Vec::with_capacity(g.node_count());
            let mut slice_dist = Vec::with_capacity(g.node_count());
            for t in g.nodes() {
                ws.run(g, t, w, Some(mask));
                slice_next.push(ws.parents().to_vec());
                slice_dist.push(ws.distances().to_vec());
            }
            next.push(slice_next);
            dist.push(slice_dist);
        }
        OracleTables { next, dist }
    }

    /// The oracle's next hop for `(slice, node, dst)`.
    #[inline]
    pub fn next_hop(&self, slice: usize, node: NodeId, dst: NodeId) -> Option<(NodeId, EdgeId)> {
        self.next[slice][dst.index()][node.index()]
    }
}

/// Walk a packet over the *oracle* tables with the production data
/// plane's semantics: read a slice per hop, stay in the current slice
/// once the header is exhausted, detect deterministic periodicity by
/// (node, slice) revisit after exhaustion, and give up past `ttl` hops.
pub fn naive_walk(
    oracle: &OracleTables,
    k: usize,
    src: NodeId,
    dst: NodeId,
    mut header: ForwardingBits,
    ttl: usize,
) -> ForwardingOutcome {
    let mut current_slice = slice_for_flow(src, dst, k);
    let mut at = src;
    let mut steps = Vec::new();
    let mut exhausted_states: HashSet<(NodeId, usize)> = HashSet::new();
    while at != dst {
        if let Some(s) = header.read_and_shift(k) {
            current_slice = s;
        }
        let trace_here = |steps: Vec<TraceStep>| Trace {
            src,
            dst,
            steps,
            last: at,
        };
        if header.is_exhausted() && !exhausted_states.insert((at, current_slice)) {
            return ForwardingOutcome::PersistentLoop(trace_here(steps));
        }
        let Some((next, edge)) = oracle.next_hop(current_slice, at, dst) else {
            return ForwardingOutcome::DeadEnd(trace_here(steps));
        };
        steps.push(TraceStep {
            node: at,
            slice: current_slice,
            edge,
        });
        at = next;
        if steps.len() > ttl {
            return ForwardingOutcome::TtlExceeded(Trace {
                src,
                dst,
                steps,
                last: at,
            });
        }
    }
    ForwardingOutcome::Delivered(Trace {
        src,
        dst,
        steps,
        last: at,
    })
}

/// Render an outcome as a canonical comparison key: variant, endpoint,
/// and the full (node, slice, edge) step sequence. Two walks are "the
/// same" exactly when their signatures match.
pub fn outcome_signature(out: &ForwardingOutcome) -> String {
    let (name, trace) = match out {
        ForwardingOutcome::Delivered(t) => ("Delivered", t),
        ForwardingOutcome::DeadEnd(t) => ("DeadEnd", t),
        ForwardingOutcome::LinkDown { trace, slice } => {
            return format!(
                "LinkDown(slice={slice}) last={} steps={}",
                trace.last.index(),
                steps_signature(trace)
            );
        }
        ForwardingOutcome::PersistentLoop(t) => ("PersistentLoop", t),
        ForwardingOutcome::TtlExceeded(t) => ("TtlExceeded", t),
    };
    format!(
        "{name} last={} steps={}",
        trace.last.index(),
        steps_signature(trace)
    )
}

fn steps_signature(t: &Trace) -> String {
    let hops: Vec<String> = t
        .steps
        .iter()
        .map(|s| format!("{}:{}@{}", s.node.index(), s.slice, s.edge.index()))
        .collect();
    format!("[{}]", hops.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use splice_core::forwarding::{Forwarder, ForwarderOptions};
    use splice_core::slices::{Splicing, SplicingConfig};
    use splice_graph::graph::from_edges;

    fn diamond() -> Graph {
        from_edges(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.5), (2, 3, 1.5)])
    }

    #[test]
    fn oracle_tables_match_clean_build() {
        let g = diamond();
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(3, 0.0, 3.0), 11);
        let mask = EdgeMask::all_up(g.edge_count());
        let weights: Vec<&[f64]> = (0..3).map(|s| sp.weights(s)).collect();
        let oracle = OracleTables::build(&g, &weights, &mask);
        for s in 0..3 {
            for u in g.nodes() {
                for t in g.nodes() {
                    assert_eq!(sp.next_hop(s, u, t), oracle.next_hop(s, u, t));
                }
            }
        }
    }

    #[test]
    fn naive_walk_matches_production_forwarder() {
        let g = diamond();
        let k = 3;
        let sp = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), 11);
        let mask = EdgeMask::all_up(g.edge_count());
        let weights: Vec<&[f64]> = (0..k).map(|s| sp.weights(s)).collect();
        let oracle = OracleTables::build(&g, &weights, &mask);
        let fwd = Forwarder::new(&sp, &g, &mask);
        let opts = ForwarderOptions::default();
        for hops in [vec![], vec![1], vec![2, 0, 1], vec![0, 0, 2, 2, 1]] {
            for s in g.nodes() {
                for t in g.nodes() {
                    if s == t {
                        continue;
                    }
                    let h = ForwardingBits::from_hops(&hops, k);
                    let prod = fwd.forward(s, t, h, &opts);
                    let naive = naive_walk(&oracle, k, s, t, h, opts.ttl);
                    assert_eq!(outcome_signature(&prod), outcome_signature(&naive));
                }
            }
        }
    }
}
