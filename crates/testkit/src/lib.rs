//! splice-testkit: deterministic fault-injection harness with
//! differential oracles and scenario shrinking.
//!
//! The testkit replays a [`Scenario`] — a topology plus a schedule of
//! failure/reweight/recovery events — simultaneously through the
//! production stack (`Splicing::repair` feeding the spliced-FIB arena
//! and `Forwarder`) and through independent reference oracles
//! (from-scratch masked Dijkstra, Bellman–Ford, a naive
//! forwarding-bits walker), and fails on the first divergence in
//! distances, parents, next hops, walk outcomes, or paper invariants
//! (loop-freedom under `NoRevisit`, the `BoundedSwitches` cap, the
//! Theorem A.1 stretch bound).
//!
//! Every scenario round-trips through a one-line seed-spec
//! (`rand-8-12-99/k3d/s7/f4+n1`), so a failure found anywhere — a soak
//! run, CI, a property test — is replayed with
//! `splice testkit replay <spec>`. Failing scenarios are shrunk
//! ([`shrink`]) to a minimal reproduction before being reported.
//!
//! The crate also exports the workspace's shared proptest
//! [`strategies`], so the per-crate property suites draw their random
//! graphs and masks from one place.

pub mod check;
pub mod daemon;
pub mod forward_oracle;
pub mod oracle;
pub mod scenario;
pub mod schedule;
pub mod shrink;
pub mod strategies;

pub use check::{flight_tail, replay, Divergence, ReplayOptions, ReplayReport};
pub use daemon::{daemon_replay, to_control_event, DaemonReplayReport};
pub use forward_oracle::{forward_oracle, ForwardOracleOptions, ForwardOracleReport};
pub use oracle::{naive_walk, outcome_signature, OracleTables};
pub use scenario::{derive_seed, EventSpec, PerturbationSpec, Scenario, TopologySpec};
pub use schedule::{apply_batches, churn_schedule, schedule_to_batches, BatchStep};
pub use shrink::{shrink, ShrinkResult};
