//! The batch-forwarding differential oracle: run the same seeded flows
//! through three independent forwarding engines and fail on the first
//! packet whose walk outcomes disagree.
//!
//! The engines share no forwarding code:
//!
//! 1. **batch** — `splice_dataplane::BatchForwarder`, the
//!    struct-of-arrays burst engine (the thing under test);
//! 2. **scalar** — `splice_dataplane::scalar_walk`, the one-packet
//!    reference that mirrors `Forwarder::forward` statement for
//!    statement over the same arena;
//! 3. **naive** — [`crate::oracle::naive_walk`] over from-scratch
//!    [`OracleTables`], written directly from Algorithm 1 with no arena
//!    at all.
//!
//! Flows come from the traffic crate's seeded Zipf generator, so a run
//! is a pure function of the scenario spec; the churn schedule is the
//! scenario's own event list folded through
//! [`crate::schedule::schedule_to_batches`], and a fresh tranche of
//! flows is checked after the build and after every repair batch — the
//! oracle exercises forwarding *between* repairs, not just at the end
//! state. A divergence is reported as [`Divergence::Invariant`] with
//! name `forward-oracle`, so the shrinker ([`crate::shrink::shrink`])
//! and the one-line `splice testkit replay` repro work unchanged.
//!
//! One deliberate asymmetry: the naive walker's tables are rebuilt from
//! the cumulative failure mask, so a failed link simply has no oracle
//! next hop (`DeadEnd`), while the production engines could in
//! principle report `LinkDown`. Checkpoints sit on fully repaired
//! deployments, where the arena installs no failed edges either — so
//! the three engines agree exactly, and any `LinkDown` leaking out of a
//! "repaired" arena is itself a divergence the oracle catches.

use crate::check::{build_config, strategy_oracle, validate_events, Divergence};
use crate::oracle::{naive_walk, OracleTables};
use crate::scenario::{derive_seed, Scenario};
use crate::schedule::{schedule_to_batches, BatchStep};
use splice_core::forwarding::ForwarderOptions;
use splice_core::slices::Splicing;
use splice_core::strategy::StrategyKind;
use splice_dataplane::{
    fold_outcomes_checksum, outcomes_checksum, scalar_walk, BatchForwarder, WalkOutcome,
};
use splice_graph::NodeId;
use splice_traffic::{FlowConfig, FlowGen};

/// Knobs for a forward-oracle run. Defaults are what the soak binary
/// and the property suites use.
#[derive(Clone, Debug)]
pub struct ForwardOracleOptions {
    /// Total seeded flows checked, split evenly across checkpoints.
    pub flows: usize,
    /// Repair-batch size the scenario's events are coalesced into (one
    /// checkpoint per batch, plus one for the initial build).
    pub batch: usize,
    /// Hop budget per walk.
    pub ttl: usize,
    /// **Fault injection (tests only):** forward the batch engine's
    /// bursts over the *base* (pre-churn) arena while the scalar and
    /// naive engines see the repaired one — the stale-snapshot bug
    /// class this oracle exists to catch. `false` in real runs.
    pub stale_batch_arena: bool,
}

impl Default for ForwardOracleOptions {
    fn default() -> Self {
        ForwardOracleOptions {
            flows: 2048,
            batch: 4,
            ttl: 64,
            stale_batch_arena: false,
        }
    }
}

/// What a clean forward-oracle run covered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ForwardOracleReport {
    /// Packets walked through all three engines.
    pub flows_checked: usize,
    /// Deployments checked (initial build + one per repair batch).
    pub checkpoints: usize,
    /// FNV-1a over every batch-engine outcome, in checkpoint order —
    /// the cross-run determinism handle.
    pub checksum: u64,
}

/// Run `sc`'s flows through batch, scalar, and naive engines at every
/// churn checkpoint; return the first per-packet disagreement.
pub fn forward_oracle(
    sc: &Scenario,
    opts: &ForwardOracleOptions,
) -> Result<ForwardOracleReport, Box<Divergence>> {
    let g = sc.topology.graph().map_err(Divergence::Setup)?;
    validate_events(sc, &g)?;

    let cfg = build_config(sc);
    let base = Splicing::build(&g, &cfg, sc.build_seed);
    let base_weights: Vec<Vec<f64>> = (0..sc.k).map(|s| base.weights(s).to_vec()).collect();
    let steps = schedule_to_batches(&g, &base_weights, &sc.events, opts.batch.max(1));

    let checkpoints = steps.len() + 1;
    let per_checkpoint = opts.flows.div_ceil(checkpoints).max(1);
    let flow_gen = FlowGen::new(FlowConfig::new(
        g.node_count() as u32,
        sc.k,
        derive_seed(sc.build_seed, 0xf02d, 0),
    ));
    let fwd_opts = ForwarderOptions {
        ttl: opts.ttl,
        ..Default::default()
    };
    let mut engine = BatchForwarder::new(fwd_opts);
    let mut pkts: Vec<(u32, u32, splice_core::header::ForwardingBits)> = Vec::new();
    let mut report = ForwardOracleReport {
        checkpoints,
        checksum: outcomes_checksum(&[]),
        ..Default::default()
    };

    let mut sp = base.clone();
    for step in 0..checkpoints {
        if step > 0 {
            sp = match &steps[step - 1] {
                BatchStep::Repair(events) => sp.repair_batch(&g, events),
                BatchStep::Rebuild { carry } => base.repair_batch(&g, carry),
            };
        }

        let mask = sp.failed_mask();
        let weights: Vec<&[f64]> = (0..sc.k).map(|s| sp.weights(s)).collect();
        let tables = if sc.strategy == StrategyKind::PerturbedSpf {
            OracleTables::build(&g, &weights, mask)
        } else {
            strategy_oracle(&g, sc.strategy, sc.build_seed, &weights, mask)
        };

        // Per-checkpoint flow stream: independent of every other
        // checkpoint's, deterministic in the scenario spec alone.
        let mut stream = flow_gen.stream(step);
        stream.fill_burst(per_checkpoint, &mut pkts);

        let batch_arena = if opts.stale_batch_arena {
            base.arena()
        } else {
            sp.arena()
        };
        let outcomes = engine.forward_burst(batch_arena, mask, &pkts);
        report.checksum = fold_outcomes_checksum(report.checksum, outcomes);

        for (i, &(src, dst, bits)) in pkts.iter().enumerate() {
            let batch = outcomes[i];
            let scalar = WalkOutcome::from_outcome(&scalar_walk(
                sp.arena(),
                mask,
                NodeId(src),
                NodeId(dst),
                bits,
                &fwd_opts,
            ));
            let naive = WalkOutcome::from_outcome(&naive_walk(
                &tables,
                sc.k,
                NodeId(src),
                NodeId(dst),
                bits,
                opts.ttl,
            ));
            report.flows_checked += 1;
            if batch != scalar || scalar != naive {
                return Err(Box::new(Divergence::Invariant {
                    step,
                    name: "forward-oracle".into(),
                    detail: format!(
                        "flow {} -> {} (packet {i} of checkpoint {step}): \
                         batch {} vs scalar {} vs naive {}",
                        src,
                        dst,
                        batch.signature(),
                        scalar.signature(),
                        naive.signature()
                    ),
                }));
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{PerturbationSpec, TopologySpec};
    use crate::schedule::churn_schedule;
    use crate::shrink::shrink;

    fn scenario(strategy: StrategyKind, events: Vec<crate::scenario::EventSpec>) -> Scenario {
        Scenario {
            topology: TopologySpec::Named("abilene".into()),
            k: 3,
            perturbation: PerturbationSpec::DegreeBased,
            strategy,
            build_seed: 17,
            events,
        }
    }

    #[test]
    fn three_engines_agree_under_churn() {
        let g = splice_topology::abilene::abilene().graph();
        let events = churn_schedule(&g, 3, 24, 5);
        let sc = scenario(StrategyKind::PerturbedSpf, events);
        let opts = ForwardOracleOptions {
            flows: 600,
            ..Default::default()
        };
        let a = forward_oracle(&sc, &opts).expect("engines diverged");
        assert!(a.flows_checked >= 600, "{a:?}");
        assert!(a.checkpoints > 1, "churn produced no checkpoints: {a:?}");
        let b = forward_oracle(&sc, &opts).expect("engines diverged on rerun");
        assert_eq!(a, b, "oracle run is deterministic");
    }

    #[test]
    fn agrees_across_all_slice_strategies() {
        let g = splice_topology::abilene::abilene().graph();
        let events = churn_schedule(&g, 3, 10, 8);
        let opts = ForwardOracleOptions {
            flows: 200,
            ..Default::default()
        };
        for strategy in StrategyKind::ALL {
            let sc = scenario(strategy, events.clone());
            forward_oracle(&sc, &opts).unwrap_or_else(|d| panic!("{strategy:?} diverged: {d}"));
        }
    }

    #[test]
    fn empty_schedule_still_checks_the_build() {
        let sc = scenario(StrategyKind::PerturbedSpf, Vec::new());
        let report = forward_oracle(&sc, &ForwardOracleOptions::default()).expect("clean build");
        assert_eq!(report.checkpoints, 1);
        assert!(report.flows_checked >= 1);
    }

    #[test]
    fn bad_event_ids_are_setup_not_divergence() {
        let sc = scenario(
            StrategyKind::PerturbedSpf,
            vec![crate::scenario::EventSpec::FailLink(9999)],
        );
        let err = forward_oracle(&sc, &ForwardOracleOptions::default()).unwrap_err();
        assert!(matches!(*err, Divergence::Setup(_)), "{err:?}");
    }

    /// The stale-snapshot sabotage must (a) be caught as a
    /// forward-oracle divergence and (b) shrink to a scenario that still
    /// prints a one-line replay command — the end-to-end path a real
    /// batch-engine bug would take through the harness.
    #[test]
    fn stale_arena_sabotage_is_caught_and_shrinks() {
        let g = splice_topology::abilene::abilene().graph();
        let events = churn_schedule(&g, 3, 16, 3);
        let sc = scenario(StrategyKind::PerturbedSpf, events);
        let opts = ForwardOracleOptions {
            flows: 400,
            stale_batch_arena: true,
            ..Default::default()
        };
        let div = *forward_oracle(&sc, &opts).expect_err("sabotage went unnoticed");
        match &div {
            Divergence::Invariant { name, .. } => assert_eq!(name, "forward-oracle"),
            other => panic!("wrong divergence class: {other:?}"),
        }
        let check = |c: &Scenario| forward_oracle(c, &opts).err().map(|b| *b);
        let out = shrink(&sc, div, check);
        assert!(out.scenario.events.len() <= sc.events.len());
        assert!(!out.scenario.events.is_empty(), "sabotage needs churn");
        assert!(out.replay_command().starts_with("splice testkit replay "));
    }
}
