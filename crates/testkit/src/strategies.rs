//! Shared proptest strategies for the whole workspace.
//!
//! Before the testkit, every crate's `tests/properties.rs` carried its
//! own near-identical copy of "a random (connected-ish) graph" and "a
//! graph plus a failure mask". These are the canonical versions; the
//! graph, core, and root test suites import them from here.
//!
//! Two graph shapes, because the suites genuinely need both:
//!
//! * [`arb_multigraph`] — possibly disconnected multigraphs, the right
//!   shape for pure graph-algorithm properties (Dijkstra vs.
//!   Bellman–Ford must agree on unreachable nodes too);
//! * [`arb_backbone_graph`] — a ring backbone plus random chords, always
//!   initially connected, the right shape for splicing-deployment
//!   properties (a clean build should reach everything).

use proptest::prelude::*;
use splice_graph::graph::from_edges;
use splice_graph::{EdgeId, EdgeMask, Graph};

use splice_core::strategy::StrategyKind;

use crate::scenario::{EventSpec, PerturbationSpec, Scenario, TopologySpec};

/// A random multigraph with 2..=12 nodes and 1..=30 weighted edges
/// (weights in `[0.5, 10)`); may be disconnected.
pub fn arb_multigraph() -> impl Strategy<Value = Graph> {
    (2usize..=12).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.5f64..10.0);
        proptest::collection::vec(edge, 1..=30).prop_map(move |raw| {
            let edges: Vec<(u32, u32, f64)> = raw.into_iter().filter(|(u, v, _)| u != v).collect();
            // Ensure at least one edge survives the self-loop filter
            // (n >= 2, so a 0-1 edge always exists).
            let edges = if edges.is_empty() {
                vec![(0, 1, 1.0)]
            } else {
                edges
            };
            from_edges(n, &edges)
        })
    })
}

/// A ring backbone over 3..=10 nodes (unit weights, guaranteeing
/// initial connectivity) plus up to 16 random chords.
pub fn arb_backbone_graph() -> impl Strategy<Value = Graph> {
    (3usize..=10).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0.5f64..9.0), 0..16).prop_map(
            move |extra| {
                let mut edges: Vec<(u32, u32, f64)> = (0..n as u32)
                    .map(|i| (i, (i + 1) % n as u32, 1.0))
                    .collect();
                edges.extend(extra.into_iter().filter(|(u, v, _)| u != v));
                from_edges(n, &edges)
            },
        )
    })
}

/// Attach a random failure mask to any graph strategy.
pub fn with_mask(graphs: impl Strategy<Value = Graph>) -> impl Strategy<Value = (Graph, EdgeMask)> {
    graphs.prop_flat_map(|g| {
        let m = g.edge_count();
        proptest::collection::vec(any::<bool>(), m).prop_map(move |fails| {
            let mut mask = EdgeMask::all_up(m);
            for (i, f) in fails.iter().enumerate() {
                if *f {
                    mask.fail(EdgeId(i as u32));
                }
            }
            (g.clone(), mask)
        })
    })
}

/// [`arb_multigraph`] plus a random failure mask.
pub fn arb_multigraph_with_mask() -> impl Strategy<Value = (Graph, EdgeMask)> {
    with_mask(arb_multigraph())
}

/// [`arb_backbone_graph`] plus a random failure mask and a build seed:
/// the workspace-level "anything can happen" scenario shape.
pub fn arb_backbone_scenario() -> impl Strategy<Value = (Graph, EdgeMask, u64)> {
    with_mask(arb_backbone_graph()).prop_flat_map(|(g, mask)| {
        any::<u64>().prop_map(move |seed| (g.clone(), mask.clone(), seed))
    })
}

/// A full replayable [`Scenario`]: random topology spec, slice count,
/// perturbation family, slice-construction strategy (biased toward
/// perturbed-SPF, the paper's default), and event schedule (ids
/// guaranteed in range).
pub fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let topo = prop_oneof![
        8 => (3u32..=10, 0u32..=14, any::<u64>())
            .prop_map(|(nodes, extra, seed)| TopologySpec::Random { nodes, extra, seed }),
        1 => Just(TopologySpec::Named("abilene".into())),
    ];
    let strategy = prop_oneof![
        5 => Just(StrategyKind::PerturbedSpf),
        1 => Just(StrategyKind::RandomSpanningTree),
        1 => Just(StrategyKind::LowStretchTree),
        1 => Just(StrategyKind::ArcDisjointFailover),
    ];
    (topo, 1usize..=5, any::<bool>(), strategy, any::<u64>()).prop_flat_map(
        |(topology, k, thm_a1, strategy, build_seed)| {
            let g = topology
                .graph()
                .expect("strategy topologies always materialize");
            let (n, m) = (g.node_count() as u32, g.edge_count() as u32);
            let event = prop_oneof![
                4 => (0..m).prop_map(EventSpec::FailLink),
                2 => proptest::collection::vec(0..m, 2..=3).prop_map(|mut ids| {
                    ids.sort_unstable();
                    ids.dedup();
                    EventSpec::FailGroup(ids)
                }),
                1 => (0..n).prop_map(EventSpec::FailNode),
                2 => (0..k as u32, 0..m, prop_oneof![150u32..900, 1100u32..6000])
                    .prop_map(|(slice, edge, milli)| EventSpec::Reweight { slice, edge, milli }),
                1 => (0..m).prop_map(EventSpec::Recover),
            ];
            proptest::collection::vec(event, 0..=5).prop_map(move |events| Scenario {
                topology: topology.clone(),
                k,
                perturbation: if thm_a1 {
                    PerturbationSpec::TheoremA1
                } else {
                    PerturbationSpec::DegreeBased
                },
                strategy,
                build_seed,
                events,
            })
        },
    )
}
