//! The differential replay engine: run one [`Scenario`] through the
//! production stack and every oracle, failing on the first divergence.
//!
//! For each scenario the engine builds the deployment with
//! `Splicing::build`, applies each scheduled event through the
//! *incremental* production path (`Splicing::repair`), and after the
//! build and after every event compares the full forwarding state
//! against from-scratch oracles:
//!
//! 1. every (slice, router, dst) next hop vs. a from-scratch oracle — a
//!    fresh masked Dijkstra for perturbed-SPF scenarios, or the
//!    strategy's own deterministic masked reconstruction for rebuild-only
//!    strategies (trees, arc-disjoint);
//! 2. every (slice, dst, node) distance vs. Bellman–Ford (SPF family
//!    only — tree slices do not route on shortest paths);
//! 3. sampled data-plane walks (`Forwarder::forward`) vs. an independent
//!    naive walker over the oracle tables;
//! 4. invariants: the shadow failure mask and weight vectors match the
//!    deployment's, repair stats stay within arena bounds, no installed
//!    next hop rides a failed link, every slice is loop-free toward every
//!    destination, NoRevisit headers never produce a persistent loop,
//!    BoundedSwitches walks never exceed their switch cap, and (until a
//!    slice is reweighted; SPF family only) per-slice distances respect
//!    the perturbation's stretch bound (Theorem A.1's `2Dk`, or `1 + b`
//!    for degree-based `Weight(0, b)`).
//!
//! [`EventSpec::Recover`] has no incremental production path (real
//! control planes re-converge on link-up), so it replays as a fresh
//! build plus re-application of the surviving reweights and failures —
//! which exercises event *stacking* on the repaired path.

use crate::oracle::{naive_walk, outcome_signature, OracleTables};
use crate::scenario::{EventSpec, PerturbationSpec, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use splice_core::forwarding::{Forwarder, ForwarderOptions, ForwardingOutcome};
use splice_core::perturb::TheoremA1;
use splice_core::recovery::HeaderStrategy;
use splice_core::slices::{PerturbationKind, RepairEvent, Splicing, SplicingConfig};
use splice_core::strategy::{with_spf_workspace, StrategyKind};
use splice_graph::bellman_ford::bellman_ford_masked;
use splice_graph::{EdgeId, EdgeMask, Graph, NodeId};
use splice_routing::spf::{FlightEvent, FlightRecorder};
use std::collections::HashSet;
use std::fmt;

/// The allowed stretch `D` for Theorem A.1 scenarios (spec char `a`).
pub const THEOREM_A1_D: f64 = 2.0;

/// First detected disagreement between the production stack and an
/// oracle, with enough context to read off what went wrong. `step` is 0
/// for the initial build and `i + 1` after event `i`.
#[derive(Clone, Debug, PartialEq)]
pub enum Divergence {
    /// The scenario itself cannot be replayed (unknown topology,
    /// out-of-range event ids, ...). Not a stack bug; shrink candidates
    /// that produce this are discarded.
    Setup(String),
    /// Arena next hop differs from a from-scratch masked Dijkstra.
    NextHop {
        /// Replay step the divergence appeared at.
        step: usize,
        /// Slice, router, and destination of the bad entry.
        slice: usize,
        /// Router holding the entry.
        router: u32,
        /// Destination column.
        dst: u32,
        /// What the production arena returned.
        got: Option<(u32, u32)>,
        /// What the oracle computed.
        want: Option<(u32, u32)>,
    },
    /// Dijkstra distance differs from Bellman–Ford.
    Distance {
        /// Replay step.
        step: usize,
        /// Slice and destination of the disagreeing column.
        slice: usize,
        /// Destination column.
        dst: u32,
        /// Node whose distance disagrees.
        node: u32,
        /// Dijkstra's answer.
        dijkstra: f64,
        /// Bellman–Ford's answer.
        bellman_ford: f64,
    },
    /// A sampled walk took a different course through the two planes.
    Walk {
        /// Replay step.
        step: usize,
        /// Flow endpoints.
        src: u32,
        /// Destination node.
        dst: u32,
        /// The per-hop slice choices driving the walk.
        hops: Vec<u8>,
        /// Production `Forwarder::forward` outcome signature.
        production: String,
        /// Naive oracle walker outcome signature.
        oracle: String,
    },
    /// A structural invariant failed (mask/weight drift, repair-stats
    /// bounds, loop freedom, switch caps, stretch bounds).
    Invariant {
        /// Replay step.
        step: usize,
        /// Which invariant.
        name: String,
        /// Human-readable specifics.
        detail: String,
    },
}

impl Divergence {
    /// Stable short label for the divergence class, used as the flight
    /// recorder's event name.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Divergence::Setup(_) => "setup",
            Divergence::NextHop { .. } => "next_hop",
            Divergence::Distance { .. } => "distance",
            Divergence::Walk { .. } => "walk",
            Divergence::Invariant { .. } => "invariant",
        }
    }

    /// The replay step the divergence appeared at (0 for setup failures
    /// and the initial build).
    pub fn step(&self) -> usize {
        match self {
            Divergence::Setup(_) => 0,
            Divergence::NextHop { step, .. }
            | Divergence::Distance { step, .. }
            | Divergence::Walk { step, .. }
            | Divergence::Invariant { step, .. } => *step,
        }
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Setup(msg) => write!(f, "setup: {msg}"),
            Divergence::NextHop {
                step,
                slice,
                router,
                dst,
                got,
                want,
            } => write!(
                f,
                "next-hop divergence at step {step}: slice {slice}, router {router} -> dst {dst}: \
                 production {got:?} vs oracle {want:?}"
            ),
            Divergence::Distance {
                step,
                slice,
                dst,
                node,
                dijkstra,
                bellman_ford,
            } => write!(
                f,
                "distance divergence at step {step}: slice {slice}, dst {dst}, node {node}: \
                 dijkstra {dijkstra} vs bellman-ford {bellman_ford}"
            ),
            Divergence::Walk {
                step,
                src,
                dst,
                hops,
                production,
                oracle,
            } => write!(
                f,
                "walk divergence at step {step}: {src} -> {dst} hops {hops:?}: \
                 production {production} vs oracle {oracle}"
            ),
            Divergence::Invariant { step, name, detail } => {
                write!(f, "invariant {name} violated at step {step}: {detail}")
            }
        }
    }
}

/// Replay knobs. Defaults are what the soak binary and CI use.
#[derive(Clone, Debug)]
pub struct ReplayOptions {
    /// Sampled (src, dst, header) walks per checkpoint.
    pub walk_samples: usize,
    /// Hop budget for sampled walks.
    pub ttl: usize,
    /// **Fault injection (tests only):** pretend the repair engine
    /// forgot to patch this slice's columns on every incremental event —
    /// the bug class the harness exists to catch. `None` in real runs.
    pub skip_patch_slice: Option<usize>,
    /// Flight recorder to narrate the replay into: every incremental
    /// repair lands as a `repair_event`, and a failing replay ends with
    /// a `divergence` event. See [`flight_tail`] for the one-call dump.
    pub flight: Option<FlightRecorder>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            walk_samples: 24,
            ttl: 64,
            skip_patch_slice: None,
            flight: None,
        }
    }
}

/// What a clean replay did — the denominators for soak-run reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Events applied (equals the schedule length).
    pub events_applied: usize,
    /// (slice, router, dst) next-hop comparisons made.
    pub next_hop_checks: usize,
    /// (slice, dst, node) distance cross-checks made.
    pub distance_checks: usize,
    /// Sampled walks compared against the naive walker.
    pub walks_checked: usize,
}

/// Replay `sc` and differentially check every checkpoint.
pub fn replay(sc: &Scenario, opts: &ReplayOptions) -> Result<ReplayReport, Box<Divergence>> {
    let result = replay_inner(sc, opts);
    if let Err(div) = &result {
        if let Some(flight) = &opts.flight {
            flight.record(
                FlightEvent::new("divergence", div.kind_label()).field("step", div.step() as u64),
            );
        }
    }
    result
}

/// Re-replay `sc` with a fresh flight recorder attached and return the
/// last `tail` recorded events as JSONL — the black-box dump a failure
/// report ends with. The replay's outcome is discarded; only the
/// recorder's contents matter here.
pub fn flight_tail(sc: &Scenario, opts: &ReplayOptions, tail: usize) -> String {
    let flight = FlightRecorder::new(tail.max(1) * 4);
    let mut opts = opts.clone();
    opts.flight = Some(flight.clone());
    let _ = replay(sc, &opts);
    flight.tail_jsonl(tail)
}

/// The splicing configuration a scenario's spec implies — shared by the
/// replay engine and the batch-forwarding oracle so every harness builds
/// the identical deployment from the same spec string.
pub(crate) fn build_config(sc: &Scenario) -> SplicingConfig {
    match sc.perturbation {
        PerturbationSpec::DegreeBased => SplicingConfig::degree_based(sc.k, 0.0, 3.0),
        PerturbationSpec::TheoremA1 => SplicingConfig {
            k: sc.k,
            perturbation: PerturbationKind::TheoremA1(TheoremA1::new(THEOREM_A1_D, sc.k)),
            include_base_slice: true,
            strategy: StrategyKind::PerturbedSpf,
        },
    }
    .with_strategy(sc.strategy)
}

fn replay_inner(sc: &Scenario, opts: &ReplayOptions) -> Result<ReplayReport, Box<Divergence>> {
    let g = sc.topology.graph().map_err(Divergence::Setup)?;
    validate_events(sc, &g)?;

    let cfg = build_config(sc);
    let base = Splicing::build(&g, &cfg, sc.build_seed);
    let mut sp = base.clone();

    // Shadow state the oracles trust: what the weights and the failure
    // mask *should* be, tracked independently of the production stack.
    let mut shadow_weights: Vec<Vec<f64>> = (0..sc.k).map(|s| base.weights(s).to_vec()).collect();
    let mut shadow_mask = EdgeMask::all_up(g.edge_count());
    let mut reweights_applied: Vec<(usize, EdgeId, f64)> = Vec::new();
    let mut reweighted_slices: HashSet<usize> = HashSet::new();

    let mut report = ReplayReport::default();
    check_deployment(
        &g,
        &sp,
        &shadow_weights,
        &shadow_mask,
        &reweighted_slices,
        sc,
        0,
        opts,
        &mut report,
    )?;

    for (i, ev) in sc.events.iter().enumerate() {
        let step = i + 1;
        match ev {
            EventSpec::FailLink(e) => {
                shadow_mask.fail(EdgeId(*e));
                sp = apply_repair(&g, &sp, &RepairEvent::LinkFailure(EdgeId(*e)), step, opts)?;
            }
            EventSpec::FailGroup(es) => {
                let ids: Vec<EdgeId> = es.iter().map(|e| EdgeId(*e)).collect();
                for e in &ids {
                    shadow_mask.fail(*e);
                }
                sp = apply_repair(&g, &sp, &RepairEvent::LinkSetFailure(ids), step, opts)?;
            }
            EventSpec::FailNode(v) => {
                let node = NodeId(*v);
                for &(_, e) in g.neighbors(node) {
                    shadow_mask.fail(e);
                }
                sp = apply_repair(&g, &sp, &RepairEvent::NodeFailure(node), step, opts)?;
            }
            EventSpec::Reweight { slice, edge, milli } => {
                let slice = *slice as usize;
                let e = EdgeId(*edge);
                let new_weight = shadow_weights[slice][e.index()] * (*milli as f64 / 1000.0);
                shadow_weights[slice][e.index()] = new_weight;
                reweights_applied.push((slice, e, new_weight));
                reweighted_slices.insert(slice);
                sp = apply_repair(
                    &g,
                    &sp,
                    &RepairEvent::SliceReweight {
                        slice,
                        edge: e,
                        new_weight,
                    },
                    step,
                    opts,
                )?;
            }
            EventSpec::Recover(e) => {
                shadow_mask.restore(EdgeId(*e));
                // Link-up re-converges from scratch, then re-applies the
                // surviving state through the incremental path.
                sp = base.clone();
                for &(slice, edge, new_weight) in &reweights_applied {
                    sp = apply_repair(
                        &g,
                        &sp,
                        &RepairEvent::SliceReweight {
                            slice,
                            edge,
                            new_weight,
                        },
                        step,
                        opts,
                    )?;
                }
                let still_failed: Vec<EdgeId> = shadow_mask.failed_edges().collect();
                if !still_failed.is_empty() {
                    sp = apply_repair(
                        &g,
                        &sp,
                        &RepairEvent::LinkSetFailure(still_failed),
                        step,
                        opts,
                    )?;
                }
            }
        }
        check_deployment(
            &g,
            &sp,
            &shadow_weights,
            &shadow_mask,
            &reweighted_slices,
            sc,
            step,
            opts,
            &mut report,
        )?;
        report.events_applied += 1;
    }
    Ok(report)
}

/// Reject schedules whose ids fall outside the materialized graph (the
/// shrinker produces such candidates; they must not masquerade as stack
/// divergences).
pub(crate) fn validate_events(sc: &Scenario, g: &Graph) -> Result<(), Box<Divergence>> {
    let (n, m) = (g.node_count() as u32, g.edge_count() as u32);
    let bad = |msg: String| Err(Box::new(Divergence::Setup(msg)));
    for ev in &sc.events {
        match ev {
            EventSpec::FailLink(e) | EventSpec::Recover(e) if *e >= m => {
                return bad(format!("edge id {e} out of range (m = {m})"));
            }
            EventSpec::FailGroup(es) => {
                if let Some(e) = es.iter().find(|e| **e >= m) {
                    return bad(format!("edge id {e} out of range (m = {m})"));
                }
            }
            EventSpec::FailNode(v) if *v >= n => {
                return bad(format!("node id {v} out of range (n = {n})"));
            }
            EventSpec::Reweight { slice, edge, milli } => {
                if *slice as usize >= sc.k {
                    return bad(format!("slice {slice} out of range (k = {})", sc.k));
                }
                if *edge >= m {
                    return bad(format!("edge id {edge} out of range (m = {m})"));
                }
                if *milli == 0 {
                    return bad("reweight factor must be positive".into());
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// One incremental production step, with optional fault injection and
/// the repair-stats accounting invariant.
fn apply_repair(
    g: &Graph,
    sp: &Splicing,
    event: &RepairEvent,
    step: usize,
    opts: &ReplayOptions,
) -> Result<Splicing, Box<Divergence>> {
    let (next, stats) = sp.repair_report(g, event);
    if let Some(flight) = &opts.flight {
        flight.record(
            FlightEvent::new("repair_event", event.kind_label())
                .field("step", step as u64)
                .field("patched", stats.patched_columns as u64)
                .field("skipped", stats.skipped_columns as u64),
        );
    }
    let columns = sp.k() * g.node_count();
    if stats.patched_columns + stats.skipped_columns > columns {
        return Err(Box::new(Divergence::Invariant {
            step,
            name: "repair-stats-bounds".into(),
            detail: format!(
                "patched {} + skipped {} exceeds {} columns",
                stats.patched_columns, stats.skipped_columns, columns
            ),
        }));
    }
    match opts.skip_patch_slice {
        None => Ok(next),
        Some(sab) if sab >= sp.k() => Ok(next),
        Some(sab) => {
            // Fault injection: hand back the post-event deployment with
            // slice `sab`'s plane still holding its pre-event columns —
            // exactly what a repair engine that skipped `patch_column`
            // for that slice would install.
            let tables: Vec<_> = (0..sp.k())
                .map(|s| {
                    if s == sab {
                        sp.tables(s)
                    } else {
                        next.tables(s)
                    }
                })
                .collect();
            let fib = splice_routing::arena::SpliceFib::from_tables(tables.iter());
            let weights: Vec<Vec<f64>> = (0..sp.k()).map(|s| next.weights(s).to_vec()).collect();
            Ok(Splicing::from_parts(
                weights,
                fib,
                next.failed_mask().clone(),
            ))
        }
    }
}

/// Oracle tables for rebuild-only strategies: re-run the strategy's
/// deterministic construction from scratch over the cumulative mask. The
/// production arena — whatever stack of incremental repairs produced it —
/// must hold exactly these columns. Shortest-path distances are not
/// defined for tree-shaped slices, so `dist` stays empty; the SPF-family
/// checks that read it are gated off for these strategies.
pub(crate) fn strategy_oracle(
    g: &Graph,
    kind: StrategyKind,
    seed: u64,
    weights: &[&[f64]],
    mask: &EdgeMask,
) -> OracleTables {
    let k = weights.len();
    let strategy = kind.instance();
    let mut fib = splice_routing::arena::SpliceFib::empty(k, g.node_count());
    with_spf_workspace(|ws| {
        for (slice, w) in weights.iter().enumerate() {
            strategy.fill_slice(g, slice, seed, w, mask, ws, &mut fib, None);
        }
    });
    let next = (0..k)
        .map(|slice| {
            g.nodes()
                .map(|t| g.nodes().map(|u| fib.lookup(slice, u, t)).collect())
                .collect()
        })
        .collect();
    OracleTables {
        next,
        dist: vec![Vec::new(); k],
    }
}

/// Compare one deployment against every oracle and invariant.
#[allow(clippy::too_many_arguments)]
fn check_deployment(
    g: &Graph,
    sp: &Splicing,
    shadow_weights: &[Vec<f64>],
    shadow_mask: &EdgeMask,
    reweighted_slices: &HashSet<usize>,
    sc: &Scenario,
    step: usize,
    opts: &ReplayOptions,
    report: &mut ReplayReport,
) -> Result<(), Box<Divergence>> {
    let k = sp.k();
    let fail = |d: Divergence| Err(Box::new(d));

    // Shadow-state drift: the deployment must carry exactly the weights
    // and failure mask the event history implies.
    if sp.failed_mask() != shadow_mask {
        return fail(Divergence::Invariant {
            step,
            name: "mask-drift".into(),
            detail: format!(
                "deployment mask fails {:?}, shadow fails {:?}",
                sp.failed_mask().failed_edges().collect::<Vec<_>>(),
                shadow_mask.failed_edges().collect::<Vec<_>>()
            ),
        });
    }
    for (s, shadow) in shadow_weights.iter().enumerate() {
        if sp.weights(s) != shadow.as_slice() {
            return fail(Divergence::Invariant {
                step,
                name: "weight-drift".into(),
                detail: format!("slice {s} weight vector differs from the event history's"),
            });
        }
    }

    // Oracle 1 + 2: from-scratch reconstruction per (slice, dst). For
    // perturbed-SPF the oracle is a fresh masked Dijkstra with
    // Bellman–Ford pinning the distances themselves; for rebuild-only
    // strategies the oracle re-runs the strategy's own deterministic
    // construction on the cumulative mask — any stacked incremental
    // repair must land on exactly that state. Distance cross-checks only
    // apply to the SPF family (tree strategies do not route on shortest
    // paths).
    let spf_family = sc.strategy == StrategyKind::PerturbedSpf;
    let weights: Vec<&[f64]> = (0..k).map(|s| sp.weights(s)).collect();
    let oracle = if spf_family {
        OracleTables::build(g, &weights, shadow_mask)
    } else {
        strategy_oracle(g, sc.strategy, sc.build_seed, &weights, shadow_mask)
    };
    for slice in 0..k {
        for t in g.nodes() {
            let bf =
                spf_family.then(|| bellman_ford_masked(g, t, weights[slice], Some(shadow_mask)));
            for u in g.nodes() {
                if let Some(bf) = &bf {
                    let (du, bu) = (oracle.dist[slice][t.index()][u.index()], bf[u.index()]);
                    report.distance_checks += 1;
                    if !((du.is_infinite() && bu.is_infinite()) || (du - bu).abs() < 1e-9) {
                        return fail(Divergence::Distance {
                            step,
                            slice,
                            dst: t.0,
                            node: u.0,
                            dijkstra: du,
                            bellman_ford: bu,
                        });
                    }
                }
                let got = sp.next_hop(slice, u, t);
                let want = oracle.next_hop(slice, u, t);
                report.next_hop_checks += 1;
                if got != want {
                    let enc = |h: Option<(NodeId, EdgeId)>| h.map(|(n, e)| (n.0, e.0));
                    return fail(Divergence::NextHop {
                        step,
                        slice,
                        router: u.0,
                        dst: t.0,
                        got: enc(got),
                        want: enc(want),
                    });
                }
            }
        }
    }

    // Strategy-agnostic structural invariants: no installed next hop
    // rides a failed link, and following one slice's columns toward a
    // destination never cycles (every construction promises loop-free
    // slices).
    for slice in 0..k {
        for t in g.nodes() {
            for u in g.nodes() {
                if let Some((_, e)) = sp.next_hop(slice, u, t) {
                    if !shadow_mask.is_up(e) {
                        return fail(Divergence::Invariant {
                            step,
                            name: "failed-link-next-hop".into(),
                            detail: format!(
                                "slice {slice}: router {} -> dst {} uses failed edge {}",
                                u.0, t.0, e.0
                            ),
                        });
                    }
                }
                let mut at = u;
                let mut hops = 0;
                while at != t {
                    let Some((nh, _)) = sp.next_hop(slice, at, t) else {
                        break;
                    };
                    at = nh;
                    hops += 1;
                    if hops > g.node_count() {
                        return fail(Divergence::Invariant {
                            step,
                            name: "slice-loop-freedom".into(),
                            detail: format!("slice {slice}: walk {} -> dst {} cycles", u.0, t.0),
                        });
                    }
                }
            }
        }
    }

    // Stretch bound (SPF family only: tree slices trade stretch away by
    // design): until a slice's weights are changed by a reweight event,
    // its masked distances stay within the perturbation factor of the
    // masked base (slice 0) distances.
    let factor = match sc.perturbation {
        PerturbationSpec::DegreeBased => 1.0 + 3.0,
        PerturbationSpec::TheoremA1 => 2.0 * THEOREM_A1_D * k as f64,
    };
    if spf_family && !reweighted_slices.contains(&0) {
        for slice in 1..k {
            if reweighted_slices.contains(&slice) {
                continue;
            }
            for t in g.nodes() {
                let base = &oracle.dist[0][t.index()];
                let sliced = &oracle.dist[slice][t.index()];
                for u in g.nodes() {
                    if base[u.index()].is_finite()
                        && sliced[u.index()] > factor * base[u.index()] + 1e-6
                    {
                        return fail(Divergence::Invariant {
                            step,
                            name: "stretch-bound".into(),
                            detail: format!(
                                "slice {slice} dist {} exceeds {factor} x base dist {} \
                                 for node {} -> dst {}",
                                sliced[u.index()],
                                base[u.index()],
                                u.0,
                                t.0
                            ),
                        });
                    }
                }
            }
        }
    }

    // Oracle 3: production data plane vs. the naive walker, over seeded
    // samples of flows and header strategies.
    let fwd = Forwarder::new(sp, g, shadow_mask);
    let fwd_opts = ForwarderOptions {
        ttl: opts.ttl,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(
        sc.build_seed ^ (step as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ 0xc0ffee,
    );
    let n = g.node_count() as u32;
    let strategies = [
        HeaderStrategy::Bernoulli { flip_prob: 0.5 },
        HeaderStrategy::FirstHopBiased { flip_prob: 0.7 },
        HeaderStrategy::NoRevisit { flip_prob: 0.6 },
        HeaderStrategy::BoundedSwitches {
            flip_prob: 0.8,
            max_switches: 2,
        },
    ];
    for sample in 0..opts.walk_samples {
        let src = NodeId(rng.gen_range(0..n));
        let dst = NodeId(rng.gen_range(0..n));
        if src == dst {
            continue;
        }
        let strategy = strategies[sample % strategies.len()];
        let base_slice = rng.gen_range(0..k);
        let hops = strategy.generate_hops(base_slice, 12, k, &mut rng);
        let header = splice_core::header::ForwardingBits::from_hops(&hops, k);
        let prod = fwd.forward(src, dst, header, &fwd_opts);
        let naive = naive_walk(&oracle, k, src, dst, header, fwd_opts.ttl);
        report.walks_checked += 1;
        let (psig, nsig) = (outcome_signature(&prod), outcome_signature(&naive));
        if psig != nsig {
            return fail(Divergence::Walk {
                step,
                src: src.0,
                dst: dst.0,
                hops,
                production: psig,
                oracle: nsig,
            });
        }
        // Loop/switch invariants on the production trace.
        if matches!(strategy, HeaderStrategy::NoRevisit { .. })
            && matches!(prod, ForwardingOutcome::PersistentLoop(_))
        {
            return fail(Divergence::Invariant {
                step,
                name: "no-revisit-loop-freedom".into(),
                detail: format!("persistent loop for {} -> {} hops {hops:?}", src.0, dst.0),
            });
        }
        if let HeaderStrategy::BoundedSwitches { max_switches, .. } = strategy {
            let switches = prod.trace().slice_switches();
            if switches > max_switches {
                return fail(Divergence::Invariant {
                    step,
                    name: "bounded-switches-cap".into(),
                    detail: format!(
                        "{switches} switches (> {max_switches}) for {} -> {} hops {hops:?}",
                        src.0, dst.0
                    ),
                });
            }
        }
    }
    Ok(())
}
