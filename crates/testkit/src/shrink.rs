//! Greedy scenario shrinking: given a failing [`Scenario`], find a
//! smaller one that still fails, and print the one-line replay command.
//!
//! The shrinker never needs to understand *why* a scenario fails — it
//! re-runs the caller's check on every candidate and keeps a candidate
//! only if the check still reports a divergence. Candidates that fail to
//! even replay ([`Divergence::Setup`], e.g. an event referencing an edge
//! the smaller topology no longer has) are discarded, not kept.
//!
//! Passes, applied to a fixpoint in order of how much they simplify:
//!
//! 1. **drop events** — remove one scheduled event at a time;
//! 2. **remove edges** — for random topologies, drop extra chords off
//!    the end (the chord stream is prefix-stable, see
//!    [`crate::scenario::TopologySpec::Random`]) and shrink the ring;
//! 3. **lower k** — fewer slices.

use crate::check::Divergence;
use crate::scenario::{Scenario, TopologySpec};

/// Outcome of a shrink run.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimal failing scenario found.
    pub scenario: Scenario,
    /// The divergence the minimal scenario produces.
    pub divergence: Divergence,
    /// Candidate scenarios evaluated.
    pub attempts: usize,
}

impl ShrinkResult {
    /// The one-line reproduction command for the minimal scenario.
    pub fn replay_command(&self) -> String {
        self.scenario.replay_command()
    }
}

/// Hard cap on candidate evaluations, so shrinking a pathological
/// scenario stays bounded.
const MAX_ATTEMPTS: usize = 400;

/// Shrink `sc` with respect to `check`: `check` must return the
/// divergence `sc` currently exhibits (the caller just observed it).
///
/// `check` is any scenario-level predicate — the plain replay for soak
/// runs, or a sabotaged replay in fault-injection tests.
pub fn shrink<F>(sc: &Scenario, initial: Divergence, check: F) -> ShrinkResult
where
    F: Fn(&Scenario) -> Option<Divergence>,
{
    let mut best = sc.clone();
    let mut best_div = initial;
    let mut attempts = 0usize;

    // Re-check a candidate; returns its divergence if it still fails.
    let mut try_candidate = |cand: &Scenario, attempts: &mut usize| -> Option<Divergence> {
        if *attempts >= MAX_ATTEMPTS {
            return None;
        }
        *attempts += 1;
        match check(cand) {
            Some(Divergence::Setup(_)) | None => None,
            Some(d) => Some(d),
        }
    };

    loop {
        let mut progressed = false;

        // Pass 1: drop one event at a time.
        let mut i = 0;
        while i < best.events.len() {
            let mut cand = best.clone();
            cand.events.remove(i);
            if let Some(d) = try_candidate(&cand, &mut attempts) {
                best = cand;
                best_div = d;
                progressed = true;
                // Same index now holds the next event.
            } else {
                i += 1;
            }
        }

        // Pass 2: shed topology, for seeded random graphs.
        if let TopologySpec::Random { nodes, extra, seed } = best.topology {
            // Chords come off the end first (cheapest structural cut)...
            let mut x = extra;
            while x > 0 {
                let mut cand = best.clone();
                cand.topology = TopologySpec::Random {
                    nodes,
                    extra: x - 1,
                    seed,
                };
                if let Some(d) = try_candidate(&cand, &mut attempts) {
                    best = cand;
                    best_div = d;
                    progressed = true;
                    x -= 1;
                } else {
                    break;
                }
            }
            // ...then the ring itself.
            if let TopologySpec::Random { nodes, extra, seed } = best.topology {
                let mut n = nodes;
                while n > 3 {
                    let mut cand = best.clone();
                    cand.topology = TopologySpec::Random {
                        nodes: n - 1,
                        extra,
                        seed,
                    };
                    if let Some(d) = try_candidate(&cand, &mut attempts) {
                        best = cand;
                        best_div = d;
                        progressed = true;
                        n -= 1;
                    } else {
                        break;
                    }
                }
            }
        }

        // Pass 3: fewer slices.
        while best.k > 1 {
            let mut cand = best.clone();
            cand.k -= 1;
            if let Some(d) = try_candidate(&cand, &mut attempts) {
                best = cand;
                best_div = d;
                progressed = true;
            } else {
                break;
            }
        }

        if !progressed || attempts >= MAX_ATTEMPTS {
            return ShrinkResult {
                scenario: best,
                divergence: best_div,
                attempts,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{EventSpec, PerturbationSpec};
    use splice_core::strategy::StrategyKind;

    fn scenario(nodes: u32, extra: u32, k: usize, events: Vec<EventSpec>) -> Scenario {
        Scenario {
            topology: TopologySpec::Random {
                nodes,
                extra,
                seed: 9,
            },
            k,
            perturbation: PerturbationSpec::DegreeBased,
            strategy: StrategyKind::PerturbedSpf,
            build_seed: 1,
            events,
        }
    }

    #[test]
    fn shrinks_to_the_failing_core() {
        // Synthetic failure: diverges iff event FailLink(1) is present,
        // regardless of everything else. The shrinker must strip all
        // other events, all chords, most of the ring, and all but one
        // slice.
        let sc = scenario(
            9,
            7,
            5,
            vec![
                EventSpec::FailLink(0),
                EventSpec::FailNode(2),
                EventSpec::FailLink(1),
                EventSpec::Recover(0),
            ],
        );
        let fails = |c: &Scenario| {
            c.events
                .contains(&EventSpec::FailLink(1))
                .then(|| Divergence::Invariant {
                    step: 0,
                    name: "synthetic".into(),
                    detail: String::new(),
                })
        };
        let initial = fails(&sc).unwrap();
        let out = shrink(&sc, initial, fails);
        assert_eq!(out.scenario.events, vec![EventSpec::FailLink(1)]);
        assert_eq!(out.scenario.k, 1);
        assert_eq!(
            out.scenario.topology,
            TopologySpec::Random {
                nodes: 3,
                extra: 0,
                seed: 9
            }
        );
        assert!(out.replay_command().starts_with("splice testkit replay "));
        assert!(out.attempts <= MAX_ATTEMPTS);
    }

    #[test]
    fn setup_failures_are_not_kept() {
        // A check that reports Setup for anything smaller than the
        // original must leave the scenario untouched.
        let sc = scenario(5, 3, 2, vec![EventSpec::FailLink(0)]);
        let original = sc.clone();
        let fails = |c: &Scenario| {
            if *c == original {
                Some(Divergence::Invariant {
                    step: 0,
                    name: "synthetic".into(),
                    detail: String::new(),
                })
            } else {
                Some(Divergence::Setup("cannot replay".into()))
            }
        };
        let initial = fails(&sc).unwrap();
        let out = shrink(&sc, initial, fails);
        assert_eq!(out.scenario, sc);
    }
}
