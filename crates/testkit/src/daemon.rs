//! Live-daemon differential replay: drive a [`Scenario`]'s event
//! schedule through the control-plane event loop
//! ([`splice_core::control::run_event_loop`]) on its own thread, exactly
//! as `spliced` does, and compare the final *published* FIB against the
//! offline batch oracle ([`crate::schedule`]).
//!
//! The equality under test is the daemon's core correctness claim: the
//! event loop coalesces opportunistically (whatever is queued when it
//! wakes, capped by `max_batch`), so the batch boundaries it picks are
//! timing-dependent — but `Splicing::repair_batch` is bit-identical to
//! folding its events one at a time, so *any* partition of the schedule
//! lands on the same deployment. A daemon run must therefore end on
//! exactly the state `schedule_to_batches` + `apply_batches` computes
//! offline, for every strategy and every batch cap.

use crate::check::{build_config, validate_events};
use crate::scenario::{EventSpec, Scenario};
use crate::schedule::{apply_batches, schedule_to_batches};
use splice_core::control::{
    control_channel, fib_checksum, run_event_loop, ControlEvent, ControlPlane, ControlStats,
};
use splice_core::slices::Splicing;
use splice_graph::{EdgeId, NodeId};
use std::sync::Arc;

/// The daemon-typed twin of an [`EventSpec`]: the two enums share the
/// wire grammar (`f4`, `g2.7`, `n1`, `w2.5.1500`, `r4`) and this is the
/// structural 1:1 between them, so a scenario's schedule can be fed to a
/// live control plane unchanged.
pub fn to_control_event(ev: &EventSpec) -> ControlEvent {
    match ev {
        EventSpec::FailLink(e) => ControlEvent::FailLink(EdgeId(*e)),
        EventSpec::FailGroup(es) => {
            ControlEvent::FailGroup(es.iter().map(|e| EdgeId(*e)).collect())
        }
        EventSpec::FailNode(v) => ControlEvent::FailNode(NodeId(*v)),
        EventSpec::Reweight { slice, edge, milli } => ControlEvent::Reweight {
            slice: *slice as usize,
            edge: EdgeId(*edge),
            milli: *milli,
        },
        EventSpec::Recover(e) => ControlEvent::Recover(EdgeId(*e)),
    }
}

/// What one live-daemon replay produced, next to its batch oracle.
#[derive(Clone, Copy, Debug)]
pub struct DaemonReplayReport {
    /// FNV-1a checksum of the deployment the event loop ended on.
    pub daemon_checksum: u64,
    /// Checksum of the offline `schedule_to_batches` + `apply_batches`
    /// result for the same schedule. Equal to `daemon_checksum` iff the
    /// daemon is faithful.
    pub batch_checksum: u64,
    /// Epoch of the daemon's final published snapshot.
    pub final_epoch: u64,
    /// Whether an external subscriber's final drained snapshot is the
    /// very arena the control plane ended on (`Arc` identity).
    pub subscriber_in_sync: bool,
    /// Control-plane work counters at exit.
    pub stats: ControlStats,
    /// Whether the loop exited via `Shutdown` (vs. dropped handles).
    pub clean_shutdown: bool,
}

/// Replay `sc`'s schedule through a live event loop and return the
/// daemon's final checksum alongside the batch oracle's.
///
/// The loop runs on its own thread fed over the control channel — the
/// same plumbing `spliced` uses — with an external [`SnapshotFeed`]
/// subscriber watching publications, so the comparison covers the full
/// channel → ingest → publish → subscribe path, not just the in-process
/// state machine.
///
/// [`SnapshotFeed`]: splice_routing::SnapshotFeed
pub fn daemon_replay(sc: &Scenario, max_batch: usize) -> Result<DaemonReplayReport, String> {
    let g = sc.topology.graph()?;
    validate_events(sc, &g).map_err(|d| d.to_string())?;
    let base = Splicing::build(&g, &build_config(sc), sc.build_seed);

    // Offline oracle: the same schedule coalesced ahead of time.
    let weights: Vec<Vec<f64>> = (0..sc.k).map(|s| base.weights(s).to_vec()).collect();
    let steps = schedule_to_batches(&g, &weights, &sc.events, max_batch.max(1));
    let batch_checksum = fib_checksum(&g, &apply_batches(&g, &base, &steps));

    // Live daemon: event loop on its own thread, events over the channel.
    let cp = ControlPlane::new(g, base, max_batch);
    let mut feed = cp.hub().subscribe();
    let (handle, rx) = control_channel();
    let worker = std::thread::spawn(move || run_event_loop(cp, rx, None));
    handle.events(sc.events.iter().map(to_control_event));
    handle.shutdown();
    let (cp, report) = worker
        .join()
        .map_err(|_| "daemon event loop panicked".to_string())?;

    feed.refresh();
    Ok(DaemonReplayReport {
        daemon_checksum: fib_checksum(cp.graph(), cp.current()),
        batch_checksum,
        final_epoch: report.final_epoch,
        subscriber_in_sync: Arc::ptr_eq(&feed.current().fib, cp.current().arena()),
        stats: report.stats,
        clean_shutdown: report.clean_shutdown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{replay, ReplayOptions};
    use crate::scenario::{PerturbationSpec, TopologySpec};
    use crate::schedule::churn_schedule;
    use splice_core::strategy::StrategyKind;

    const ALL_STRATEGIES: [StrategyKind; 4] = [
        StrategyKind::PerturbedSpf,
        StrategyKind::RandomSpanningTree,
        StrategyKind::LowStretchTree,
        StrategyKind::ArcDisjointFailover,
    ];

    fn scenario(strategy: StrategyKind, events: Vec<EventSpec>) -> Scenario {
        Scenario {
            topology: TopologySpec::Named("abilene".into()),
            k: 3,
            perturbation: PerturbationSpec::DegreeBased,
            strategy,
            build_seed: 7,
            events,
        }
    }

    /// All five event kinds through the live loop, across every slice
    /// strategy and several batch caps: the published end state must be
    /// bit-identical to the offline batch oracle, and the scenario
    /// itself must be divergence-free under the full incremental replay
    /// engine (tying the daemon, the batch path, and the one-at-a-time
    /// path to the same deployment).
    #[test]
    fn daemon_matches_batch_oracle_across_strategies() {
        let events = vec![
            EventSpec::FailLink(4),
            EventSpec::FailGroup(vec![2, 7]),
            EventSpec::Reweight {
                slice: 1,
                edge: 5,
                milli: 1500,
            },
            EventSpec::FailNode(9),
            EventSpec::Recover(4),
            EventSpec::FailLink(9),
        ];
        for strategy in ALL_STRATEGIES {
            let sc = scenario(strategy, events.clone());
            replay(&sc, &ReplayOptions::default())
                .unwrap_or_else(|d| panic!("{strategy:?}: incremental replay diverged: {d}"));
            for max_batch in [1usize, 4, 64] {
                let rep = daemon_replay(&sc, max_batch).unwrap();
                assert_eq!(
                    rep.daemon_checksum, rep.batch_checksum,
                    "{strategy:?} max_batch {max_batch}: daemon diverged from batch oracle"
                );
                assert!(
                    rep.clean_shutdown,
                    "{strategy:?}: loop must exit on Shutdown"
                );
                assert!(
                    rep.subscriber_in_sync,
                    "{strategy:?}: subscriber must end on the final arena"
                );
                assert_eq!(rep.stats.events as usize, events.len());
            }
        }
    }

    /// A long generated churn stream (failures, groups, nodes,
    /// reweights, recovery bursts) through the daemon stays checksum-
    /// identical to the batch oracle.
    #[test]
    fn daemon_survives_sustained_churn_bit_identically() {
        let topology = TopologySpec::Random {
            nodes: 8,
            extra: 6,
            seed: 21,
        };
        let g = topology.graph().unwrap();
        let events = churn_schedule(&g, 3, 80, 13);
        let sc = Scenario {
            topology,
            k: 3,
            perturbation: PerturbationSpec::DegreeBased,
            strategy: StrategyKind::PerturbedSpf,
            build_seed: 11,
            events,
        };
        let rep = daemon_replay(&sc, 8).unwrap();
        assert_eq!(rep.daemon_checksum, rep.batch_checksum);
        assert!(rep.subscriber_in_sync);
        assert_eq!(rep.stats.events, 80);
        assert!(rep.stats.rebuilds > 0, "churn schedule must recover links");
        assert!(rep.final_epoch > 0, "churn must publish new snapshots");
    }

    /// Generated scenarios (every strategy lane, every event kind over
    /// many trials) all agree with the batch oracle — the soak-shaped
    /// sweep, minus the expensive per-step oracles.
    #[test]
    fn generated_scenarios_agree_with_the_batch_oracle() {
        for trial in 0..24u64 {
            let sc = Scenario::generate(crate::scenario::derive_seed(3, 1, trial));
            let rep = daemon_replay(&sc, 4)
                .unwrap_or_else(|e| panic!("trial {trial} ({}): {e}", sc.spec()));
            assert_eq!(
                rep.daemon_checksum,
                rep.batch_checksum,
                "trial {trial} ({}) diverged",
                sc.spec()
            );
            assert!(rep.subscriber_in_sync);
        }
    }

    /// An empty schedule publishes nothing: epoch stays 0 and the
    /// subscriber keeps the primed base arena.
    #[test]
    fn empty_schedule_never_publishes() {
        let sc = scenario(StrategyKind::PerturbedSpf, Vec::new());
        let rep = daemon_replay(&sc, 4).unwrap();
        assert_eq!(rep.daemon_checksum, rep.batch_checksum);
        assert_eq!(rep.final_epoch, 0);
        assert!(rep.subscriber_in_sync);
        assert_eq!(rep.stats.publishes, 0);
    }
}
