//! Soak driver: generate random scenarios, replay each against the
//! differential oracles, and shrink + report the first divergence.
//!
//! Quick mode (CI on push):  `soak --trials 40 --seed 7`
//! Soak mode (scheduled CI): `soak --trials 2000 --seed 7 --budget-secs 600`
//!
//! Exit status: 0 if every trial replayed clean, 1 on divergence (after
//! printing the shrunk scenario and its one-line replay command), 2 on
//! bad usage.

use splice_testkit::{
    derive_seed, flight_tail, forward_oracle, replay, shrink, Divergence, ForwardOracleOptions,
    ReplayOptions, Scenario,
};
use std::time::Instant;

/// Flight-recorder events dumped after a failure report.
const FLIGHT_TAIL: usize = 16;

struct Args {
    trials: u64,
    seed: u64,
    budget_secs: Option<u64>,
    forward_flows: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        trials: 200,
        seed: 7,
        budget_secs: None,
        forward_flows: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))?
                .parse::<u64>()
                .map_err(|e| format!("bad {name} value: {e}"))
        };
        match flag.as_str() {
            "--trials" => args.trials = grab("--trials")?,
            "--seed" => args.seed = grab("--seed")?,
            "--budget-secs" => args.budget_secs = Some(grab("--budget-secs")?),
            "--forward-flows" => args.forward_flows = grab("--forward-flows")?,
            "--help" | "-h" => {
                println!(
                    "usage: soak [--trials N] [--seed S] [--budget-secs T] [--forward-flows F]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("soak: {e}");
            std::process::exit(2);
        }
    };
    let opts = ReplayOptions::default();
    let fwd_opts = ForwardOracleOptions {
        flows: args.forward_flows as usize,
        ..Default::default()
    };
    let started = Instant::now();
    let mut events_total = 0usize;
    let mut walks_total = 0usize;
    let mut flows_total = 0usize;
    let mut ran = 0u64;

    for trial in 0..args.trials {
        if let Some(budget) = args.budget_secs {
            if started.elapsed().as_secs() >= budget {
                println!("soak: budget of {budget}s reached after {ran} trials; stopping early");
                break;
            }
        }
        let sc = Scenario::generate(derive_seed(args.seed, 0, trial));
        ran += 1;
        match replay(&sc, &opts) {
            Ok(report) => {
                events_total += report.events_applied;
                walks_total += report.walks_checked;
            }
            Err(div) => {
                eprintln!("soak: trial {trial} diverged: {div}");
                eprintln!("soak: original scenario: {}", sc.spec());
                let check = |c: &Scenario| replay(c, &opts).err().map(|b| *b);
                let out = shrink(&sc, *div, check);
                report_failure(&out.scenario, &out.divergence, out.attempts, &opts);
                std::process::exit(1);
            }
        }
        // Forwarding under churn: the same scenario's flows through
        // batch, scalar, and naive engines at every repair checkpoint.
        if args.forward_flows > 0 {
            match forward_oracle(&sc, &fwd_opts) {
                Ok(report) => flows_total += report.flows_checked,
                Err(div) => {
                    eprintln!("soak: trial {trial} forward-oracle diverged: {div}");
                    eprintln!("soak: original scenario: {}", sc.spec());
                    let check = |c: &Scenario| forward_oracle(c, &fwd_opts).err().map(|b| *b);
                    let out = shrink(&sc, *div, check);
                    report_failure(&out.scenario, &out.divergence, out.attempts, &opts);
                    std::process::exit(1);
                }
            }
        }
    }

    println!(
        "soak: {ran} trials clean in {:.1}s ({events_total} events, {walks_total} walks, \
         {flows_total} flows checked) seed={}",
        started.elapsed().as_secs_f64(),
        args.seed
    );
}

fn report_failure(sc: &Scenario, div: &Divergence, attempts: usize, opts: &ReplayOptions) {
    eprintln!(
        "soak: shrunk to ({attempts} candidates tried): {}",
        sc.spec()
    );
    eprintln!("soak: divergence: {div}");
    eprintln!("soak: reproduce with:");
    eprintln!("  {}", sc.replay_command());
    eprintln!("soak: flight recorder, last {FLIGHT_TAIL} events of the shrunk replay:");
    for line in flight_tail(sc, opts, FLIGHT_TAIL).lines() {
        eprintln!("  {line}");
    }
}
