//! The scenario model: a topology plus an event schedule, fully
//! determined by (and re-creatable from) a compact seed-spec string.
//!
//! A [`Scenario`] is the unit of work for the whole harness: the soak
//! binary generates them from a trial seed, the replay engine runs them
//! through the production stack and the oracles, and the shrinker edits
//! them looking for a smaller scenario that still fails. Every scenario
//! round-trips through [`Scenario::spec`] / [`Scenario::from_spec`], so a
//! failure anywhere prints one token that reproduces it exactly:
//!
//! ```text
//! splice testkit replay rand-8-12-99/k3d/tree/s7/f4+g2.7+n1+w2.5.1500+r4
//! ```
//!
//! The third segment names the slice-construction strategy
//! ([`StrategyKind::parse`] tokens); legacy four-segment specs without it
//! parse as perturbed-SPF, so pre-strategy repro tokens keep replaying.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use splice_core::strategy::StrategyKind;
use splice_graph::Graph;

/// Split-mix the trial index into an independent seed stream (same
/// construction as `splice_sim::parallel::derive_seed`, reimplemented
/// here so the testkit stays below `splice-sim` in the crate graph).
pub fn derive_seed(base: u64, stream: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(stream.wrapping_mul(0x9e3779b97f4a7c15))
        .wrapping_add(index.wrapping_mul(0xbf58476d1ce4e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Where the scenario's graph comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologySpec {
    /// A built-in ISP map: `abilene`, `geant`, or `sprint`.
    Named(String),
    /// A seeded random graph: ring backbone `0..nodes` (unit weights,
    /// guaranteeing initial connectivity) plus `extra` random chords.
    ///
    /// Chords are drawn one at a time with a fixed number of RNG draws
    /// each, so `extra - 1` yields a strict prefix of the same graph —
    /// the property the shrinker's remove-edges pass relies on.
    Random {
        /// Ring size (≥ 3).
        nodes: u32,
        /// Extra chord count.
        extra: u32,
        /// Chord RNG seed.
        seed: u64,
    },
}

impl TopologySpec {
    /// Materialize the graph. Deterministic: same spec, same graph.
    pub fn graph(&self) -> Result<Graph, String> {
        match self {
            // Shared resolver: named ISP maps, and (transitively) any
            // generator spec the CLI accepts.
            TopologySpec::Named(name) => splice_topology::resolve(name)
                .map(|t| t.graph())
                .map_err(|e| e.to_string()),
            TopologySpec::Random { nodes, extra, seed } => {
                let n = *nodes;
                if n < 3 {
                    return Err(format!("random topology needs >= 3 nodes, got {n}"));
                }
                // The chord construction lives in the topology crate now
                // (`--topology rand-N-M-S` resolves to the same graphs);
                // the draw sequence there is frozen for prefix stability.
                Ok(splice_topology::generators::ring_with_chords(
                    n, *extra, *seed,
                ))
            }
        }
    }

    fn spec(&self) -> String {
        match self {
            TopologySpec::Named(name) => name.clone(),
            TopologySpec::Random { nodes, extra, seed } => {
                format!("rand-{nodes}-{extra}-{seed}")
            }
        }
    }

    fn from_spec(s: &str) -> Result<TopologySpec, String> {
        if let Some(rest) = s.strip_prefix("rand-") {
            let parts: Vec<&str> = rest.split('-').collect();
            if parts.len() != 3 {
                return Err(format!(
                    "bad random topology spec {s:?}; want rand-N-X-SEED"
                ));
            }
            let parse = |field: &str, what: &str| {
                field
                    .parse::<u64>()
                    .map_err(|_| format!("bad {what} in topology spec {s:?}"))
            };
            Ok(TopologySpec::Random {
                nodes: parse(parts[0], "node count")? as u32,
                extra: parse(parts[1], "extra-edge count")? as u32,
                seed: parse(parts[2], "seed")?,
            })
        } else {
            Ok(TopologySpec::Named(s.to_string()))
        }
    }
}

/// One scheduled control-plane event. Link/node ids refer to the
/// materialized graph's id space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventSpec {
    /// Fail one link (`f<edge>`).
    FailLink(u32),
    /// Fail a shared-risk group of links at once (`g<e1>.<e2>...`).
    FailGroup(Vec<u32>),
    /// Fail a node: all incident links go down (`n<node>`).
    FailNode(u32),
    /// Reweight one edge in one slice to `old * milli / 1000`
    /// (`w<slice>.<edge>.<milli>`).
    Reweight {
        /// Slice whose weight vector changes.
        slice: u32,
        /// The reweighted edge.
        edge: u32,
        /// New weight as a permille of the current weight (> 0).
        milli: u32,
    },
    /// Restore a failed link (`r<edge>`). The production stack has no
    /// incremental un-fail, so replay re-converges from a fresh build —
    /// exactly what a real control plane does on link-up.
    Recover(u32),
}

impl EventSpec {
    fn spec(&self) -> String {
        match self {
            EventSpec::FailLink(e) => format!("f{e}"),
            EventSpec::FailGroup(es) => {
                let ids: Vec<String> = es.iter().map(|e| e.to_string()).collect();
                format!("g{}", ids.join("."))
            }
            EventSpec::FailNode(v) => format!("n{v}"),
            EventSpec::Reweight { slice, edge, milli } => format!("w{slice}.{edge}.{milli}"),
            EventSpec::Recover(e) => format!("r{e}"),
        }
    }

    fn from_spec(s: &str) -> Result<EventSpec, String> {
        let num = |t: &str| -> Result<u32, String> {
            t.parse::<u32>()
                .map_err(|_| format!("bad number {t:?} in event spec {s:?}"))
        };
        let (kind, rest) = s.split_at(1);
        match kind {
            "f" => Ok(EventSpec::FailLink(num(rest)?)),
            "g" => {
                let ids: Result<Vec<u32>, String> = rest.split('.').map(num).collect();
                let ids = ids?;
                if ids.is_empty() {
                    return Err(format!("empty link group in {s:?}"));
                }
                Ok(EventSpec::FailGroup(ids))
            }
            "n" => Ok(EventSpec::FailNode(num(rest)?)),
            "w" => {
                let parts: Vec<&str> = rest.split('.').collect();
                if parts.len() != 3 {
                    return Err(format!("bad reweight {s:?}; want w<slice>.<edge>.<milli>"));
                }
                let milli = num(parts[2])?;
                if milli == 0 {
                    return Err(format!("reweight factor must be positive in {s:?}"));
                }
                Ok(EventSpec::Reweight {
                    slice: num(parts[0])?,
                    edge: num(parts[1])?,
                    milli,
                })
            }
            "r" => Ok(EventSpec::Recover(num(rest)?)),
            other => Err(format!("unknown event kind {other:?} in {s:?}")),
        }
    }
}

/// Which perturbation family the scenario builds its slices with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PerturbationSpec {
    /// The paper's degree-based `Weight(0, 3)` (spec char `d`).
    DegreeBased,
    /// Theorem A.1's full-range redraw with `D = 2` (spec char `a`);
    /// scenarios built this way additionally assert the theorem's
    /// stretch bound.
    TheoremA1,
}

/// A complete, replayable fault-injection scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Graph source.
    pub topology: TopologySpec,
    /// Slice count for the deployment under test.
    pub k: usize,
    /// Slice-construction family.
    pub perturbation: PerturbationSpec,
    /// Slice-construction strategy (perturbed-SPF, trees, arc-disjoint).
    pub strategy: StrategyKind,
    /// Seed for `Splicing::build`.
    pub build_seed: u64,
    /// The ordered event schedule.
    pub events: Vec<EventSpec>,
}

impl Scenario {
    /// The canonical one-token spec:
    /// `<topo>/k<k><p>/<strategy>/s<seed>/<events>`, events `+`-joined
    /// (empty segment for none).
    pub fn spec(&self) -> String {
        let p = match self.perturbation {
            PerturbationSpec::DegreeBased => 'd',
            PerturbationSpec::TheoremA1 => 'a',
        };
        let events: Vec<String> = self.events.iter().map(EventSpec::spec).collect();
        format!(
            "{}/k{}{}/{}/s{}/{}",
            self.topology.spec(),
            self.k,
            p,
            self.strategy.name(),
            self.build_seed,
            events.join("+")
        )
    }

    /// Parse a spec produced by [`Scenario::spec`]. The strategy segment
    /// is optional on input (legacy four-segment specs replay as
    /// perturbed-SPF) but always present in emitted specs.
    pub fn from_spec(spec: &str) -> Result<Scenario, String> {
        let parts: Vec<&str> = spec.split('/').collect();
        let (strategy, seed_seg, events_seg) = match parts.len() {
            4 => (StrategyKind::PerturbedSpf, parts[2], parts[3]),
            5 => {
                let strategy = StrategyKind::parse(parts[2])
                    .ok_or_else(|| format!("bad strategy token {:?} in {spec:?}", parts[2]))?;
                (strategy, parts[3], parts[4])
            }
            _ => {
                return Err(format!(
                    "bad scenario spec {spec:?}; want <topo>/k<k><p>/<strategy>/s<seed>/<events>"
                ));
            }
        };
        let topology = TopologySpec::from_spec(parts[0])?;
        let kseg = parts[1]
            .strip_prefix('k')
            .ok_or_else(|| format!("bad k segment {:?} in {spec:?}", parts[1]))?;
        let (knum, pch) = kseg.split_at(kseg.len().saturating_sub(1));
        let perturbation = match pch {
            "d" => PerturbationSpec::DegreeBased,
            "a" => PerturbationSpec::TheoremA1,
            other => return Err(format!("bad perturbation {other:?} in {spec:?}")),
        };
        let k: usize = knum
            .parse()
            .map_err(|_| format!("bad slice count {knum:?} in {spec:?}"))?;
        if k == 0 {
            return Err(format!("slice count must be >= 1 in {spec:?}"));
        }
        let build_seed: u64 = seed_seg
            .strip_prefix('s')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad seed segment {seed_seg:?} in {spec:?}"))?;
        let events = if events_seg.is_empty() {
            Vec::new()
        } else {
            events_seg
                .split('+')
                .map(EventSpec::from_spec)
                .collect::<Result<Vec<_>, _>>()?
        };
        Ok(Scenario {
            topology,
            k,
            perturbation,
            strategy,
            build_seed,
            events,
        })
    }

    /// Generate a random scenario from one trial seed: topology shape,
    /// slice count, perturbation family, and a 0–6 event schedule with
    /// all five event kinds represented across trials.
    pub fn generate(trial_seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(trial_seed);
        // Mostly random graphs (they shrink well); occasionally the real
        // Abilene map so the named path stays exercised.
        let topology = if rng.gen_bool(0.15) {
            TopologySpec::Named("abilene".into())
        } else {
            TopologySpec::Random {
                nodes: rng.gen_range(3..=10),
                extra: rng.gen_range(0..=14),
                seed: rng.gen(),
            }
        };
        let g = topology
            .graph()
            .expect("generated topology specs are always materializable");
        let (n, m) = (g.node_count() as u32, g.edge_count() as u32);
        let k = rng.gen_range(1..=5usize);
        let perturbation = if rng.gen_bool(0.25) {
            PerturbationSpec::TheoremA1
        } else {
            PerturbationSpec::DegreeBased
        };
        // Mostly the paper's perturbed-SPF (it exercises the delta-repair
        // engine); the rebuild-only constructions each keep a lane.
        let strategy = match rng.gen_range(0..8u32) {
            0 => StrategyKind::RandomSpanningTree,
            1 => StrategyKind::LowStretchTree,
            2 => StrategyKind::ArcDisjointFailover,
            _ => StrategyKind::PerturbedSpf,
        };
        let n_events = rng.gen_range(0..=6usize);
        let mut events = Vec::with_capacity(n_events);
        let mut failed: Vec<u32> = Vec::new();
        for _ in 0..n_events {
            let ev = match rng.gen_range(0..10u32) {
                0..=3 => EventSpec::FailLink(rng.gen_range(0..m)),
                4..=5 => {
                    let size = rng.gen_range(2..=3.min(m as usize));
                    let mut ids: Vec<u32> = (0..size).map(|_| rng.gen_range(0..m)).collect();
                    ids.sort_unstable();
                    ids.dedup();
                    EventSpec::FailGroup(ids)
                }
                6 => EventSpec::FailNode(rng.gen_range(0..n)),
                7..=8 => EventSpec::Reweight {
                    slice: rng.gen_range(0..k as u32),
                    edge: rng.gen_range(0..m),
                    // 0.15x .. 6x, never 1000 (a true change).
                    milli: [150, 400, 700, 1300, 2500, 6000][rng.gen_range(0..6)],
                },
                _ => {
                    // Recover something that plausibly failed earlier,
                    // else an arbitrary link (a no-op recover is legal).
                    match failed.len() {
                        0 => EventSpec::Recover(rng.gen_range(0..m)),
                        len => EventSpec::Recover(failed[rng.gen_range(0..len)]),
                    }
                }
            };
            match &ev {
                EventSpec::FailLink(e) => failed.push(*e),
                EventSpec::FailGroup(es) => failed.extend(es),
                _ => {}
            }
            events.push(ev);
        }
        Scenario {
            topology,
            k,
            perturbation,
            strategy,
            build_seed: rng.gen(),
            events,
        }
    }

    /// The one-line command that reproduces this scenario.
    pub fn replay_command(&self) -> String {
        format!("splice testkit replay {}", self.spec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrip() {
        let sc = Scenario {
            topology: TopologySpec::Random {
                nodes: 8,
                extra: 12,
                seed: 99,
            },
            k: 3,
            perturbation: PerturbationSpec::DegreeBased,
            strategy: StrategyKind::PerturbedSpf,
            build_seed: 7,
            events: vec![
                EventSpec::FailLink(4),
                EventSpec::FailGroup(vec![2, 7]),
                EventSpec::FailNode(1),
                EventSpec::Reweight {
                    slice: 2,
                    edge: 5,
                    milli: 1500,
                },
                EventSpec::Recover(4),
            ],
        };
        assert_eq!(
            sc.spec(),
            "rand-8-12-99/k3d/perturbed-spf/s7/f4+g2.7+n1+w2.5.1500+r4"
        );
        assert_eq!(Scenario::from_spec(&sc.spec()).unwrap(), sc);

        let tree = Scenario {
            strategy: StrategyKind::RandomSpanningTree,
            ..sc.clone()
        };
        assert_eq!(
            tree.spec(),
            "rand-8-12-99/k3d/tree/s7/f4+g2.7+n1+w2.5.1500+r4"
        );
        assert_eq!(Scenario::from_spec(&tree.spec()).unwrap(), tree);

        let named = Scenario {
            topology: TopologySpec::Named("abilene".into()),
            k: 5,
            perturbation: PerturbationSpec::TheoremA1,
            strategy: StrategyKind::ArcDisjointFailover,
            build_seed: 123,
            events: vec![],
        };
        assert_eq!(named.spec(), "abilene/k5a/arc/s123/");
        assert_eq!(Scenario::from_spec(&named.spec()).unwrap(), named);
    }

    #[test]
    fn legacy_specs_without_strategy_parse_as_perturbed_spf() {
        let sc = Scenario::from_spec("rand-8-12-99/k3d/s7/f4+n1").unwrap();
        assert_eq!(sc.strategy, StrategyKind::PerturbedSpf);
        assert_eq!(sc.k, 3);
        assert_eq!(sc.build_seed, 7);
        assert_eq!(sc.events.len(), 2);
        // Re-emitting upgrades to the five-segment form.
        assert_eq!(sc.spec(), "rand-8-12-99/k3d/perturbed-spf/s7/f4+n1");
        // Aliases parse to the same strategy as the canonical token.
        assert_eq!(
            Scenario::from_spec("abilene/k2d/spf/s1/").unwrap().strategy,
            StrategyKind::PerturbedSpf
        );
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "",
            "abilene",
            "abilene/k3d/s7",
            "nope/k3d/s7/",
            "abilene/3d/s7/",
            "abilene/k0d/s7/",
            "abilene/kxd/s7/",
            "abilene/k3z/s7/",
            "abilene/k3d/7/",
            "abilene/k3d/s7/z9",
            "abilene/k3d/s7/w1.2",
            "abilene/k3d/s7/w1.2.0",
            "abilene/k3d/s7/g",
            "rand-3-4/k1d/s0/",
            "abilene/k3d/bogus/s7/",
            "abilene/k3d/tree/7/",
            "abilene/k3d/tree/s7/f1/extra",
        ] {
            let parsed = Scenario::from_spec(bad).and_then(|sc| sc.topology.graph());
            assert!(parsed.is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn random_topology_extra_is_a_prefix() {
        let big = TopologySpec::Random {
            nodes: 9,
            extra: 10,
            seed: 5,
        }
        .graph()
        .unwrap();
        let small = TopologySpec::Random {
            nodes: 9,
            extra: 6,
            seed: 5,
        }
        .graph()
        .unwrap();
        assert_eq!(small.edge_count() + 4, big.edge_count());
        for e in small.edge_ids() {
            let (a, b) = (small.edge(e), big.edge(e));
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert_eq!(a.weight, b.weight);
        }
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        for trial in 0..200u64 {
            let a = Scenario::generate(derive_seed(7, 0, trial));
            let b = Scenario::generate(derive_seed(7, 0, trial));
            assert_eq!(a, b);
            // Every generated scenario round-trips through its spec.
            assert_eq!(Scenario::from_spec(&a.spec()).unwrap(), a);
            let g = a.topology.graph().unwrap();
            for ev in &a.events {
                match ev {
                    EventSpec::FailLink(e) | EventSpec::Recover(e) => {
                        assert!((*e as usize) < g.edge_count())
                    }
                    EventSpec::FailGroup(es) => es
                        .iter()
                        .for_each(|e| assert!((*e as usize) < g.edge_count())),
                    EventSpec::FailNode(v) => assert!((*v as usize) < g.node_count()),
                    EventSpec::Reweight { slice, edge, milli } => {
                        assert!((*slice as usize) < a.k);
                        assert!((*edge as usize) < g.edge_count());
                        assert!(*milli > 0);
                    }
                }
            }
        }
    }
}
