//! End-to-end tests of the harness itself: clean scenarios replay
//! clean, an injected repair bug is caught, shrunk to a minimal
//! scenario, and the printed spec reproduces the failure.

use proptest::prelude::*;
use splice_core::forwarding::ForwarderOptions;
use splice_core::slices::{Splicing, SplicingConfig};
use splice_core::strategy::StrategyKind;
use splice_routing::FibCell;
use splice_testkit::strategies::{arb_backbone_graph, arb_scenario};
use splice_testkit::{
    apply_batches, churn_schedule, derive_seed, flight_tail, forward_oracle, replay,
    schedule_to_batches, shrink, Divergence, EventSpec, ForwardOracleOptions, PerturbationSpec,
    ReplayOptions, Scenario, TopologySpec,
};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The production stack survives arbitrary generated scenarios: no
    /// divergence from any oracle at any checkpoint.
    #[test]
    fn random_scenarios_replay_clean(sc in arb_scenario()) {
        let report = replay(&sc, &ReplayOptions::default());
        prop_assert!(
            report.is_ok(),
            "scenario {} diverged: {}",
            sc.spec(),
            report.unwrap_err()
        );
    }

    /// Batch, scalar, and naive forwarding agree packet-for-packet on
    /// arbitrary generated scenarios — the burst engine's analogue of
    /// `random_scenarios_replay_clean`.
    #[test]
    fn random_scenarios_forward_identically(sc in arb_scenario()) {
        let opts = ForwardOracleOptions { flows: 160, ..Default::default() };
        let report = forward_oracle(&sc, &opts);
        prop_assert!(
            report.is_ok(),
            "scenario {} diverged: {}",
            sc.spec(),
            report.unwrap_err()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A burst racing a `repair_batch` + publish never observes a torn
    /// FIB: every burst's outcomes are a pure function of the one
    /// snapshot it loaded — entirely pre-repair or entirely
    /// post-repair, for every slice-construction strategy.
    #[test]
    fn bursts_never_observe_torn_columns(
        (g, churn_seed, build_seed) in arb_backbone_graph()
            .prop_flat_map(|g| (Just(g), any::<u64>(), any::<u64>())),
    ) {
        let k = 3;
        let events = churn_schedule(&g, k, 8, churn_seed);
        for strategy in StrategyKind::ALL {
            let cfg = SplicingConfig::degree_based(k, 0.0, 3.0).with_strategy(strategy);
            let before = Splicing::build(&g, &cfg, build_seed);
            let weights: Vec<Vec<f64>> =
                (0..k).map(|s| before.weights(s).to_vec()).collect();
            let steps = schedule_to_batches(&g, &weights, &events, 4);
            let after = apply_batches(&g, &before, &steps);
            let mask = after.failed_mask().clone();

            let flow_gen = splice_traffic::FlowGen::new(splice_traffic::FlowConfig::new(
                g.node_count() as u32,
                k,
                build_seed ^ 0xb1a5,
            ));
            let mut pkts = Vec::new();
            flow_gen.stream(0).fill_burst(64, &mut pkts);

            let opts = ForwarderOptions::default();
            let mut engine = splice_dataplane::BatchForwarder::new(opts);
            let pure_before = engine.forward_burst(before.arena(), &mask, &pkts).to_vec();
            let pure_after = engine.forward_burst(after.arena(), &mask, &pkts).to_vec();

            // Race a reader draining bursts against the repair thread
            // publishing the post-churn arena mid-run.
            let cell = FibCell::new(Arc::clone(before.arena()));
            let result: Result<(), String> = std::thread::scope(|scope| {
                let publisher = scope.spawn(|| {
                    // Redo the real repair work, then publish its arena.
                    let repaired = apply_batches(&g, &before, &steps);
                    cell.publish(Arc::clone(repaired.arena()));
                });
                let mut engine = splice_dataplane::BatchForwarder::new(opts);
                let mut saw_after = false;
                for _ in 0..200 {
                    let snap = cell.load();
                    let outcomes = engine.forward_burst(&snap, &mask, &pkts);
                    let expect = if Arc::ptr_eq(&snap, before.arena()) {
                        &pure_before
                    } else {
                        saw_after = true;
                        &pure_after
                    };
                    if outcomes != expect.as_slice() {
                        return Err(format!(
                            "{strategy:?}: torn burst — outcomes match neither \
                             deployment wholesale"
                        ));
                    }
                    if saw_after {
                        break;
                    }
                }
                publisher.join().expect("publisher panicked");
                // The publish must eventually be visible to the reader.
                let snap = cell.load();
                let outcomes = engine.forward_burst(&snap, &mask, &pkts);
                if outcomes != pure_after.as_slice() {
                    return Err(format!(
                        "{strategy:?}: post-publish burst does not match the \
                         repaired deployment"
                    ));
                }
                Ok(())
            });
            prop_assert!(result.is_ok(), "{}", result.unwrap_err());
        }
    }
}

#[test]
fn generated_scenarios_replay_clean_and_deterministically() {
    // The soak binary's exact loop, in miniature.
    for trial in 0..24u64 {
        let sc = Scenario::generate(derive_seed(7, 0, trial));
        let a = replay(&sc, &ReplayOptions::default());
        let b = replay(&sc, &ReplayOptions::default());
        match (a, b) {
            (Ok(ra), Ok(rb)) => assert_eq!(ra, rb, "nondeterministic report for {}", sc.spec()),
            (Err(da), Err(db)) => {
                assert_eq!(da, db, "nondeterministic divergence for {}", sc.spec())
            }
            _ => panic!("replay of {} is nondeterministic", sc.spec()),
        }
    }
}

/// The acceptance-criterion test: inject the bug class the harness
/// exists for (a repair engine that forgets to patch one slice's
/// columns), and demand it is (1) caught, (2) shrunk to a minimal
/// scenario, and (3) reproducible from the printed spec alone.
#[test]
fn sabotaged_repair_is_caught_shrunk_and_replayable() {
    let sabotage = ReplayOptions {
        skip_patch_slice: Some(1),
        ..ReplayOptions::default()
    };
    let check = |sc: &Scenario| replay(sc, &sabotage).err().map(|b| *b);

    // Deterministically scan seeded scenarios for one where the clean
    // stack passes but the sabotaged one diverges: a single link failure
    // on a meshy graph almost always routes slice 1 around the failure,
    // so a stale slice-1 plane is visible to the oracles.
    let mut found = None;
    'scan: for seed in 0..40u64 {
        let topology = TopologySpec::Random {
            nodes: 6,
            extra: 6,
            seed,
        };
        let m = topology.graph().unwrap().edge_count() as u32;
        for edge in 0..m {
            let sc = Scenario {
                topology: topology.clone(),
                k: 3,
                perturbation: PerturbationSpec::DegreeBased,
                strategy: StrategyKind::PerturbedSpf,
                build_seed: seed,
                events: vec![EventSpec::FailLink(edge)],
            };
            if replay(&sc, &ReplayOptions::default()).is_err() {
                continue; // a real stack bug would fail the clean suite, not this scan
            }
            if let Some(div) = check(&sc) {
                found = Some((sc, div));
                break 'scan;
            }
        }
    }
    let (sc, div) = found.expect("sabotage was never observable — harness has lost its teeth");
    assert!(
        !matches!(div, Divergence::Setup(_)),
        "sabotage must surface as a stack divergence, got: {div}"
    );

    // Shrink against the sabotaged replay.
    let out = shrink(&sc, div, check);
    assert!(out.scenario.events.len() <= sc.events.len());
    assert!(out.scenario.k <= sc.k);

    // The shrunk scenario still fails, and its one-line spec reproduces
    // it from scratch — the round trip a bug report relies on.
    let spec = out.scenario.spec();
    let reparsed = Scenario::from_spec(&spec).expect("shrunk spec must parse");
    assert_eq!(reparsed, out.scenario);
    let rediv = check(&reparsed).expect("shrunk spec must still reproduce the divergence");
    assert_eq!(rediv, out.divergence);
    assert_eq!(
        out.replay_command(),
        format!("splice testkit replay {spec}")
    );

    // And the same spec replayed against the healthy stack is clean:
    // the counterexample blames the injected bug, not the scenario.
    assert!(replay(&reparsed, &ReplayOptions::default()).is_ok());

    // The failure report's black-box dump: re-replaying the shrunk
    // scenario under a flight recorder must end with the divergence
    // event, preceded by the repair that triggered it.
    let dump = flight_tail(&out.scenario, &sabotage, 16);
    let lines: Vec<&str> = dump.lines().collect();
    assert!(!lines.is_empty(), "dump must not be empty");
    assert!(
        lines.last().unwrap().contains(r#""kind":"divergence""#),
        "dump must end with the divergence event: {dump}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains(r#""kind":"repair_event""#) && l.contains(r#""patched":"#)),
        "dump must show the repairs that led up to it: {dump}"
    );

    // A clean replay under a recorder narrates repairs but reports no
    // divergence.
    let clean = flight_tail(&out.scenario, &ReplayOptions::default(), 16);
    assert!(!clean.contains(r#""kind":"divergence""#));
    assert!(clean.contains(r#""kind":"repair_event""#));
}

/// Replays accumulate the advertised coverage denominators.
#[test]
fn replay_reports_cover_all_oracles() {
    let sc = Scenario {
        topology: TopologySpec::Random {
            nodes: 5,
            extra: 4,
            seed: 3,
        },
        k: 2,
        perturbation: PerturbationSpec::DegreeBased,
        strategy: StrategyKind::PerturbedSpf,
        build_seed: 11,
        events: vec![EventSpec::FailLink(0), EventSpec::Recover(0)],
    };
    let report = replay(&sc, &ReplayOptions::default()).expect("clean scenario");
    let g = sc.topology.graph().unwrap();
    let columns = sc.k * g.node_count() * g.node_count();
    // Build + two events = three checkpoints, each covering every
    // (slice, dst, node) cell once.
    assert_eq!(report.events_applied, 2);
    assert_eq!(report.next_hop_checks, 3 * columns);
    assert_eq!(report.distance_checks, 3 * columns);
    assert!(report.walks_checked > 0);
}
