//! Fixed-bucket log2 histograms.
//!
//! Values are `u64` (for durations: nanoseconds). Bucket `b` covers the
//! half-open value range `(2^(b-1), 2^b]`, bucket 0 covers `[0, 1]`, and
//! the last bucket absorbs everything above `2^(NUM_BUCKETS-2)`. Bucket
//! selection is a `leading_zeros` instruction — no allocation, no
//! branching on data — so recording on the forwarding hot path costs two
//! relaxed atomic adds and one atomic increment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets. 64 covers the full `u64` range: nanosecond
/// recordings up to ~584 years land in a real bucket before overflow.
pub const NUM_BUCKETS: usize = 64;

/// A lock-free histogram with log2 bucket boundaries.
///
/// `scale` converts recorded integer values to exposition units (e.g.
/// `1e-9` when recording nanoseconds but exposing seconds, the
/// Prometheus convention for `_seconds` histograms).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Largest recorded value. Quantile interpolation aims at bucket
    /// upper bounds, which can overshoot the data by up to a factor of
    /// two; clamping to the running max keeps every reported quantile
    /// inside the observed range (`p99 <= max`, always).
    max: AtomicU64,
    scale: f64,
}

/// Index of the bucket a value lands in: `0` for `v <= 1`, otherwise
/// `ceil(log2(v))`, clamped into the last bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `b` in recorded (unscaled) units.
#[inline]
pub fn bucket_bound(b: usize) -> u64 {
    if b >= 63 {
        u64::MAX
    } else {
        1u64 << b
    }
}

impl Histogram {
    /// A histogram exposing raw recorded values (`scale = 1`).
    pub fn new() -> Histogram {
        Histogram::with_scale(1.0)
    }

    /// A histogram whose exposition multiplies bounds and sum by `scale`.
    pub fn with_scale(scale: f64) -> Histogram {
        Histogram {
            buckets: [(); NUM_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            scale,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds (pair with `scale = 1e-9` to
    /// expose seconds).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values in exposition units (scaled).
    pub fn sum_scaled(&self) -> f64 {
        self.sum.load(Ordering::Relaxed) as f64 * self.scale
    }

    /// The exposition scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Largest recorded value in exposition units, 0 when empty.
    pub fn max_scaled(&self) -> f64 {
        self.max.load(Ordering::Relaxed) as f64 * self.scale
    }

    /// Per-bucket counts (not cumulative).
    pub fn bucket_counts(&self) -> [u64; NUM_BUCKETS] {
        let mut out = [0u64; NUM_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Cumulative `(upper_bound_scaled, count_le)` pairs up to and
    /// including the highest non-empty bucket — the shape Prometheus
    /// `_bucket{le=...}` lines and the JSON snapshot both want.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let counts = self.bucket_counts();
        let last = match counts.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut cum = 0u64;
        (0..=last)
            .map(|b| {
                cum += counts[b];
                (bucket_bound(b) as f64 * self.scale, cum)
            })
            .collect()
    }

    /// Mean of recorded values in exposition units, 0 when empty.
    pub fn mean_scaled(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_scaled() / n as f64
        }
    }

    /// Estimate the `q`-quantile (`0 < q <= 1`) of recorded values in
    /// exposition units; 0 when empty.
    ///
    /// The rank is located in the log2 buckets and linearly interpolated
    /// between the bucket's bounds, so the estimate is exact to within
    /// the bucket's factor-of-two width — plenty for latency tails,
    /// where the decade matters more than the digit. The open-ended last
    /// bucket interpolates toward twice its lower bound. Interpolation
    /// aims at bucket upper bounds, so the raw estimate can exceed every
    /// recorded value; the result is clamped to the running maximum,
    /// guaranteeing `quantile(q) <= max_scaled()` for any `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        // 1-based rank of the target observation.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut below = 0u64;
        for (b, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if below + c >= rank {
                let lower = if b == 0 {
                    0.0
                } else {
                    bucket_bound(b - 1) as f64
                };
                let upper = if b >= NUM_BUCKETS - 1 {
                    lower * 2.0
                } else {
                    bucket_bound(b) as f64
                };
                let frac = (rank - below) as f64 / c as f64;
                let estimate = (lower + frac * (upper - lower)) * self.scale;
                // Never report a quantile above the observed maximum.
                return estimate.min(self.max_scaled());
            }
            below += c;
        }
        unreachable!("rank is clamped to the total count")
    }

    /// The (p50, p90, p99) estimates in exposition units.
    pub fn quantiles(&self) -> (f64, f64, f64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
        )
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        // Bucket 0 is [0, 1]; bucket b is (2^(b-1), 2^b].
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(9), 4);
        for b in 1..62 {
            let bound = 1u64 << b;
            assert_eq!(bucket_index(bound), b, "2^{b} belongs to bucket {b}");
            assert_eq!(bucket_index(bound + 1), b + 1, "2^{b}+1 spills over");
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        assert_eq!(bucket_bound(0), 1);
        assert_eq!(bucket_bound(10), 1024);
        assert_eq!(bucket_bound(63), u64::MAX);
        // Every value is <= its bucket's bound and > the previous bound.
        for v in [0u64, 1, 2, 3, 7, 100, 1_000_000, u64::MAX / 2] {
            let b = bucket_index(v);
            assert!(v <= bucket_bound(b));
            if b > 0 {
                assert!(v > bucket_bound(b - 1));
            }
        }
    }

    #[test]
    fn count_sum_and_mean() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 10] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_scaled(), 16.0);
        assert_eq!(h.mean_scaled(), 4.0);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        let cum = h.cumulative_buckets();
        assert!(!cum.is_empty());
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0, "bounds increase");
            assert!(w[0].1 <= w[1].1, "counts are cumulative");
        }
        assert_eq!(cum.last().unwrap().1, h.count());
    }

    #[test]
    fn empty_histogram_has_no_buckets() {
        let h = Histogram::new();
        assert!(h.cumulative_buckets().is_empty());
        assert_eq!(h.mean_scaled(), 0.0);
    }

    #[test]
    fn scale_applies_to_bounds_and_sum() {
        let h = Histogram::with_scale(1e-9);
        h.record_duration(Duration::from_nanos(1500));
        assert_eq!(h.count(), 1);
        assert!((h.sum_scaled() - 1.5e-6).abs() < 1e-15);
        let cum = h.cumulative_buckets();
        // 1500 ns lands in bucket (1024, 2048]; bound exposed in seconds.
        assert!((cum.last().unwrap().0 - 2048e-9).abs() < 1e-15);
    }

    #[test]
    fn quantiles_of_a_uniform_fill_interpolate_exactly() {
        // 1..=1000 fills every log2 bucket uniformly, so linear
        // interpolation inside a bucket recovers the true rank value.
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert!(
            (h.quantile(0.5) - 500.0).abs() < 1.0,
            "p50 = {}",
            h.quantile(0.5)
        );
        let (p50, p90, p99) = h.quantiles();
        assert!(p50 <= p90 && p90 <= p99, "quantiles are monotone");
        // p99 (rank 990) lands in bucket (512, 1024]; interpolation
        // cannot leave the bucket.
        assert!(p99 > 512.0 && p99 <= 1024.0, "p99 = {p99}");
    }

    #[test]
    fn quantile_of_a_single_value_is_that_value() {
        // One observation in bucket (64, 128]: interpolation aims at the
        // bucket bound (128), but the clamp pulls every quantile back to
        // the one value actually recorded.
        let h = Histogram::new();
        h.record(100);
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 100.0);
        }
    }

    #[test]
    fn quantiles_respect_the_scale() {
        let h = Histogram::with_scale(1e-9);
        h.record_duration(Duration::from_nanos(1500)); // bucket (1024, 2048]
        assert!((h.quantile(0.99) - 1500e-9).abs() < 1e-15);
        assert!((h.max_scaled() - 1500e-9).abs() < 1e-15);
    }

    #[test]
    fn quantiles_never_exceed_the_recorded_max() {
        // The BENCH_spf_repair regression this clamp fixes: a lone
        // straggler in a sparse tail bucket used to report a p99 above
        // the worst value ever observed.
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1000); // tail bucket (512, 1024]
        let (p50, p90, p99) = h.quantiles();
        assert!(p50 <= p90 && p90 <= p99, "quantiles are monotone");
        assert!(
            p99 <= h.max_scaled(),
            "p99 = {p99} > max = {}",
            h.max_scaled()
        );
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn max_tracks_the_largest_observation() {
        let h = Histogram::new();
        assert_eq!(h.max_scaled(), 0.0, "empty histogram has max 0");
        h.record(7);
        h.record(3);
        assert_eq!(h.max_scaled(), 7.0);
        h.record(100);
        assert_eq!(h.max_scaled(), 100.0);
        h.record(50);
        assert_eq!(h.max_scaled(), 100.0, "max never decreases");
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.quantiles(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn last_bucket_quantile_stays_finite() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let p = h.quantile(0.99);
        assert!(p.is_finite());
        assert!(p >= bucket_bound(NUM_BUCKETS - 2) as f64);
    }

    #[test]
    fn huge_durations_clamp_instead_of_panicking() {
        let h = Histogram::new();
        h.record_duration(Duration::from_secs(u64::MAX / 2));
        assert_eq!(h.count(), 1);
    }

    mod properties {
        use super::super::Histogram;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// For any sample set, quantiles are monotone in q and never
            /// exceed the recorded maximum (the clamp invariant behind
            /// every committed BENCH report's `p99 <= max`).
            #[test]
            fn quantiles_monotone_and_bounded_by_max(
                samples in proptest::collection::vec(0u64..=1u64 << 48, 1..200),
                qs in proptest::collection::vec(0.0f64..=1.0, 2..8),
            ) {
                let h = Histogram::new();
                let mut max = 0u64;
                for &s in &samples {
                    h.record(s);
                    max = max.max(s);
                }
                prop_assert_eq!(h.max_scaled(), max as f64);
                let mut qs = qs;
                qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let mut prev = 0.0f64;
                for &q in &qs {
                    let v = h.quantile(q);
                    prop_assert!(v >= prev, "quantile({}) = {} < {}", q, v, prev);
                    prop_assert!(
                        v <= max as f64,
                        "quantile({}) = {} exceeds max {}", q, v, max
                    );
                    prev = v;
                }
            }
        }
    }
}
