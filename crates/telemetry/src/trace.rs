//! Structured trace sinks: JSONL event streams for debugging.
//!
//! A [`TraceSink`] is a shared, buffered, line-oriented writer. The data
//! plane serializes each packet walk (a `DeliveryReport`) as one JSON
//! line, so a failed recovery can be replayed hop by hop with nothing
//! more than `grep` and `jq`. Emission is best-effort: a full disk must
//! not take down a simulation, so write errors are counted, not raised.

use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct SinkInner {
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
    lines: AtomicU64,
    errors: AtomicU64,
}

/// A clonable handle to a shared JSONL output stream.
#[derive(Clone)]
pub struct TraceSink {
    inner: Arc<SinkInner>,
}

impl TraceSink {
    /// Create (truncate) a JSONL file at `path`, creating parent
    /// directories.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<TraceSink> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(path)?;
        Ok(TraceSink::from_writer(Box::new(file)))
    }

    /// An in-memory sink plus a handle to the captured bytes. Intended
    /// for tests that assert on emitted lines without touching disk.
    pub fn in_memory() -> (TraceSink, Arc<Mutex<Vec<u8>>>) {
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0
                    .lock()
                    .expect("shared buffer lock")
                    .extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = TraceSink::from_writer(Box::new(Shared(Arc::clone(&buf))));
        (sink, buf)
    }

    /// Wrap any writer (used by tests to capture into memory).
    pub fn from_writer(writer: Box<dyn Write + Send>) -> TraceSink {
        TraceSink {
            inner: Arc::new(SinkInner {
                writer: Mutex::new(BufWriter::new(writer)),
                lines: AtomicU64::new(0),
                errors: AtomicU64::new(0),
            }),
        }
    }

    /// Append one line (a newline is added). Best-effort: errors are
    /// counted in [`TraceSink::error_count`] instead of propagating.
    pub fn emit(&self, line: &str) {
        let mut w = self.inner.writer.lock().expect("trace sink lock");
        let ok = w
            .write_all(line.as_bytes())
            .and_then(|_| w.write_all(b"\n"))
            .is_ok();
        if ok {
            self.inner.lines.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lines successfully emitted.
    pub fn line_count(&self) -> u64 {
        self.inner.lines.load(Ordering::Relaxed)
    }

    /// Write errors swallowed so far.
    pub fn error_count(&self) -> u64 {
        self.inner.errors.load(Ordering::Relaxed)
    }

    /// Flush buffered output to the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.inner.writer.lock().expect("trace sink lock").flush()
    }
}

impl Drop for SinkInner {
    fn drop(&mut self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_sink_roundtrip() {
        let dir = std::env::temp_dir().join("splice-telemetry-trace");
        let path = dir.join("walks.jsonl");
        let sink = TraceSink::create(&path).unwrap();
        sink.emit(r#"{"hop":1}"#);
        sink.emit(r#"{"hop":2}"#);
        sink.flush().unwrap();
        assert_eq!(sink.line_count(), 2);
        assert_eq!(sink.error_count(), 0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"hop\":1}\n{\"hop\":2}\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// N threads interleave JSONL emission; every captured line must be
    /// one of the exact lines some thread emitted — a torn write would
    /// surface as a spliced or truncated line.
    #[test]
    fn concurrent_writers_never_tear_lines() {
        let (sink, buf) = TraceSink::in_memory();
        let threads = 8u64;
        let per_thread = 250u64;
        // Long enough to straddle internal buffer boundaries.
        fn line_for(t: u64, i: u64) -> String {
            let pad = "x".repeat(97);
            format!(r#"{{"thread":{t},"seq":{i},"pad":"{pad}"}}"#)
        }

        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let sink = sink.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        sink.emit(&line_for(t, i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        sink.flush().unwrap();
        assert_eq!(sink.line_count(), threads * per_thread);
        assert_eq!(sink.error_count(), 0);

        let bytes = buf.lock().unwrap();
        let text = std::str::from_utf8(&bytes).expect("output is valid UTF-8");
        let mut expected = std::collections::HashSet::new();
        for t in 0..threads {
            for i in 0..per_thread {
                expected.insert(line_for(t, i));
            }
        }
        let mut seen = 0u64;
        for line in text.lines() {
            assert!(
                expected.remove(line),
                "line is torn, duplicated, or corrupted: {line:?}"
            );
            seen += 1;
        }
        assert_eq!(seen, threads * per_thread, "every emitted line arrived");
        assert!(expected.is_empty());
    }

    #[test]
    fn clones_share_the_stream() {
        let dir = std::env::temp_dir().join("splice-telemetry-trace-clone");
        let path = dir.join("walks.jsonl");
        let sink = TraceSink::create(&path).unwrap();
        let clone = sink.clone();
        sink.emit("a");
        clone.emit("b");
        assert_eq!(sink.line_count(), 2);
        sink.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
