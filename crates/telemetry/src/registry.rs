//! The metric registry: named handles, snapshot exposition.
//!
//! A [`Registry`] is an explicit value — there is deliberately no global
//! default — that hands out `Arc` handles to counters and histograms and
//! can render everything it has seen as Prometheus text exposition or as
//! one JSON object. Registration is idempotent: asking twice for the
//! same `(name, labels)` returns the same handle, so independent
//! subsystems can wire themselves without coordination.

use crate::counter::Counter;
use crate::histogram::Histogram;
use crate::json::{JsonArray, JsonObject};
use std::sync::{Arc, Mutex};

#[derive(Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Histogram(Arc<Histogram>),
}

struct Metric {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    handle: Handle,
}

/// A clonable, thread-safe collection of metrics.
///
/// Cloning is shallow: clones share the same underlying metrics, which
/// is how an experiment hands its registry to worker subsystems.
#[derive(Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<Vec<Metric>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut metrics = self.metrics.lock().expect("registry lock");
        if let Some(m) = metrics
            .iter()
            .find(|m| m.name == name && label_eq(&m.labels, labels))
        {
            return m.handle.clone();
        }
        let handle = make();
        metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            handle: handle.clone(),
        });
        handle
    }

    /// A counter with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// A counter with labels, e.g.
    /// `counter_with("splice_packets_dropped_total", "...", &[("reason", "ttl_expired")])`.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, help, labels, || {
            Handle::Counter(Arc::new(Counter::new()))
        }) {
            Handle::Counter(c) => c,
            Handle::Histogram(_) => panic!("metric {name} already registered as a histogram"),
        }
    }

    /// A histogram of raw values (exposition scale 1).
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_scaled(name, help, 1.0)
    }

    /// A histogram recorded in nanoseconds and exposed in seconds — the
    /// Prometheus convention for `*_seconds` duration histograms. Record
    /// into it with [`Histogram::record_duration`].
    pub fn histogram_seconds(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_scaled(name, help, 1e-9)
    }

    /// A labeled `*_seconds` duration histogram, e.g.
    /// `histogram_seconds_with("splice_spf_repair_seconds", "...", &[("strategy", "tree")])`.
    pub fn histogram_seconds_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.histogram_scaled_with(name, help, 1e-9, labels)
    }

    /// A labeled histogram of raw values (exposition scale 1).
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.histogram_scaled_with(name, help, 1.0, labels)
    }

    /// A histogram with an explicit exposition scale.
    pub fn histogram_scaled(&self, name: &str, help: &str, scale: f64) -> Arc<Histogram> {
        self.histogram_scaled_with(name, help, scale, &[])
    }

    /// A labeled histogram with an explicit exposition scale. Like
    /// counters, every distinct label set is its own series under one
    /// family name.
    pub fn histogram_scaled_with(
        &self,
        name: &str,
        help: &str,
        scale: f64,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, help, labels, || {
            Handle::Histogram(Arc::new(Histogram::with_scale(scale)))
        }) {
            Handle::Histogram(h) => h,
            Handle::Counter(_) => panic!("metric {name} already registered as a counter"),
        }
    }

    /// Render every metric as Prometheus text exposition (version 0.0.4).
    ///
    /// The exposition format requires every sample of a family to sit
    /// contiguously under a single `# HELP`/`# TYPE` header, so series
    /// are grouped by family (in first-registration order) regardless of
    /// the order labeled variants were registered in. Each histogram
    /// family is followed by a `<name>_quantile` companion gauge family
    /// carrying the p50/p90/p99 estimates (quantile series cannot live
    /// inside a `histogram`-typed family, so they get their own).
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.lock().expect("registry lock");
        let mut families: Vec<&str> = Vec::new();
        for m in metrics.iter() {
            if !families.contains(&m.name.as_str()) {
                families.push(&m.name);
            }
        }
        let mut out = String::new();
        for family in families {
            let members: Vec<&Metric> = metrics.iter().filter(|m| m.name == family).collect();
            out.push_str(&format!(
                "# HELP {} {}\n",
                family,
                escape_help(&members[0].help)
            ));
            let kind = match members[0].handle {
                Handle::Counter(_) => "counter",
                Handle::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# TYPE {family} {kind}\n"));
            for m in &members {
                match &m.handle {
                    Handle::Counter(c) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            m.name,
                            label_text(&m.labels, None),
                            c.get()
                        ));
                    }
                    Handle::Histogram(h) => {
                        for (le, cum) in h.cumulative_buckets() {
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                m.name,
                                label_text(&m.labels, Some(&format!("{le}"))),
                                cum
                            ));
                        }
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            m.name,
                            label_text(&m.labels, Some("+Inf")),
                            h.count()
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            m.name,
                            label_text(&m.labels, None),
                            h.sum_scaled()
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            m.name,
                            label_text(&m.labels, None),
                            h.count()
                        ));
                    }
                }
            }
            // Emit the quantile companion right after its parent family,
            // one gauge triple per member so labeled histogram variants
            // (e.g. per-strategy repair timings) keep distinct quantiles.
            if matches!(members[0].handle, Handle::Histogram(_)) {
                out.push_str(&format!(
                    "# HELP {family}_quantile Estimated quantiles of {family} (log2-bucket interpolation)\n"
                ));
                out.push_str(&format!("# TYPE {family}_quantile gauge\n"));
                for m in &members {
                    let Handle::Histogram(h) = &m.handle else {
                        continue;
                    };
                    let (p50, p90, p99) = h.quantiles();
                    for (q, v) in [("0.5", p50), ("0.9", p90), ("0.99", p99)] {
                        out.push_str(&format!(
                            "{family}_quantile{} {v}\n",
                            quantile_label_text(&m.labels, q)
                        ));
                    }
                }
            }
        }
        out
    }

    /// Render every metric as one JSON object:
    /// `{"counters": [...], "histograms": [...]}`.
    pub fn render_json(&self) -> String {
        let metrics = self.metrics.lock().expect("registry lock");
        let mut counters = JsonArray::new();
        let mut histograms = JsonArray::new();
        for m in metrics.iter() {
            let mut labels = JsonObject::new();
            for (k, v) in &m.labels {
                labels = labels.field_str(k, v);
            }
            match &m.handle {
                Handle::Counter(c) => {
                    counters = counters.push_raw(
                        &JsonObject::new()
                            .field_str("name", &m.name)
                            .field_raw("labels", &labels.finish())
                            .field_u64("value", c.get())
                            .finish(),
                    );
                }
                Handle::Histogram(h) => {
                    let mut buckets = JsonArray::new();
                    for (le, cum) in h.cumulative_buckets() {
                        buckets = buckets.push_raw(
                            &JsonObject::new()
                                .field_f64("le", le)
                                .field_u64("count", cum)
                                .finish(),
                        );
                    }
                    let (p50, p90, p99) = h.quantiles();
                    histograms = histograms.push_raw(
                        &JsonObject::new()
                            .field_str("name", &m.name)
                            .field_u64("count", h.count())
                            .field_f64("sum", h.sum_scaled())
                            .field_f64("mean", h.mean_scaled())
                            .field_f64("p50", p50)
                            .field_f64("p90", p90)
                            .field_f64("p99", p99)
                            .field_raw("buckets", &buckets.finish())
                            .finish(),
                    );
                }
            }
        }
        JsonObject::new()
            .field_raw("counters", &counters.finish())
            .field_raw("histograms", &histograms.finish())
            .finish()
    }
}

fn label_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want)
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

/// Escape a HELP string for the text exposition format, which gives
/// backslash and line feed special meaning (a raw newline would start a
/// bogus sample line).
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Render a Prometheus label set with a trailing `quantile` pair — the
/// companion-gauge analogue of [`label_text`], so labeled histogram
/// families keep their identifying labels on the quantile series.
fn quantile_label_text(labels: &[(String, String)], q: &str) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    parts.push(format!("quantile=\"{q}\""));
    format!("{{{}}}", parts.join(","))
}

/// Render a Prometheus label set, optionally with a trailing `le`.
fn label_text(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registration_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("splice_packets_forwarded_total", "Packets forwarded");
        let b = reg.counter("splice_packets_forwarded_total", "Packets forwarded");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same underlying counter");
    }

    #[test]
    fn labeled_counters_are_distinct() {
        let reg = Registry::new();
        let ttl = reg.counter_with("drops_total", "Drops", &[("reason", "ttl")]);
        let route = reg.counter_with("drops_total", "Drops", &[("reason", "no_route")]);
        ttl.add(3);
        route.add(5);
        let text = reg.render_prometheus();
        assert!(text.contains("drops_total{reason=\"ttl\"} 3"));
        assert!(text.contains("drops_total{reason=\"no_route\"} 5"));
        // HELP/TYPE emitted once per family.
        assert_eq!(text.matches("# TYPE drops_total counter").count(), 1);
    }

    #[test]
    fn prometheus_counter_format() {
        let reg = Registry::new();
        reg.counter("splice_deflections_total", "Deflections")
            .add(7);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP splice_deflections_total Deflections\n"));
        assert!(text.contains("# TYPE splice_deflections_total counter\n"));
        assert!(text.contains("\nsplice_deflections_total 7\n") || text.starts_with("# HELP"));
        assert!(text.contains("splice_deflections_total 7\n"));
    }

    #[test]
    fn prometheus_histogram_format() {
        let reg = Registry::new();
        let h = reg.histogram("splice_trial_duration_seconds", "Trial wall time");
        h.record(3); // bucket (2, 4]
        h.record(4);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE splice_trial_duration_seconds histogram"));
        assert!(text.contains("splice_trial_duration_seconds_bucket{le=\"4\"} 2"));
        assert!(text.contains("splice_trial_duration_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("splice_trial_duration_seconds_sum 7"));
        assert!(text.contains("splice_trial_duration_seconds_count 2"));
    }

    /// A promtool-flavored validity check of text exposition: every
    /// family is announced exactly once by `# HELP` then `# TYPE`, all
    /// of its samples sit contiguously under that header (histograms may
    /// only add the `_bucket`/`_sum`/`_count` suffixes), every sample
    /// value parses, and every histogram family ends with a `+Inf`
    /// bucket.
    fn assert_promtool_valid(text: &str) {
        let close_family = |family: &Option<(String, String)>, saw_inf: bool| {
            if let Some((name, kind)) = family {
                assert!(!kind.is_empty(), "family {name} has HELP but no TYPE");
                if kind == "histogram" {
                    assert!(saw_inf, "histogram {name} is missing its +Inf bucket");
                }
            }
        };
        let mut announced: Vec<String> = Vec::new();
        let mut family: Option<(String, String)> = None;
        let mut saw_inf = false;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap().to_string();
                assert!(!announced.contains(&name), "family {name} announced twice");
                close_family(&family, saw_inf);
                announced.push(name.clone());
                family = Some((name, String::new()));
                saw_inf = false;
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let name = it.next().unwrap();
                let kind = it.next().expect("TYPE names a kind");
                let fam = family.as_mut().expect("TYPE without a preceding HELP");
                assert_eq!(fam.0, name, "TYPE must follow its own family's HELP");
                fam.1 = kind.to_string();
            } else if !line.is_empty() {
                let (fam, kind) = family.as_ref().expect("sample before any header");
                let sample = line.split(['{', ' ']).next().unwrap();
                let suffixed = |s: &str| sample == format!("{fam}{s}");
                assert!(
                    sample == fam
                        || (kind == "histogram"
                            && (suffixed("_bucket") || suffixed("_sum") || suffixed("_count"))),
                    "sample {sample} is outside its family block ({fam})"
                );
                if suffixed("_bucket") && line.contains("le=\"+Inf\"") {
                    saw_inf = true;
                }
                let value = line.rsplit(' ').next().unwrap();
                assert!(
                    value.parse::<f64>().is_ok(),
                    "sample value {value:?} does not parse"
                );
            }
        }
        close_family(&family, saw_inf);
    }

    #[test]
    fn exposition_passes_promtool_style_parsing() {
        let reg = Registry::new();
        reg.counter_with("drops_total", "Drops", &[("reason", "ttl")])
            .inc();
        let h = reg.histogram_seconds("repair_seconds", "Repair wall time");
        h.record(1500);
        // Registered after the histogram, but the exposition must fold
        // it back into the drops_total family block.
        reg.counter_with("drops_total", "Drops", &[("reason", "no_route")])
            .add(2);
        let text = reg.render_prometheus();
        assert_promtool_valid(&text);
        let lines: Vec<&str> = text.lines().collect();
        let ttl = lines
            .iter()
            .position(|l| l.starts_with("drops_total{reason=\"ttl\"}"))
            .expect("ttl sample present");
        assert!(
            lines[ttl + 1].starts_with("drops_total{reason=\"no_route\"}"),
            "family samples must be contiguous, got {:?}",
            lines[ttl + 1]
        );
        assert_eq!(text.matches("# TYPE drops_total counter").count(), 1);
    }

    #[test]
    fn histograms_export_quantile_companion_gauges() {
        let reg = Registry::new();
        let h = reg.histogram_seconds("splice_spf_repair_seconds", "Delta repair wall time");
        for _ in 0..99 {
            h.record(1_000); // ~1 µs
        }
        h.record(1_000_000); // one 1 ms outlier
        let text = reg.render_prometheus();
        assert_promtool_valid(&text);
        assert!(text.contains("# TYPE splice_spf_repair_seconds_quantile gauge"));
        let p99_line = text
            .lines()
            .find(|l| l.starts_with("splice_spf_repair_seconds_quantile{quantile=\"0.99\"}"))
            .expect("p99 gauge present");
        let p99: f64 = p99_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(p99 > 0.0, "p99 reflects recorded data: {p99_line}");
        // Empty histograms still expose the family (gauges read 0).
        let reg = Registry::new();
        reg.histogram_seconds("empty_seconds", "Never recorded");
        let text = reg.render_prometheus();
        assert_promtool_valid(&text);
        assert!(text.contains("empty_seconds_quantile{quantile=\"0.99\"} 0"));
    }

    #[test]
    fn labeled_histograms_export_per_member_quantiles() {
        let reg = Registry::new();
        let spf = reg.histogram_with(
            "splice_fib_arena_bytes",
            "Arena footprint",
            &[("strategy", "perturbed-spf")],
        );
        let tree = reg.histogram_with(
            "splice_fib_arena_bytes",
            "Arena footprint",
            &[("strategy", "tree")],
        );
        spf.record(4096);
        tree.record(128);
        let text = reg.render_prometheus();
        assert_promtool_valid(&text);
        // Each family member gets its own quantile gauges, identifying
        // labels first and the quantile pair last.
        assert!(text.contains(
            "splice_fib_arena_bytes_quantile{strategy=\"perturbed-spf\",quantile=\"0.99\"}"
        ));
        assert!(
            text.contains("splice_fib_arena_bytes_quantile{strategy=\"tree\",quantile=\"0.5\"}")
        );
        // The TYPE header appears once per family, not per member.
        let headers = text
            .lines()
            .filter(|l| *l == "# TYPE splice_fib_arena_bytes_quantile gauge")
            .count();
        assert_eq!(headers, 1);
    }

    #[test]
    fn help_text_is_escaped() {
        let reg = Registry::new();
        reg.counter("c_total", "line one\nline two \\ done").inc();
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP c_total line one\\nline two \\\\ done\n"));
        assert_promtool_valid(&text);
    }

    #[test]
    fn json_snapshot_carries_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("h", "A histogram");
        for v in 1..=100u64 {
            h.record(v);
        }
        let json = reg.render_json();
        assert!(json.contains(r#""p50":"#));
        assert!(json.contains(r#""p90":"#));
        assert!(json.contains(r#""p99":"#));
    }

    #[test]
    fn json_snapshot_shape() {
        let reg = Registry::new();
        reg.counter("c_total", "A counter").add(2);
        let h = reg.histogram("h", "A histogram");
        h.record(1);
        let json = reg.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""name":"c_total","labels":{},"value":2"#));
        assert!(json.contains(r#""name":"h","count":1"#));
        assert!(json.contains(r#""buckets":[{"le":1,"count":1}]"#));
    }

    #[test]
    fn empty_registry_renders_empty() {
        let reg = Registry::new();
        assert_eq!(reg.render_prometheus(), "");
        assert_eq!(reg.render_json(), r#"{"counters":[],"histograms":[]}"#);
    }

    #[test]
    fn clones_share_metrics() {
        let reg = Registry::new();
        let clone = reg.clone();
        clone.counter("shared_total", "Shared").inc();
        assert!(reg.render_prometheus().contains("shared_total 1"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("m", "As counter");
        reg.histogram("m", "As histogram");
    }
}
