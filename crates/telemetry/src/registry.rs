//! The metric registry: named handles, snapshot exposition.
//!
//! A [`Registry`] is an explicit value — there is deliberately no global
//! default — that hands out `Arc` handles to counters and histograms and
//! can render everything it has seen as Prometheus text exposition or as
//! one JSON object. Registration is idempotent: asking twice for the
//! same `(name, labels)` returns the same handle, so independent
//! subsystems can wire themselves without coordination.

use crate::counter::Counter;
use crate::histogram::Histogram;
use crate::json::{JsonArray, JsonObject};
use std::sync::{Arc, Mutex};

#[derive(Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Histogram(Arc<Histogram>),
}

struct Metric {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    handle: Handle,
}

/// A clonable, thread-safe collection of metrics.
///
/// Cloning is shallow: clones share the same underlying metrics, which
/// is how an experiment hands its registry to worker subsystems.
#[derive(Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<Vec<Metric>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut metrics = self.metrics.lock().expect("registry lock");
        if let Some(m) = metrics
            .iter()
            .find(|m| m.name == name && label_eq(&m.labels, labels))
        {
            return m.handle.clone();
        }
        let handle = make();
        metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            handle: handle.clone(),
        });
        handle
    }

    /// A counter with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// A counter with labels, e.g.
    /// `counter_with("splice_packets_dropped_total", "...", &[("reason", "ttl_expired")])`.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, help, labels, || {
            Handle::Counter(Arc::new(Counter::new()))
        }) {
            Handle::Counter(c) => c,
            Handle::Histogram(_) => panic!("metric {name} already registered as a histogram"),
        }
    }

    /// A histogram of raw values (exposition scale 1).
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_scaled(name, help, 1.0)
    }

    /// A histogram recorded in nanoseconds and exposed in seconds — the
    /// Prometheus convention for `*_seconds` duration histograms. Record
    /// into it with [`Histogram::record_duration`].
    pub fn histogram_seconds(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_scaled(name, help, 1e-9)
    }

    /// A histogram with an explicit exposition scale.
    pub fn histogram_scaled(&self, name: &str, help: &str, scale: f64) -> Arc<Histogram> {
        match self.get_or_insert(name, help, &[], || {
            Handle::Histogram(Arc::new(Histogram::with_scale(scale)))
        }) {
            Handle::Histogram(h) => h,
            Handle::Counter(_) => panic!("metric {name} already registered as a counter"),
        }
    }

    /// Render every metric as Prometheus text exposition (version 0.0.4).
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.lock().expect("registry lock");
        let mut out = String::new();
        let mut seen_family: Vec<String> = Vec::new();
        for m in metrics.iter() {
            if !seen_family.contains(&m.name) {
                seen_family.push(m.name.clone());
                out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
                let kind = match m.handle {
                    Handle::Counter(_) => "counter",
                    Handle::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {} {}\n", m.name, kind));
            }
            match &m.handle {
                Handle::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        m.name,
                        label_text(&m.labels, None),
                        c.get()
                    ));
                }
                Handle::Histogram(h) => {
                    for (le, cum) in h.cumulative_buckets() {
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            m.name,
                            label_text(&m.labels, Some(&format!("{le}"))),
                            cum
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        m.name,
                        label_text(&m.labels, Some("+Inf")),
                        h.count()
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        m.name,
                        label_text(&m.labels, None),
                        h.sum_scaled()
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        m.name,
                        label_text(&m.labels, None),
                        h.count()
                    ));
                }
            }
        }
        out
    }

    /// Render every metric as one JSON object:
    /// `{"counters": [...], "histograms": [...]}`.
    pub fn render_json(&self) -> String {
        let metrics = self.metrics.lock().expect("registry lock");
        let mut counters = JsonArray::new();
        let mut histograms = JsonArray::new();
        for m in metrics.iter() {
            let mut labels = JsonObject::new();
            for (k, v) in &m.labels {
                labels = labels.field_str(k, v);
            }
            match &m.handle {
                Handle::Counter(c) => {
                    counters = counters.push_raw(
                        &JsonObject::new()
                            .field_str("name", &m.name)
                            .field_raw("labels", &labels.finish())
                            .field_u64("value", c.get())
                            .finish(),
                    );
                }
                Handle::Histogram(h) => {
                    let mut buckets = JsonArray::new();
                    for (le, cum) in h.cumulative_buckets() {
                        buckets = buckets.push_raw(
                            &JsonObject::new()
                                .field_f64("le", le)
                                .field_u64("count", cum)
                                .finish(),
                        );
                    }
                    histograms = histograms.push_raw(
                        &JsonObject::new()
                            .field_str("name", &m.name)
                            .field_u64("count", h.count())
                            .field_f64("sum", h.sum_scaled())
                            .field_f64("mean", h.mean_scaled())
                            .field_raw("buckets", &buckets.finish())
                            .finish(),
                    );
                }
            }
        }
        JsonObject::new()
            .field_raw("counters", &counters.finish())
            .field_raw("histograms", &histograms.finish())
            .finish()
    }
}

fn label_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want)
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

/// Render a Prometheus label set, optionally with a trailing `le`.
fn label_text(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registration_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("splice_packets_forwarded_total", "Packets forwarded");
        let b = reg.counter("splice_packets_forwarded_total", "Packets forwarded");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same underlying counter");
    }

    #[test]
    fn labeled_counters_are_distinct() {
        let reg = Registry::new();
        let ttl = reg.counter_with("drops_total", "Drops", &[("reason", "ttl")]);
        let route = reg.counter_with("drops_total", "Drops", &[("reason", "no_route")]);
        ttl.add(3);
        route.add(5);
        let text = reg.render_prometheus();
        assert!(text.contains("drops_total{reason=\"ttl\"} 3"));
        assert!(text.contains("drops_total{reason=\"no_route\"} 5"));
        // HELP/TYPE emitted once per family.
        assert_eq!(text.matches("# TYPE drops_total counter").count(), 1);
    }

    #[test]
    fn prometheus_counter_format() {
        let reg = Registry::new();
        reg.counter("splice_deflections_total", "Deflections")
            .add(7);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP splice_deflections_total Deflections\n"));
        assert!(text.contains("# TYPE splice_deflections_total counter\n"));
        assert!(text.contains("\nsplice_deflections_total 7\n") || text.starts_with("# HELP"));
        assert!(text.contains("splice_deflections_total 7\n"));
    }

    #[test]
    fn prometheus_histogram_format() {
        let reg = Registry::new();
        let h = reg.histogram("splice_trial_duration_seconds", "Trial wall time");
        h.record(3); // bucket (2, 4]
        h.record(4);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE splice_trial_duration_seconds histogram"));
        assert!(text.contains("splice_trial_duration_seconds_bucket{le=\"4\"} 2"));
        assert!(text.contains("splice_trial_duration_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("splice_trial_duration_seconds_sum 7"));
        assert!(text.contains("splice_trial_duration_seconds_count 2"));
    }

    #[test]
    fn json_snapshot_shape() {
        let reg = Registry::new();
        reg.counter("c_total", "A counter").add(2);
        let h = reg.histogram("h", "A histogram");
        h.record(1);
        let json = reg.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""name":"c_total","labels":{},"value":2"#));
        assert!(json.contains(r#""name":"h","count":1"#));
        assert!(json.contains(r#""buckets":[{"le":1,"count":1}]"#));
    }

    #[test]
    fn empty_registry_renders_empty() {
        let reg = Registry::new();
        assert_eq!(reg.render_prometheus(), "");
        assert_eq!(reg.render_json(), r#"{"counters":[],"histograms":[]}"#);
    }

    #[test]
    fn clones_share_metrics() {
        let reg = Registry::new();
        let clone = reg.clone();
        clone.counter("shared_total", "Shared").inc();
        assert!(reg.render_prometheus().contains("shared_total 1"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("m", "As counter");
        reg.histogram("m", "As histogram");
    }
}
