//! A minimal HTTP scrape endpoint: `std::net::TcpListener`, one accept
//! thread, no async runtime.
//!
//! [`serve`] binds an address (port `0` picks an ephemeral port — see
//! [`MetricsServer::local_addr`]) and answers three `GET` routes:
//!
//! - `/metrics` — Prometheus text exposition of the [`Registry`]
//!   (histogram families plus their `_quantile` companion gauges);
//! - `/healthz` — `ok`, for liveness probes;
//! - `/snapshot` — one JSON object: the registry snapshot plus the
//!   flight recorder's recent tail.
//!
//! Requests are served inline on the accept thread: a scrape is a small
//! snapshot read, and serializing them keeps the server from ever
//! holding more than one registry lock at a time. Slow or stuck clients
//! are cut off by read/write timeouts rather than threads piling up.
//! The server observes and never perturbs: a run with `--listen` is
//! byte-identical to one without.

use crate::flight::FlightRecorder;
use crate::json::JsonObject;
use crate::registry::Registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How many flight-recorder events `/snapshot` includes.
const SNAPSHOT_TAIL: usize = 256;

/// Per-connection socket timeout; a scrape that cannot complete in this
/// window is abandoned.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running scrape endpoint. Shuts down when dropped or via
/// [`MetricsServer::shutdown`].
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Bind `addr` (e.g. `"127.0.0.1:9090"`, or port `0` for an ephemeral
/// port) and serve `/metrics`, `/healthz`, and `/snapshot` from a
/// background thread until the returned server is shut down or dropped.
pub fn serve(
    addr: &str,
    registry: Registry,
    flight: Option<FlightRecorder>,
) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("splice-observe".into())
        .spawn(move || accept_loop(listener, registry, flight, accept_stop))?;
    Ok(MetricsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

impl MetricsServer {
    /// The address actually bound — the one to scrape when the caller
    /// asked for port `0`.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; a throwaway connection
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .field("running", &self.handle.is_some())
            .finish()
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Registry,
    flight: Option<FlightRecorder>,
    stop: Arc<AtomicBool>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        // Best-effort, like the trace sink: a dead client must not take
        // down the run being observed.
        let _ = handle_request(&mut stream, &registry, flight.as_ref());
    }
}

fn handle_request(
    stream: &mut TcpStream,
    registry: &Registry,
    flight: Option<&FlightRecorder>,
) -> std::io::Result<()> {
    // Read the request head (tiny; 4 KiB is plenty for a scrape).
    let mut buf = [0u8; 4096];
    let mut len = 0;
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or("");

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is served\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                registry.render_prometheus(),
            ),
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
            "/snapshot" => (
                "200 OK",
                "application/json; charset=utf-8",
                snapshot_json(registry, flight),
            ),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                format!("no route for {path}\n"),
            ),
        }
    };

    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The `/snapshot` body: registry metrics plus the flight tail.
fn snapshot_json(registry: &Registry, flight: Option<&FlightRecorder>) -> String {
    let mut obj = JsonObject::new().field_raw("metrics", &registry.render_json());
    if let Some(rec) = flight {
        let mut events = crate::json::JsonArray::new();
        for ev in rec.tail(SNAPSHOT_TAIL) {
            events = events.push_raw(&ev.to_json());
        }
        obj = obj
            .field_u64("flight_recorded", rec.recorded())
            .field_u64("flight_dropped", rec.dropped())
            .field_raw("flight", &events.finish());
    }
    obj.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightEvent;

    /// A bare-hands HTTP GET, returning (status line, body).
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to test server");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status = response.lines().next().unwrap_or("").to_string();
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn test_server() -> (MetricsServer, Registry, FlightRecorder) {
        let registry = Registry::new();
        let flight = FlightRecorder::new(16);
        let server = serve("127.0.0.1:0", registry.clone(), Some(flight.clone()))
            .expect("bind an ephemeral port");
        (server, registry, flight)
    }

    #[test]
    fn metrics_route_serves_the_live_registry() {
        let (server, registry, _flight) = test_server();
        registry
            .counter("splice_packets_forwarded_total", "Packets forwarded")
            .add(3);
        let (status, body) = get(server.local_addr(), "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("splice_packets_forwarded_total 3"));
        registry
            .counter("splice_packets_forwarded_total", "Packets forwarded")
            .inc();
        let (_, body) = get(server.local_addr(), "/metrics");
        assert!(
            body.contains("splice_packets_forwarded_total 4"),
            "scrapes are live"
        );
        server.shutdown();
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let (server, _registry, _flight) = test_server();
        let (status, body) = get(server.local_addr(), "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "ok\n");
        let (status, _) = get(server.local_addr(), "/nope");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        server.shutdown();
    }

    #[test]
    fn snapshot_includes_metrics_and_flight_tail() {
        let (server, registry, flight) = test_server();
        registry.counter("c_total", "A counter").inc();
        flight.record(FlightEvent::new("repair", "link_failure").field("frontier", 5));
        let (status, body) = get(server.local_addr(), "/snapshot");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains(r#""name":"c_total""#));
        assert!(body.contains(r#""kind":"repair""#));
        assert!(body.contains(r#""frontier":5"#));
        assert!(body.contains(r#""flight_recorded":1"#));
        server.shutdown();
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let (server, _registry, _flight) = test_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_and_stops_serving() {
        let (server, _registry, _flight) = test_server();
        let addr = server.local_addr();
        let (status, _) = get(addr, "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        server.shutdown();
        // The listener is gone: either the connect fails outright or the
        // connection is never answered.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut stream) => {
                let _ = write!(stream, "GET /healthz HTTP/1.1\r\n\r\n");
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let mut out = String::new();
                assert!(
                    stream.read_to_string(&mut out).is_err() || out.is_empty(),
                    "no response after shutdown"
                );
            }
        }
    }
}
