//! A minimal HTTP scrape endpoint: `std::net::TcpListener`, one accept
//! thread, no async runtime.
//!
//! [`serve`] binds an address (port `0` picks an ephemeral port — see
//! [`MetricsServer::local_addr`]) and answers three `GET` routes:
//!
//! - `/metrics` — Prometheus text exposition of the [`Registry`]
//!   (histogram families plus their `_quantile` companion gauges);
//! - `/healthz` — `ok`, for liveness probes;
//! - `/snapshot` — one JSON object: the registry snapshot plus the
//!   flight recorder's recent tail.
//!
//! [`serve_with_router`] additionally dispatches to caller-registered
//! [`Router`] routes, which is how a daemon exposes `show`-style admin
//! endpoints (`/show/fib`, `/events`, `/shutdown`) next to the scrape
//! routes without this crate knowing anything about FIBs. Registered
//! routes may accept `POST` (the request body is read up to a small
//! cap); everything unregistered keeps the old GET-only behavior.
//!
//! Requests are served inline on the accept thread: a scrape is a small
//! snapshot read, and serializing them keeps the server from ever
//! holding more than one registry lock at a time. Slow or stuck clients
//! are cut off by read/write timeouts rather than threads piling up.
//! The server observes and never perturbs: a run with `--listen` is
//! byte-identical to one without.

use crate::flight::FlightRecorder;
use crate::json::JsonObject;
use crate::registry::Registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How many flight-recorder events `/snapshot` includes.
const SNAPSHOT_TAIL: usize = 256;

/// Per-connection socket timeout; a scrape that cannot complete in this
/// window is abandoned.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Largest request (head + body) a registered route will accept. Admin
/// bodies are event specs — a few hundred bytes; anything bigger is a
/// client bug, not a use case.
const MAX_REQUEST: usize = 64 * 1024;

/// A parsed request handed to a registered [`Router`] handler.
#[derive(Clone, Debug)]
pub struct AdminRequest {
    /// HTTP method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Path with any query string stripped.
    pub path: String,
    /// Request body (empty for GET).
    pub body: String,
}

/// What a registered route handler returns.
#[derive(Clone, Debug)]
pub struct AdminResponse {
    /// Status line tail, e.g. `200 OK`.
    pub status: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl AdminResponse {
    /// `200 OK` with a plain-text body.
    pub fn text(body: impl Into<String>) -> AdminResponse {
        AdminResponse {
            status: "200 OK",
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// `200 OK` with a JSON body.
    pub fn json(body: impl Into<String>) -> AdminResponse {
        AdminResponse {
            status: "200 OK",
            content_type: "application/json; charset=utf-8",
            body: body.into(),
        }
    }

    /// `400 Bad Request` with a plain-text reason.
    pub fn bad_request(reason: impl Into<String>) -> AdminResponse {
        AdminResponse {
            status: "400 Bad Request",
            content_type: "text/plain; charset=utf-8",
            body: reason.into(),
        }
    }
}

/// A route handler: pure function of the request, shareable across the
/// accept thread's lifetime.
pub type AdminHandler = Arc<dyn Fn(&AdminRequest) -> AdminResponse + Send + Sync>;

/// Caller-registered admin routes served next to the built-in scrape
/// endpoints. Built-ins win on a path collision, so a router can never
/// shadow `/metrics`, `/healthz`, or `/snapshot`.
#[derive(Clone, Default)]
pub struct Router {
    routes: Vec<(String, String, AdminHandler)>,
}

impl Router {
    /// An empty router (what plain [`serve`] uses).
    pub fn new() -> Router {
        Router::default()
    }

    /// Register `handler` for exact matches of `method` + `path`.
    pub fn route(
        mut self,
        method: &str,
        path: &str,
        handler: impl Fn(&AdminRequest) -> AdminResponse + Send + Sync + 'static,
    ) -> Router {
        self.routes
            .push((method.to_string(), path.to_string(), Arc::new(handler)));
        self
    }

    fn dispatch(&self, req: &AdminRequest) -> Option<AdminResponse> {
        self.routes
            .iter()
            .find(|(m, p, _)| *m == req.method && *p == req.path)
            .map(|(_, _, h)| h(req))
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let paths: Vec<String> = self
            .routes
            .iter()
            .map(|(m, p, _)| format!("{m} {p}"))
            .collect();
        f.debug_struct("Router").field("routes", &paths).finish()
    }
}

/// A running scrape endpoint. Shuts down when dropped or via
/// [`MetricsServer::shutdown`].
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Bind `addr` (e.g. `"127.0.0.1:9090"`, or port `0` for an ephemeral
/// port) and serve `/metrics`, `/healthz`, and `/snapshot` from a
/// background thread until the returned server is shut down or dropped.
pub fn serve(
    addr: &str,
    registry: Registry,
    flight: Option<FlightRecorder>,
) -> std::io::Result<MetricsServer> {
    serve_with_router(addr, registry, flight, Router::new())
}

/// [`serve`] plus caller-registered admin routes. Registered routes are
/// consulted after the built-in scrape endpoints miss, and are the only
/// way a non-`GET` request is ever accepted.
pub fn serve_with_router(
    addr: &str,
    registry: Registry,
    flight: Option<FlightRecorder>,
    router: Router,
) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("splice-observe".into())
        .spawn(move || accept_loop(listener, registry, flight, router, accept_stop))?;
    Ok(MetricsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

impl MetricsServer {
    /// The address actually bound — the one to scrape when the caller
    /// asked for port `0`.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; a throwaway connection
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .field("running", &self.handle.is_some())
            .finish()
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Registry,
    flight: Option<FlightRecorder>,
    router: Router,
    stop: Arc<AtomicBool>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        // Best-effort, like the trace sink: a dead client must not take
        // down the run being observed.
        let _ = handle_request(&mut stream, &registry, flight.as_ref(), &router);
    }
}

/// Read one request: head always, body only when `Content-Length` says
/// there is one (bounded by [`MAX_REQUEST`]).
fn read_request(stream: &mut TcpStream) -> std::io::Result<(String, String, String)> {
    let mut buf = vec![0u8; 4096];
    let mut len = 0;
    let mut head_end = None;
    loop {
        if head_end.is_none() {
            if let Some(pos) = buf[..len].windows(4).position(|w| w == b"\r\n\r\n") {
                head_end = Some(pos + 4);
            }
        }
        if let Some(he) = head_end {
            let head = String::from_utf8_lossy(&buf[..he]).into_owned();
            let content_length: usize = head
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    name.eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse().ok())?
                })
                .unwrap_or(0)
                .min(MAX_REQUEST);
            if he + content_length > buf.len() {
                buf.resize(he + content_length, 0);
            }
            while len < he + content_length {
                let n = stream.read(&mut buf[len..he + content_length])?;
                if n == 0 {
                    break;
                }
                len += n;
            }
            let body = String::from_utf8_lossy(&buf[he..len.max(he)]).into_owned();
            let mut parts = head.split_whitespace();
            let method = parts.next().unwrap_or("").to_string();
            let path = parts.next().unwrap_or("");
            let path = path.split('?').next().unwrap_or("").to_string();
            return Ok((method, path, body));
        }
        if len == buf.len() {
            if buf.len() >= MAX_REQUEST {
                break;
            }
            buf.resize((buf.len() * 2).min(MAX_REQUEST), 0);
        }
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
    }
    // No complete head: treat what we have as a bare request line.
    let head = String::from_utf8_lossy(&buf[..len]).into_owned();
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or("").to_string();
    Ok((method, path, String::new()))
}

fn handle_request(
    stream: &mut TcpStream,
    registry: &Registry,
    flight: Option<&FlightRecorder>,
    router: &Router,
) -> std::io::Result<()> {
    let (method, path, body) = read_request(stream)?;

    let built_in = if method == "GET" {
        match path.as_str() {
            "/metrics" => Some((
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                registry.render_prometheus(),
            )),
            "/healthz" => Some(("200 OK", "text/plain; charset=utf-8", "ok\n".to_string())),
            "/snapshot" => Some((
                "200 OK",
                "application/json; charset=utf-8",
                snapshot_json(registry, flight),
            )),
            _ => None,
        }
    } else {
        None
    };

    let (status, content_type, body) = match built_in {
        Some(triple) => triple,
        None => {
            let req = AdminRequest { method, path, body };
            match router.dispatch(&req) {
                Some(resp) => (resp.status, resp.content_type, resp.body),
                None if req.method != "GET" => (
                    "405 Method Not Allowed",
                    "text/plain; charset=utf-8",
                    "method not served on this route\n".to_string(),
                ),
                None => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    format!("no route for {}\n", req.path),
                ),
            }
        }
    };

    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The `/snapshot` body: registry metrics plus the flight tail.
fn snapshot_json(registry: &Registry, flight: Option<&FlightRecorder>) -> String {
    let mut obj = JsonObject::new().field_raw("metrics", &registry.render_json());
    if let Some(rec) = flight {
        let mut events = crate::json::JsonArray::new();
        for ev in rec.tail(SNAPSHOT_TAIL) {
            events = events.push_raw(&ev.to_json());
        }
        obj = obj
            .field_u64("flight_recorded", rec.recorded())
            .field_u64("flight_dropped", rec.dropped())
            .field_raw("flight", &events.finish());
    }
    obj.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightEvent;

    /// A bare-hands HTTP GET, returning (status line, body).
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to test server");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status = response.lines().next().unwrap_or("").to_string();
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn test_server() -> (MetricsServer, Registry, FlightRecorder) {
        let registry = Registry::new();
        let flight = FlightRecorder::new(16);
        let server = serve("127.0.0.1:0", registry.clone(), Some(flight.clone()))
            .expect("bind an ephemeral port");
        (server, registry, flight)
    }

    #[test]
    fn metrics_route_serves_the_live_registry() {
        let (server, registry, _flight) = test_server();
        registry
            .counter("splice_packets_forwarded_total", "Packets forwarded")
            .add(3);
        let (status, body) = get(server.local_addr(), "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("splice_packets_forwarded_total 3"));
        registry
            .counter("splice_packets_forwarded_total", "Packets forwarded")
            .inc();
        let (_, body) = get(server.local_addr(), "/metrics");
        assert!(
            body.contains("splice_packets_forwarded_total 4"),
            "scrapes are live"
        );
        server.shutdown();
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let (server, _registry, _flight) = test_server();
        let (status, body) = get(server.local_addr(), "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "ok\n");
        let (status, _) = get(server.local_addr(), "/nope");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        server.shutdown();
    }

    #[test]
    fn snapshot_includes_metrics_and_flight_tail() {
        let (server, registry, flight) = test_server();
        registry.counter("c_total", "A counter").inc();
        flight.record(FlightEvent::new("repair", "link_failure").field("frontier", 5));
        let (status, body) = get(server.local_addr(), "/snapshot");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains(r#""name":"c_total""#));
        assert!(body.contains(r#""kind":"repair""#));
        assert!(body.contains(r#""frontier":5"#));
        assert!(body.contains(r#""flight_recorded":1"#));
        server.shutdown();
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let (server, _registry, _flight) = test_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
        server.shutdown();
    }

    #[test]
    fn registered_routes_serve_get_and_post_with_body() {
        let registry = Registry::new();
        let hits = Arc::new(std::sync::Mutex::new(Vec::<String>::new()));
        let record = Arc::clone(&hits);
        let router = Router::new()
            .route("GET", "/show/fib", |_req| {
                AdminResponse::json(r#"{"epoch":7}"#)
            })
            .route("POST", "/events", move |req| {
                record.lock().unwrap().push(req.body.clone());
                AdminResponse::text("accepted\n")
            });
        let server =
            serve_with_router("127.0.0.1:0", registry, None, router).expect("bind ephemeral");
        let (status, body) = get(server.local_addr(), "/show/fib");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, r#"{"epoch":7}"#);

        // POST with a body lands in the handler.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let payload = "f3+w1.2.1500";
        write!(
            stream,
            "POST /events HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.ends_with("accepted\n"));
        assert_eq!(hits.lock().unwrap().as_slice(), &[payload.to_string()]);

        // Wrong method on a known path is 405, not a handler call.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST /show/fib HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
        server.shutdown();
    }

    #[test]
    fn built_in_routes_cannot_be_shadowed() {
        let registry = Registry::new();
        registry.counter("shadow_total", "A counter").inc();
        let router =
            Router::new().route("GET", "/metrics", |_req| AdminResponse::text("shadowed!\n"));
        let server =
            serve_with_router("127.0.0.1:0", registry, None, router).expect("bind ephemeral");
        let (status, body) = get(server.local_addr(), "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("shadow_total 1"), "built-in wins: {body}");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_and_stops_serving() {
        let (server, _registry, _flight) = test_server();
        let addr = server.local_addr();
        let (status, _) = get(addr, "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        server.shutdown();
        // The listener is gone: either the connect fails outright or the
        // connection is never answered.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut stream) => {
                let _ = write!(stream, "GET /healthz HTTP/1.1\r\n\r\n");
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let mut out = String::new();
                assert!(
                    stream.read_to_string(&mut out).is_err() || out.is_empty(),
                    "no response after shutdown"
                );
            }
        }
    }
}
