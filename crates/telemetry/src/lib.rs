//! # splice-telemetry
//!
//! Observability primitives for the path-splicing workspace: lock-free
//! [`Counter`]s, fixed-bucket log2 [`Histogram`]s (zero allocation on the
//! hot path, with p50/p90/p99 quantile estimates), nesting [`Span`]s,
//! a bounded [`FlightRecorder`] keeping the last N structured events,
//! span-style [`Timer`]s, a global-free [`Registry`] that snapshots
//! everything to Prometheus text exposition or JSON, and a thread-based
//! scrape endpoint ([`serve`]) exposing `/metrics`, `/healthz`, and
//! `/snapshot` over plain `std::net`.
//!
//! Design constraints, in order:
//!
//! 1. **Never perturb the experiment.** Recording is a handful of relaxed
//!    atomic adds; nothing here draws randomness, takes a lock on the hot
//!    path, or changes scheduling. Seeded Monte-Carlo runs are
//!    bit-identical with telemetry enabled or disabled (asserted by
//!    `splice-sim`'s determinism tests).
//! 2. **No globals.** A [`Registry`] is an explicit value; handles are
//!    cheap `Arc`s cloned out of it. Two experiments in one process
//!    cannot contaminate each other's numbers.
//! 3. **No dependencies.** Pure `std`, so the data plane can afford to
//!    link it everywhere.
//!
//! ```
//! use splice_telemetry::Registry;
//! use std::time::Duration;
//!
//! let reg = Registry::new();
//! let forwarded = reg.counter("splice_packets_forwarded_total", "Packets forwarded");
//! let latency = reg.histogram_seconds("splice_trial_duration_seconds", "Trial wall time");
//! forwarded.inc();
//! latency.record_duration(Duration::from_micros(250));
//! let text = reg.render_prometheus();
//! assert!(text.contains("splice_packets_forwarded_total 1"));
//! ```

pub mod counter;
pub mod flight;
pub mod histogram;
pub mod json;
pub mod registry;
pub mod serve;
pub mod span;
pub mod timer;
pub mod trace;

pub use counter::Counter;
pub use flight::{FlightEvent, FlightRecorder, RecordedEvent};
pub use histogram::{Histogram, NUM_BUCKETS};
pub use json::{JsonArray, JsonObject};
pub use registry::Registry;
pub use serve::{serve, serve_with_router, AdminRequest, AdminResponse, MetricsServer, Router};
pub use span::{current_span, Span, SpanGuard};
pub use timer::{Ticker, Timer};
pub use trace::TraceSink;
