//! Monotonic counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free monotonic counter.
///
/// All operations are relaxed atomics: counters are statistics, not
/// synchronization. Shared across threads as `Arc<Counter>`.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
