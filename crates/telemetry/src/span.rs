//! Allocation-free structured spans.
//!
//! A [`Span`] is a pre-registered handle — a static name, a duration
//! histogram, and optionally a [`FlightRecorder`] — for one named region
//! of the system (an SPF build, a delta-repair, a lab phase). Entering
//! it returns a [`SpanGuard`] that records the elapsed wall time into
//! the histogram on drop; the hot path therefore costs one `Instant`
//! read on entry and a histogram record on exit, with no allocation.
//!
//! Spans nest: each thread keeps a stack of the names it has entered,
//! so a guard knows its parent and [`current_span`] lets the flight
//! recorder attribute events to the innermost active span. The stack is
//! thread-local, which is why [`SpanGuard`] is deliberately not `Send`.
//!
//! Like the rest of the crate, spans observe and never perturb: no
//! randomness, no locks on the hot path, no effect on scheduling —
//! instrumented runs stay bit-identical to uninstrumented ones.

use crate::flight::{FlightEvent, FlightRecorder};
use crate::histogram::Histogram;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = RefCell::new(Vec::with_capacity(8));
}

/// The innermost span entered on this thread, if any.
pub fn current_span() -> Option<&'static str> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// A named, reusable region handle. Clone it freely; clones share the
/// same histogram and recorder.
///
/// ```
/// use splice_telemetry::{Registry, Span};
///
/// let reg = Registry::new();
/// let span = Span::new(
///     "splice_spf_build",
///     reg.histogram_seconds("splice_spf_build_seconds", "SPF build wall time"),
/// );
/// {
///     let _g = span.enter();
///     // ... timed work ...
/// }
/// assert!(reg.render_prometheus().contains("splice_spf_build_seconds_count 1"));
/// ```
#[derive(Clone, Debug)]
pub struct Span {
    name: &'static str,
    hist: Arc<Histogram>,
    flight: Option<FlightRecorder>,
}

impl Span {
    /// A span recording durations into `hist`.
    pub fn new(name: &'static str, hist: Arc<Histogram>) -> Span {
        Span {
            name,
            hist,
            flight: None,
        }
    }

    /// Also emit a `kind="span"` closure event to `flight` each time the
    /// span exits.
    pub fn with_flight(mut self, flight: FlightRecorder) -> Span {
        self.flight = Some(flight);
        self
    }

    /// The span's static name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Enter the span: push it on the thread's stack and start timing.
    pub fn enter(&self) -> SpanGuard<'_> {
        let parent = current_span().unwrap_or("");
        SPAN_STACK.with(|s| s.borrow_mut().push(self.name));
        SpanGuard {
            span: self,
            parent,
            started: Instant::now(),
            _not_send: PhantomData,
        }
    }

    /// Run a closure under this span.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let _g = self.enter();
        f()
    }
}

/// An entered span: records its duration and pops the nesting stack on
/// drop. Not `Send` — it belongs to the thread whose stack it sits on.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    span: &'a Span,
    parent: &'static str,
    started: Instant,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard<'_> {
    /// The name of the span this guard entered.
    pub fn name(&self) -> &'static str {
        self.span.name
    }

    /// The span that was active when this one was entered (`""` at top
    /// level).
    pub fn parent(&self) -> &'static str {
        self.parent
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        self.span.hist.record_duration(elapsed);
        if let Some(flight) = &self.span.flight {
            let mut ev = FlightEvent::new("span", self.span.name)
                .field("nanos", elapsed.as_nanos().min(u64::MAX as u128) as u64);
            // Attribute the closure to the parent, not to itself: the
            // span just popped off the stack.
            ev.span = self.parent;
            flight.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str) -> Span {
        Span::new(name, Arc::new(Histogram::new()))
    }

    #[test]
    fn records_duration_on_drop() {
        let h = Arc::new(Histogram::new());
        let s = Span::new("region", Arc::clone(&h));
        {
            let _g = s.enter();
        }
        {
            let _g = s.enter();
        }
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn nesting_tracks_parents() {
        assert_eq!(current_span(), None);
        let outer = span("outer");
        let inner = span("inner");
        let og = outer.enter();
        assert_eq!(og.parent(), "");
        assert_eq!(current_span(), Some("outer"));
        {
            let ig = inner.enter();
            assert_eq!(ig.parent(), "outer");
            assert_eq!(current_span(), Some("inner"));
        }
        assert_eq!(current_span(), Some("outer"));
        drop(og);
        assert_eq!(current_span(), None);
    }

    #[test]
    fn time_returns_the_closure_value() {
        let h = Arc::new(Histogram::new());
        let s = Span::new("calc", Arc::clone(&h));
        let out = s.time(|| 40 + 2);
        assert_eq!(out, 42);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn span_stack_is_per_thread() {
        let outer = span("outer");
        let _g = outer.enter();
        std::thread::spawn(|| {
            assert_eq!(current_span(), None, "stacks do not leak across threads");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn exit_emits_a_flight_event_attributed_to_the_parent() {
        let rec = crate::flight::FlightRecorder::new(8);
        let outer = span("outer");
        let inner = Span::new("inner", Arc::new(Histogram::new())).with_flight(rec.clone());
        {
            let _og = outer.enter();
            let _ig = inner.enter();
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event.kind, "span");
        assert_eq!(events[0].event.name, "inner");
        assert_eq!(events[0].event.span, "outer");
        assert_eq!(events[0].event.fields[0].0, "nanos");
    }
}
