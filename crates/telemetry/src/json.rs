//! Minimal JSON emission.
//!
//! The telemetry crate must not pull serde onto the data plane, but its
//! snapshots, trace lines, and run manifests are all JSON. These builders
//! produce correctly escaped JSON text with no dependencies; they write
//! objects and arrays append-only, which is all a telemetry exporter
//! needs.

/// Escape a string for inclusion inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON value (`null` for NaN/infinity, which JSON
/// cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An append-only JSON object builder.
#[derive(Clone, Debug)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> JsonObject {
        JsonObject { buf: String::new() }
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
    }

    fn key(&mut self, k: &str) {
        self.sep();
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// Add a string field.
    pub fn field_str(mut self, k: &str, v: &str) -> JsonObject {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Add an unsigned integer field.
    pub fn field_u64(mut self, k: &str, v: u64) -> JsonObject {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a float field (`null` for non-finite values).
    pub fn field_f64(mut self, k: &str, v: f64) -> JsonObject {
        self.key(k);
        self.buf.push_str(&number(v));
        self
    }

    /// Add a boolean field.
    pub fn field_bool(mut self, k: &str, v: bool) -> JsonObject {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a field whose value is already-rendered JSON (an object,
    /// array, or other literal).
    pub fn field_raw(mut self, k: &str, v: &str) -> JsonObject {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Close the object and return its JSON text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

impl Default for JsonObject {
    fn default() -> JsonObject {
        JsonObject::new()
    }
}

/// An append-only JSON array builder.
#[derive(Clone, Debug)]
pub struct JsonArray {
    buf: String,
}

impl JsonArray {
    /// Start an empty array.
    pub fn new() -> JsonArray {
        JsonArray { buf: String::new() }
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
    }

    /// Append a string element.
    pub fn push_str_elem(mut self, v: &str) -> JsonArray {
        self.sep();
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Append an unsigned integer element.
    pub fn push_u64(mut self, v: u64) -> JsonArray {
        self.sep();
        self.buf.push_str(&v.to_string());
        self
    }

    /// Append a float element (`null` for non-finite values).
    pub fn push_f64(mut self, v: f64) -> JsonArray {
        self.sep();
        self.buf.push_str(&number(v));
        self
    }

    /// Append already-rendered JSON (an object, array, or literal).
    pub fn push_raw(mut self, v: &str) -> JsonArray {
        self.sep();
        self.buf.push_str(v);
        self
    }

    /// Close the array and return its JSON text.
    pub fn finish(self) -> String {
        format!("[{}]", self.buf)
    }
}

impl Default for JsonArray {
    fn default() -> JsonArray {
        JsonArray::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{01}"), "\\u0001");
    }

    #[test]
    fn object_layout() {
        let o = JsonObject::new()
            .field_str("name", "k = 1, \"normal\"")
            .field_u64("count", 7)
            .field_f64("mean", 1.5)
            .field_bool("ok", true)
            .field_raw("nested", "[1,2]")
            .finish();
        assert_eq!(
            o,
            r#"{"name":"k = 1, \"normal\"","count":7,"mean":1.5,"ok":true,"nested":[1,2]}"#
        );
    }

    #[test]
    fn array_layout() {
        let a = JsonArray::new()
            .push_u64(1)
            .push_f64(0.5)
            .push_str_elem("x")
            .push_raw("{}")
            .finish();
        assert_eq!(a, r#"[1,0.5,"x",{}]"#);
    }

    #[test]
    fn empty_collections() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(
            JsonObject::new().field_f64("x", f64::NAN).finish(),
            r#"{"x":null}"#
        );
    }
}
