//! The flight recorder: a bounded, non-blocking ring of recent events.
//!
//! A [`FlightRecorder`] keeps the last N structured events — repair
//! triggers, repair stats, walk anomalies, span closures — so that when
//! something goes wrong (a testkit divergence, a failed recovery) the
//! recent history ships with the report as JSONL. It is the black box
//! the shrunk repro is read against.
//!
//! Recording never blocks and never allocates: an event is a `Copy`
//! bundle of `&'static str` names and `u64` fields, a slot is claimed
//! with one `fetch_add`, and the slot's lock is only *tried* — if a
//! lapped writer (or a concurrent dump) still holds it, the event is
//! dropped and counted in [`FlightRecorder::dropped`] rather than
//! stalling the hot path. Readers take the slot locks outright, so a
//! snapshot is always a set of intact events in recording order; it may
//! merely miss events that were overwritten or dropped while it ran.
//!
//! Events recorded inside an entered [`crate::Span`] are attributed to
//! it automatically (the `span` field), linking the ring back to the
//! span-duration histograms.

use crate::json::JsonObject;
use crate::span;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Maximum number of `(label, value)` payload fields per event.
pub const MAX_FIELDS: usize = 4;

/// One recorded event: static names plus up to [`MAX_FIELDS`] numeric
/// fields. `Copy`, allocation-free, and cheap to construct inline:
///
/// ```
/// use splice_telemetry::FlightEvent;
/// let ev = FlightEvent::new("repair", "link_failure")
///     .field("frontier", 12)
///     .field("patched", 96);
/// assert_eq!(ev.kind, "repair");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Event class, e.g. `"repair"`, `"walk_anomaly"`, `"span"`.
    pub kind: &'static str,
    /// Event name within the class, e.g. `"link_failure"`, `"loop"`.
    pub name: &'static str,
    /// The span this event happened under; `""` means "fill from the
    /// thread's active span when recorded".
    pub span: &'static str,
    /// Numeric payload; unused slots have an empty label.
    pub fields: [(&'static str, u64); MAX_FIELDS],
}

impl FlightEvent {
    /// A new event with no payload fields.
    pub fn new(kind: &'static str, name: &'static str) -> FlightEvent {
        FlightEvent {
            kind,
            name,
            span: "",
            fields: [("", 0); MAX_FIELDS],
        }
    }

    /// Attribute the event to an explicit span instead of the thread's
    /// active one.
    pub fn in_span(mut self, span: &'static str) -> FlightEvent {
        self.span = span;
        self
    }

    /// Append a numeric payload field. Fields beyond [`MAX_FIELDS`]
    /// overwrite the last slot — the recorder trades completeness for a
    /// fixed-size, allocation-free event.
    pub fn field(mut self, label: &'static str, value: u64) -> FlightEvent {
        let slot = self
            .fields
            .iter()
            .position(|(l, _)| l.is_empty())
            .unwrap_or(MAX_FIELDS - 1);
        self.fields[slot] = (label, value);
        self
    }
}

/// An event as it sits in the ring: its global sequence number and a
/// timestamp relative to the recorder's creation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordedEvent {
    /// Zero-based global sequence number (total recording order).
    pub index: u64,
    /// Nanoseconds since the recorder was created.
    pub t_nanos: u64,
    /// The event payload.
    pub event: FlightEvent,
}

impl RecordedEvent {
    /// Render as one JSON object (one JSONL line without the newline).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new()
            .field_u64("i", self.index)
            .field_u64("t_nanos", self.t_nanos)
            .field_str("kind", self.event.kind)
            .field_str("name", self.event.name);
        if !self.event.span.is_empty() {
            obj = obj.field_str("span", self.event.span);
        }
        for &(label, value) in &self.event.fields {
            if !label.is_empty() {
                obj = obj.field_u64(label, value);
            }
        }
        obj.finish()
    }
}

struct Inner {
    slots: Box<[Mutex<Option<RecordedEvent>>]>,
    head: AtomicU64,
    dropped: AtomicU64,
    start: Instant,
}

/// A clonable handle to a shared ring of recent events.
///
/// Clones share the same ring, which is how one recorder threads
/// through the repair engine, the data plane, and the lab driver at
/// once.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Arc::new(Inner {
                slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
                head: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                start: Instant::now(),
            }),
        }
    }

    /// Record one event. Never blocks: a slot still held by a lapped
    /// writer or a concurrent dump drops the event instead (counted in
    /// [`FlightRecorder::dropped`]).
    pub fn record(&self, mut event: FlightEvent) {
        if event.span.is_empty() {
            event.span = span::current_span().unwrap_or("");
        }
        let t_nanos = self.inner.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let index = self.inner.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.inner.slots[(index as usize) % self.inner.slots.len()];
        match slot.try_lock() {
            // A racing older claim must not clobber a newer event.
            Ok(mut held) if held.is_none_or(|prev| prev.index <= index) => {
                *held = Some(RecordedEvent {
                    index,
                    t_nanos,
                    event,
                });
            }
            Ok(_) => {}
            Err(_) => {
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Shorthand for recording an event with no payload fields.
    pub fn note(&self, kind: &'static str, name: &'static str) {
        self.record(FlightEvent::new(kind, name));
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Total events offered to the ring (including since-overwritten
    /// and dropped ones).
    pub fn recorded(&self) -> u64 {
        self.inner.head.load(Ordering::Relaxed)
    }

    /// Events lost to slot contention (not to ring wrap-around).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// The surviving events, oldest first. At most
    /// [`FlightRecorder::capacity`] entries.
    pub fn snapshot(&self) -> Vec<RecordedEvent> {
        let mut out: Vec<RecordedEvent> = self
            .inner
            .slots
            .iter()
            .filter_map(|slot| match slot.lock() {
                Ok(held) => *held,
                Err(poisoned) => *poisoned.into_inner(),
            })
            .collect();
        out.sort_by_key(|e| e.index);
        out
    }

    /// The last `k` surviving events, oldest first.
    pub fn tail(&self, k: usize) -> Vec<RecordedEvent> {
        let mut events = self.snapshot();
        if events.len() > k {
            events.drain(..events.len() - k);
        }
        events
    }

    /// Dump every surviving event as JSONL (one JSON object per line,
    /// trailing newline when non-empty).
    pub fn to_jsonl(&self) -> String {
        render_jsonl(&self.snapshot())
    }

    /// Dump the last `k` surviving events as JSONL.
    pub fn tail_jsonl(&self, k: usize) -> String {
        render_jsonl(&self.tail(k))
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

fn render_jsonl(events: &[RecordedEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::span::Span;
    use std::sync::Arc;

    #[test]
    fn keeps_the_last_capacity_events_in_order() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record(FlightEvent::new("test", "tick").field("i", i));
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 4);
        let is: Vec<u64> = events.iter().map(|e| e.event.fields[0].1).collect();
        assert_eq!(is, vec![6, 7, 8, 9], "oldest four were overwritten");
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 0, "single-threaded recording never drops");
        assert!(
            events.windows(2).all(|w| w[0].t_nanos <= w[1].t_nanos),
            "timestamps are monotone in recording order"
        );
    }

    #[test]
    fn tail_returns_the_most_recent_k() {
        let rec = FlightRecorder::new(8);
        for i in 0..6u64 {
            rec.record(FlightEvent::new("test", "tick").field("i", i));
        }
        let tail = rec.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].event.fields[0].1, 4);
        assert_eq!(tail[1].event.fields[0].1, 5);
        assert_eq!(rec.tail(100).len(), 6, "tail is clamped to what survives");
    }

    #[test]
    fn jsonl_lines_carry_fields_and_skip_empty_span() {
        let rec = FlightRecorder::new(4);
        rec.record(
            FlightEvent::new("repair", "link_failure")
                .field("frontier", 3)
                .field("patched", 12),
        );
        let dump = rec.to_jsonl();
        assert_eq!(dump.lines().count(), 1);
        let line = dump.lines().next().unwrap();
        assert!(line.contains(r#""kind":"repair""#));
        assert!(line.contains(r#""name":"link_failure""#));
        assert!(line.contains(r#""frontier":3"#));
        assert!(line.contains(r#""patched":12"#));
        assert!(!line.contains(r#""span""#), "no span field outside a span");
        assert!(dump.ends_with('\n'));
    }

    #[test]
    fn events_inside_a_span_are_attributed_to_it() {
        let rec = FlightRecorder::new(4);
        let span = Span::new("repair_phase", Arc::new(Histogram::new()));
        {
            let _g = span.enter();
            rec.note("repair", "start");
        }
        let events = rec.snapshot();
        assert_eq!(events[0].event.span, "repair_phase");
        assert!(rec.to_jsonl().contains(r#""span":"repair_phase""#));
    }

    #[test]
    fn explicit_span_wins_over_the_active_one() {
        let rec = FlightRecorder::new(4);
        let span = Span::new("outer", Arc::new(Histogram::new()));
        let _g = span.enter();
        rec.record(FlightEvent::new("test", "tick").in_span("pinned"));
        assert_eq!(rec.snapshot()[0].event.span, "pinned");
    }

    #[test]
    fn field_overflow_clamps_into_the_last_slot() {
        let mut ev = FlightEvent::new("test", "many");
        for i in 0..6u64 {
            ev = ev.field("f", i);
        }
        assert_eq!(ev.fields[MAX_FIELDS - 1], ("f", 5));
    }

    #[test]
    fn concurrent_recording_keeps_events_intact() {
        let rec = FlightRecorder::new(64);
        let threads = 8u64;
        let per = 1000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        let tag = t * per + i;
                        // Both fields carry the same tag: a torn event
                        // would show a mismatch.
                        rec.record(
                            FlightEvent::new("stress", "tick")
                                .field("a", tag)
                                .field("b", tag),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.recorded(), threads * per);
        let events = rec.snapshot();
        assert!(events.len() <= rec.capacity());
        for ev in &events {
            assert_eq!(
                ev.event.fields[0].1, ev.event.fields[1].1,
                "event payload must never tear"
            );
        }
        for w in events.windows(2) {
            assert!(w[0].index < w[1].index, "snapshot is in recording order");
        }
    }
}
