//! Span timers: measure a region, record into a histogram on drop —
//! plus a drift-free [`Ticker`] for fixed-rate loops.

use crate::histogram::Histogram;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A running span: records its elapsed wall time into a histogram when
/// dropped (or explicitly via [`Timer::stop`]).
///
/// ```
/// use splice_telemetry::{Registry, Timer};
/// use std::sync::Arc;
///
/// let reg = Registry::new();
/// let hist = reg.histogram_seconds("phase_seconds", "Phase duration");
/// {
///     let _t = Timer::start(Arc::clone(&hist));
///     // ... timed work ...
/// }
/// assert_eq!(hist.count(), 1);
/// ```
#[derive(Debug)]
pub struct Timer {
    start: Instant,
    hist: Option<Arc<Histogram>>,
}

impl Timer {
    /// Start timing into `hist`.
    pub fn start(hist: Arc<Histogram>) -> Timer {
        Timer {
            start: Instant::now(),
            hist: Some(hist),
        }
    }

    /// Stop now and record, returning the elapsed duration.
    pub fn stop(mut self) -> std::time::Duration {
        let elapsed = self.start.elapsed();
        if let Some(h) = self.hist.take() {
            h.record_duration(elapsed);
        }
        elapsed
    }

    /// Time a closure, recording its duration.
    pub fn time<R>(hist: &Histogram, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        hist.record_duration(start.elapsed());
        out
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            h.record_duration(self.start.elapsed());
        }
    }
}

/// Deadline-based fixed-rate ticker.
///
/// `thread::sleep(interval)` loops drift: each iteration sleeps the full
/// interval *after* however long the work took, so the effective rate
/// sags under load and any reported events/sec over-counts the wall
/// clock. A `Ticker` instead sleeps to an absolute grid
/// `start + i * interval`; work time eats into the sleep, not into the
/// schedule. When a tick's work overruns one or more grid points, the
/// missed points are *skipped* (counted in [`Ticker::missed`]) rather
/// than fired back-to-back — a late control loop should not burst to
/// catch up.
///
/// ```
/// use splice_telemetry::Ticker;
/// use std::time::Duration;
///
/// let mut ticker = Ticker::new(Duration::from_millis(1));
/// let mut ticks = 0u32;
/// while ticks < 3 {
///     ticker.wait();
///     ticks += 1;
/// }
/// assert!(ticker.elapsed() >= Duration::from_millis(3));
/// ```
#[derive(Debug)]
pub struct Ticker {
    start: Instant,
    interval: Duration,
    /// Index of the next grid point to wait for (1-based after `new`).
    next: u64,
    missed: u64,
}

impl Ticker {
    /// Start a ticker whose grid points are `now + i * interval` for
    /// `i = 1, 2, …`. A zero interval degenerates to "never sleep".
    pub fn new(interval: Duration) -> Ticker {
        Ticker {
            start: Instant::now(),
            interval,
            next: 1,
            missed: 0,
        }
    }

    /// Sleep until the next grid point and return its index (1-based).
    ///
    /// If that point is already in the past, skip forward to the first
    /// future grid point, accumulating the skipped count into
    /// [`Ticker::missed`], and return immediately.
    pub fn wait(&mut self) -> u64 {
        if self.interval.is_zero() {
            let i = self.next;
            self.next += 1;
            return i;
        }
        let elapsed = self.start.elapsed();
        // First grid point strictly after `elapsed`.
        let due = elapsed.as_nanos() / self.interval.as_nanos() + 1;
        let due = u64::try_from(due).unwrap_or(u64::MAX);
        if due > self.next {
            self.missed += due - self.next;
            self.next = due;
        }
        let deadline = self
            .interval
            .saturating_mul(u32::try_from(self.next).unwrap_or(u32::MAX));
        if let Some(sleep) = deadline.checked_sub(self.start.elapsed()) {
            std::thread::sleep(sleep);
        }
        let i = self.next;
        self.next += 1;
        i
    }

    /// Grid points skipped so far because the loop body overran them.
    pub fn missed(&self) -> u64 {
        self.missed
    }

    /// Wall time since the ticker was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The configured tick interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _t = Timer::start(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stop_records_once() {
        let h = Arc::new(Histogram::new());
        let t = Timer::start(Arc::clone(&h));
        t.stop();
        assert_eq!(h.count(), 1, "stop records; drop must not double-count");
    }

    #[test]
    fn time_closure_returns_value() {
        let h = Histogram::new();
        let out = Timer::time(&h, || 40 + 2);
        assert_eq!(out, 42);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn ticker_holds_the_grid_under_light_load() {
        let mut ticker = Ticker::new(Duration::from_millis(2));
        let mut last = 0u64;
        for _ in 0..5 {
            let tick = ticker.wait();
            assert!(tick > last, "grid indices advance: {tick} after {last}");
            last = tick;
        }
        // Scheduler preemption may skip grid points, but every observed
        // tick waits for its own deadline, so wall time covers the grid
        // up to the last index — work cannot shorten the schedule. Five
        // observed ticks mean at least 5 grid points (10ms) elapsed.
        assert!(last >= 5);
        assert!(ticker.elapsed() >= Duration::from_millis(10));
        assert_eq!(last, 5 + ticker.missed(), "skips are all accounted for");
    }

    #[test]
    fn ticker_skips_missed_grid_points_instead_of_bursting() {
        let mut ticker = Ticker::new(Duration::from_millis(1));
        ticker.wait();
        // Overrun ~5 grid points, then ask for the next tick: it must
        // land on a future grid index, not replay the missed ones.
        std::thread::sleep(Duration::from_millis(5));
        let tick = ticker.wait();
        assert!(tick >= 5, "tick index jumped past the overrun: {tick}");
        assert!(ticker.missed() >= 3, "missed {}", ticker.missed());
    }

    #[test]
    fn zero_interval_ticker_never_sleeps() {
        let mut ticker = Ticker::new(Duration::ZERO);
        assert_eq!(ticker.wait(), 1);
        assert_eq!(ticker.wait(), 2);
        assert_eq!(ticker.missed(), 0);
    }
}
