//! Span timers: measure a region, record into a histogram on drop.

use crate::histogram::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// A running span: records its elapsed wall time into a histogram when
/// dropped (or explicitly via [`Timer::stop`]).
///
/// ```
/// use splice_telemetry::{Registry, Timer};
/// use std::sync::Arc;
///
/// let reg = Registry::new();
/// let hist = reg.histogram_seconds("phase_seconds", "Phase duration");
/// {
///     let _t = Timer::start(Arc::clone(&hist));
///     // ... timed work ...
/// }
/// assert_eq!(hist.count(), 1);
/// ```
#[derive(Debug)]
pub struct Timer {
    start: Instant,
    hist: Option<Arc<Histogram>>,
}

impl Timer {
    /// Start timing into `hist`.
    pub fn start(hist: Arc<Histogram>) -> Timer {
        Timer {
            start: Instant::now(),
            hist: Some(hist),
        }
    }

    /// Stop now and record, returning the elapsed duration.
    pub fn stop(mut self) -> std::time::Duration {
        let elapsed = self.start.elapsed();
        if let Some(h) = self.hist.take() {
            h.record_duration(elapsed);
        }
        elapsed
    }

    /// Time a closure, recording its duration.
    pub fn time<R>(hist: &Histogram, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        hist.record_duration(start.elapsed());
        out
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            h.record_duration(self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _t = Timer::start(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stop_records_once() {
        let h = Arc::new(Histogram::new());
        let t = Timer::start(Arc::clone(&h));
        t.stop();
        assert_eq!(h.count(), 1, "stop records; drop must not double-count");
    }

    #[test]
    fn time_closure_returns_value() {
        let h = Histogram::new();
        let out = Timer::time(&h, || 40 + 2);
        assert_eq!(out, 42);
        assert_eq!(h.count(), 1);
    }
}
