//! `spliced` — the long-running path-splicing control-plane daemon.
//!
//! One process, three thread groups, no async runtime:
//!
//! - the **event loop** ([`splice_core::control::run_event_loop`]) owns
//!   the mutable deployment, coalesces typed topology events into
//!   `repair_batch` passes, and publishes immutable FIB snapshots to a
//!   [`SnapshotHub`](splice_routing::SnapshotHub) under monotone epochs;
//! - **forwarding workers** ([`splice_dataplane::run_live`]) subscribe
//!   to the hub and drain seeded traffic bursts over whatever snapshot
//!   is current, never blocking the control plane;
//! - the **admin server** (`splice_telemetry::serve_with_router`, plain
//!   `std::net`) serves the scrape routes (`/metrics`, `/healthz`,
//!   `/snapshot`) plus the daemon routes: `GET /show/fib`,
//!   `GET /show/slices`, `POST /events` (a `+`-joined schedule of event
//!   tokens like `f4+w2.5.1500+r4`), and `POST /shutdown`.
//!
//! Events reach the loop from two producers — the `--schedule` ticker
//! (deadline-paced, one event per tick) and `POST /events` — both
//! funneled through one submission lock so the daemon's ingest order is
//! recorded exactly. On exit, everything ingested is replayed through a
//! *second* control plane with a different batch partition; the run
//! fails (exit 1) unless both final FIB checksums are bit-identical.
//! That is the daemon's contract: live coalescing must land on exactly
//! the state the offline batch path computes.
//!
//! There is no signal handling (pure std): stop the daemon with
//! `curl -X POST <addr>/shutdown` or bound the run with
//! `--duration-secs`. Both paths exit cleanly, flushing the final
//! registry snapshot (`--metrics`) and run manifest (`--manifest`).

use splice_cli::{resolve_topology, Flags};
use splice_core::control::{
    control_channel, fib_checksum, run_event_loop, ControlEvent, ControlPlane,
};
use splice_core::forwarding::ForwarderOptions;
use splice_core::slices::{Splicing, SplicingConfig};
use splice_core::strategy::StrategyKind;
use splice_dataplane::{run_live, ForwardTelemetry};
use splice_graph::EdgeMask;
use splice_routing::spf::SpfTelemetry;
use splice_telemetry::{
    serve_with_router, AdminResponse, FlightRecorder, JsonObject, Registry, Router, Ticker,
};
use splice_traffic::{FlowConfig, FlowGen};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const HELP: &str = "\
spliced — long-running path-splicing control-plane daemon

usage: spliced [flags]

flags:
  --topology NAME       built-in (sprint|geant|abilene) or a generator
                        spec like rand-24-40-7 (default sprint)
  --file PATH           edge-list topology file instead
  --k N                 number of slices (default 5)
  --seed N              build + traffic RNG seed (default 1)
  --strategy NAME       perturbed-spf (default), tree, lst or arc
  --listen ADDR         admin/scrape address (default 127.0.0.1:0;
                        the bound address is printed)
  --schedule SPEC       '+'-joined event tokens fed one per tick:
                        f<e> g<e1>.<e2> n<v> w<slice>.<edge>.<milli> r<e>
  --schedule-churn N    generate an N-event churn schedule instead
                        (seeded by --seed)
  --interval-ms N       event-injection tick, deadline-paced (default 50)
  --max-batch N         events coalesced per repair pass (default 16)
  --workers N           subscribed forwarding workers (default 2)
  --burst N             packets per worker burst (default 128)
  --duration-secs N     exit after N seconds (default 0 = run until
                        POST /shutdown)
  --metrics PATH        write the final Prometheus snapshot on exit
  --manifest PATH       write the run-manifest JSON on exit

admin routes (next to /metrics, /healthz, /snapshot):
  GET  /show/fib        current snapshot epoch and arena shape
  GET  /show/slices     deployment construction summary
  POST /events          submit a '+'-joined schedule (body)
  POST /shutdown        graceful exit: final flush, oracle check, exit 0
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        print!("{HELP}");
        return;
    }
    let flags = match Flags::parse(&argv) {
        Ok(f) => f,
        Err(e) => fail(&e),
    };
    match run(&flags) {
        Ok(()) => {}
        Err(e) => fail(&e),
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("spliced: {msg}");
    std::process::exit(2);
}

/// Append `ev` to the ingest log and enqueue it, under one lock so the
/// log's order is exactly the channel's order (the ticker and any
/// number of `POST /events` clients race on this).
fn submit(
    log: &Mutex<Vec<ControlEvent>>,
    handle: &splice_core::control::ControlHandle,
    ev: ControlEvent,
) -> bool {
    let mut log = log.lock().expect("event log lock poisoned");
    log.push(ev.clone());
    handle.event(ev)
}

fn run(flags: &Flags) -> Result<(), String> {
    let topo = resolve_topology(flags)?;
    let g = topo.graph();
    let k: usize = flags.get_parsed("k", 5)?;
    if k == 0 {
        return Err("--k must be at least 1".into());
    }
    let seed: u64 = flags.get_parsed("seed", 1)?;
    let strategy = match flags.get("strategy") {
        None => StrategyKind::PerturbedSpf,
        Some(name) => StrategyKind::parse(name).ok_or_else(|| {
            format!("--strategy {name:?} unknown (perturbed-spf, tree, lst or arc)")
        })?,
    };
    let listen = flags.get("listen").unwrap_or("127.0.0.1:0");
    let interval_ms: u64 = flags.get_parsed("interval-ms", 50)?;
    let max_batch: usize = flags.get_parsed("max-batch", 16)?;
    let workers: usize = flags.get_parsed("workers", 2)?;
    let burst_size: usize = flags.get_parsed("burst", 128)?;
    let duration_secs: u64 = flags.get_parsed("duration-secs", 0)?;
    if max_batch == 0 || workers == 0 || burst_size == 0 {
        return Err("--max-batch, --workers and --burst must all be at least 1".into());
    }

    // The schedule fed on the tick grid: explicit tokens, or a seeded
    // churn stream, or nothing (events then arrive only via POST).
    let schedule: Vec<ControlEvent> = if let Some(spec) = flags.get("schedule") {
        ControlEvent::parse_schedule(spec)?
    } else {
        let churn: usize = flags.get_parsed("schedule-churn", 0)?;
        splice_testkit::churn_schedule(&g, k, churn, seed)
            .iter()
            .map(splice_testkit::to_control_event)
            .collect()
    };
    for ev in &schedule {
        ev.validate(&g, k)?;
    }

    let cfg = SplicingConfig::degree_based(k, 0.0, 3.0).with_strategy(strategy);
    let base = Splicing::build(&g, &cfg, seed);

    let registry = Registry::new();
    let flight = FlightRecorder::new(1024);
    let spf_tel = SpfTelemetry::register(&registry).with_flight(flight.clone());
    let latency = registry.histogram_seconds(
        "spliced_event_visible_seconds",
        "Event enqueue to FIB-visible publish",
    );

    let cp = ControlPlane::new(g.clone(), base.clone(), max_batch).with_telemetry(spf_tel);
    let hub = Arc::clone(cp.hub());
    let (handle, rx) = control_channel();
    let stop = Arc::new(AtomicBool::new(false));
    let log: Arc<Mutex<Vec<ControlEvent>>> = Arc::new(Mutex::new(Vec::new()));

    // Admin routes. `/show/slices` is construction-time state, built
    // once; `/show/fib` reads the hub live.
    let slices_json = {
        let mut obj = JsonObject::new()
            .field_str("topology", &topo.name)
            .field_u64("k", k as u64)
            .field_str("strategy", strategy.name())
            .field_u64("seed", seed)
            .field_u64("nodes", g.node_count() as u64)
            .field_u64("links", g.edge_count() as u64);
        let mut sums = splice_telemetry::JsonArray::new();
        for s in 0..k {
            sums = sums.push_f64(base.weights(s).iter().sum::<f64>());
        }
        obj = obj.field_raw("slice_weight_sums", &sums.finish());
        obj.finish()
    };
    let router = Router::new()
        .route("GET", "/show/fib", {
            let hub = Arc::clone(&hub);
            move |_req| {
                let fib = hub.load();
                AdminResponse::json(
                    JsonObject::new()
                        .field_u64("epoch", hub.epoch())
                        .field_u64("k", fib.k() as u64)
                        .field_u64("n", fib.n() as u64)
                        .field_u64("state_bytes", fib.state_bytes() as u64)
                        .finish(),
                )
            }
        })
        .route("GET", "/show/slices", move |_req| {
            AdminResponse::json(slices_json.clone())
        })
        .route("POST", "/events", {
            let g = g.clone();
            let handle = handle.clone();
            let log = Arc::clone(&log);
            move |req| match ControlEvent::parse_schedule(&req.body) {
                Err(e) => AdminResponse::bad_request(format!("{e}\n")),
                Ok(events) => {
                    if let Some(e) = events.iter().find_map(|ev| ev.validate(&g, k).err()) {
                        return AdminResponse::bad_request(format!("{e}\n"));
                    }
                    let count = events.len();
                    for ev in events {
                        submit(&log, &handle, ev);
                    }
                    AdminResponse::text(format!("accepted {count} event(s)\n"))
                }
            }
        })
        .route("POST", "/shutdown", {
            let stop = Arc::clone(&stop);
            move |_req| {
                stop.store(true, Ordering::SeqCst);
                AdminResponse::text("shutting down\n")
            }
        });
    let server = serve_with_router(listen, registry.clone(), Some(flight.clone()), router)
        .map_err(|e| format!("cannot bind --listen {listen}: {e}"))?;
    println!("[spliced] listening on http://{}", server.local_addr());
    println!(
        "[spliced] {} (k = {k}, strategy {}), {} scheduled event(s), \
         max batch {max_batch}, {} worker(s), tick {interval_ms} ms, {}",
        topo.name,
        strategy.name(),
        schedule.len(),
        workers,
        if duration_secs == 0 {
            "running until POST /shutdown".to_string()
        } else {
            format!("running {duration_secs}s")
        }
    );

    // Control plane on its own thread; workers on another. The main
    // thread is the schedule ticker and lifecycle owner.
    let loop_latency = Arc::clone(&latency);
    let event_loop = std::thread::spawn(move || run_event_loop(cp, rx, Some(&loop_latency)));

    let fwd_tel = ForwardTelemetry::register(&registry);
    let worker_handle = {
        let hub = Arc::clone(&hub);
        let stop = Arc::clone(&stop);
        let tel = fwd_tel.clone();
        let mask = EdgeMask::all_up(g.edge_count());
        let n = g.node_count() as u32;
        std::thread::spawn(move || {
            let gen = FlowGen::new(FlowConfig::new(n, k, seed));
            run_live(
                workers,
                ForwarderOptions::default(),
                &hub,
                &mask,
                Some(&tel),
                &stop,
                move |shard, burst, buf| {
                    // Per-(shard, burst) seeded streams, same construction
                    // as `splice forward`, wrapped so the daemon can run
                    // indefinitely.
                    let stream = shard * (1 << 20) + (burst as usize & ((1 << 20) - 1));
                    gen.stream(stream).fill_burst(burst_size, buf);
                },
            )
        })
    };

    let started = Instant::now();
    let mut ticker = Ticker::new(Duration::from_millis(interval_ms));
    let mut fed = 0usize;
    while !stop.load(Ordering::SeqCst) {
        if duration_secs > 0 && started.elapsed() >= Duration::from_secs(duration_secs) {
            break;
        }
        if fed < schedule.len() {
            submit(&log, &handle, schedule[fed].clone());
            fed += 1;
        }
        ticker.wait();
    }
    let wall = started.elapsed();

    // Graceful teardown: stop the workers, then flush + drain the
    // control plane, then verify against the oracle.
    stop.store(true, Ordering::SeqCst);
    let reports = worker_handle.join().expect("forwarding workers panicked");
    handle.shutdown();
    let (cp, loop_report) = event_loop.join().expect("control event loop panicked");

    // Exit oracle: replay the exact ingest log through a second control
    // plane with a different batch partition (one event per pass). The
    // two final FIBs must be bit-identical — any batch partition of the
    // same schedule lands on the same deployment.
    let events = log.lock().expect("event log lock poisoned").clone();
    let mut oracle = ControlPlane::new(g.clone(), base, 1);
    for ev in &events {
        oracle.ingest(ev);
    }
    oracle.flush();
    let daemon_sum = fib_checksum(cp.graph(), cp.current());
    let oracle_sum = fib_checksum(oracle.graph(), oracle.current());

    let packets: u64 = reports.iter().map(|r| r.stats.packets).sum();
    let bursts: u64 = reports.iter().map(|r| r.bursts).sum();
    let epochs_seen: u64 = reports.iter().map(|r| r.epochs_seen).max().unwrap_or(0);
    let pps = packets as f64 / wall.as_secs_f64().max(1e-9);
    let (lat_p50, _, lat_p99) = latency.quantiles();
    let stats = loop_report.stats;
    println!(
        "[spliced] {} event(s) in {:.1}s: {} repair pass(es), {} rebuild(s), \
         {} publish(es) (final epoch {}), {} arena(s) recycled",
        stats.events,
        wall.as_secs_f64(),
        stats.repair_batches,
        stats.rebuilds,
        stats.publishes,
        loop_report.final_epoch,
        stats.arenas_recycled
    );
    println!(
        "[spliced] event->FIB-visible p50 {:.6}s p99 {:.6}s; \
         forwarded {packets} packet(s) in {bursts} burst(s) ({pps:.0} pps), \
         workers saw {epochs_seen} epoch(s); {} tick(s) missed",
        lat_p50,
        lat_p99,
        ticker.missed()
    );
    println!(
        "[spliced] fib checksum {daemon_sum:016x} vs batch oracle {oracle_sum:016x} ({})",
        if daemon_sum == oracle_sum {
            "match"
        } else {
            "MISMATCH"
        }
    );

    if let Some(path) = flags.get("metrics") {
        write_file(path, &registry.render_prometheus())?;
        println!("[spliced] wrote {path}");
    }
    if let Some(path) = flags.get("manifest") {
        let manifest = JsonObject::new()
            .field_u64("schema", 1)
            .field_str("topology", &topo.name)
            .field_u64("k", k as u64)
            .field_str("strategy", strategy.name())
            .field_u64("seed", seed)
            .field_u64("max_batch", max_batch as u64)
            .field_u64("workers", workers as u64)
            .field_u64("interval_ms", interval_ms)
            .field_f64("wall_seconds", wall.as_secs_f64())
            .field_u64("events", stats.events)
            .field_u64("repair_batches", stats.repair_batches)
            .field_u64("rebuilds", stats.rebuilds)
            .field_u64("publishes", stats.publishes)
            .field_u64("arenas_recycled", stats.arenas_recycled)
            .field_u64("final_epoch", loop_report.final_epoch)
            .field_bool("clean_shutdown", loop_report.clean_shutdown)
            .field_f64("event_visible_p50_seconds", lat_p50)
            .field_f64("event_visible_p99_seconds", lat_p99)
            .field_u64("packets_forwarded", packets)
            .field_f64("forward_pps", pps)
            .field_u64("ticks_missed", ticker.missed())
            .field_str("fib_checksum", &format!("{daemon_sum:016x}"))
            .field_str("oracle_checksum", &format!("{oracle_sum:016x}"))
            .field_bool("checksums_match", daemon_sum == oracle_sum)
            .finish();
        write_file(path, &(manifest + "\n"))?;
        println!("[spliced] wrote {path}");
    }
    server.shutdown();

    if daemon_sum != oracle_sum {
        eprintln!("spliced: live FIB diverged from the batch oracle");
        std::process::exit(1);
    }
    Ok(())
}

fn write_file(path: &str, contents: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
    {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("creating {}: {e}", parent.display()))?;
    }
    std::fs::write(path, contents).map_err(|e| format!("writing {path}: {e}"))
}
