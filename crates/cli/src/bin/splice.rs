//! The `splice` command-line tool.
//!
//! ```text
//! splice <command> [flags]
//!
//! commands:
//!   info         topology statistics (nodes, links, degrees, min cut)
//!   route        forward a packet and print the hop-by-hop trace
//!   recover      break links and run end-system or network recovery
//!   reliability  quick Monte-Carlo disconnection numbers
//!   slices       per-slice stretch statistics
//!   forward      drain seeded traffic bursts through the sharded
//!                batch forwarding engine
//!   observe      standing churn loop with a live scrape endpoint
//!   testkit      replay a fault-injection scenario by seed-spec
//!   exp          the experiment engine (same as `splice-lab`)
//! ```
//!
//! Run `splice help` for the full flag list.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use splice_cli::{resolve_failures, resolve_node, resolve_topology, Flags};
use splice_core::control::{ControlEvent, ControlPlane};
use splice_core::prelude::*;
use splice_core::slices::SplicingConfig;
use splice_core::strategy::StrategyKind;
use splice_core::stretch::{per_slice_stretch, StretchStats};
use splice_dataplane::{NetTelemetry, Packet, RouterConfig, SimNetwork};
use splice_graph::mincut::min_cut_links;
use splice_graph::{EdgeId, EdgeMask, NodeId};
use splice_sim::reliability::{
    reliability_experiment_instrumented, ReliabilityConfig, SpliceSemantics,
};
use splice_sim::telemetry::ExperimentTelemetry;
use splice_sim::FailureModel;
use splice_telemetry::{
    serve_with_router, AdminResponse, FlightRecorder, Registry, Router, Span, Ticker, TraceSink,
};
use splice_topology::Topology;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const HELP: &str = "\
splice — path splicing on ISP topologies

usage: splice <command> [flags]

commands:
  info         topology statistics (nodes, links, degrees, min cut)
  route        forward a packet and print the hop-by-hop trace
  recover      break links and run recovery
  reliability  quick Monte-Carlo disconnection numbers
  slices       per-slice stretch statistics
  forward      drain seeded Zipf bursts through the sharded batch
               forwarding engine and print throughput
  observe      standing fail/repair/forward churn loop with a live
               scrape endpoint (/metrics, /healthz, /snapshot)
  testkit      replay a fault-injection scenario by seed-spec
  exp          the experiment engine (same as `splice-lab`; try `splice exp list`)
  help         this message

common flags:
  --topology NAME                   built-in (sprint|geant|abilene) or a
                                    generator spec like rand-24-40-7 (default sprint)
  --file PATH                       edge-list topology file instead
  --k N                             number of slices (default 5)
  --seed N                          RNG seed (default 1)
  --strategy NAME                   slice construction: perturbed-spf
                                    (default), tree, lst or arc
  --fail A-B                        fail the named link (repeatable)
  --fail-edge ID                    fail a link by edge id (repeatable)

route/recover flags:
  --src NAME --dst NAME             endpoints (required)
  --slice N                         pin to one slice (route; default 0)
  --scheme end-system|network       recovery scheme (default end-system)
  --trials N                        recovery trials (default 5)

reliability flags:
  --k 1,5,10                        slice counts (comma list)
  --p 0.02,0.05,0.1                 failure probabilities (comma list)
  --trials N                        Monte-Carlo trials (default 200)
  --semantics union|directed        spliced-path accounting (default union)

forward flags:
  --burst N                         packets per burst (default 256)
  --bursts N                        bursts per shard (default 64)
  --shards N                        batch workers on scoped threads (default 2)

observe flags:
  --listen ADDR                     scrape address (default 127.0.0.1:0;
                                    the bound address is printed); POST
                                    /shutdown stops the loop gracefully
  --duration-secs N                 how long to churn (default 30;
                                    0 = until POST /shutdown)
  --interval-ms N                   churn-round tick, deadline-paced
                                    (default 200)
  --walks N                         spliced packets injected per round (default 4)
  --batch-size N                    distinct link failures coalesced per
                                    control-plane repair pass (default 1 =
                                    the single-event repair path)
  --metrics PATH                    write the final Prometheus snapshot on exit

telemetry flags (recover, reliability):
  --metrics PATH                    write a Prometheus metric snapshot
  --trace PATH                      write packet walks as JSON lines

testkit:
  testkit replay <SPEC>             replay a scenario through the
                                    differential harness; SPEC is the
                                    token a failing soak/CI run prints,
                                    e.g. rand-8-12-99/k3d/s7/f4+n1
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().map(String::as_str) else {
        eprint!("{HELP}");
        std::process::exit(2);
    };
    // `testkit` takes positional operands, so it dispatches before the
    // flag parser (which rejects positionals).
    if command == "testkit" {
        if let Err(e) = cmd_testkit(&argv[1..]) {
            fail(&e);
        }
        return;
    }
    // `exp` forwards to the splice-lab experiment engine, which has its
    // own subcommand grammar (positional operands included).
    if command == "exp" {
        std::process::exit(splice_bench::lab_main(&argv[1..]));
    }
    let flags = match Flags::parse(&argv[1..]) {
        Ok(f) => f,
        Err(e) => fail(&e),
    };
    let result = match command {
        "info" => cmd_info(&flags),
        "route" => cmd_route(&flags),
        "recover" => cmd_recover(&flags),
        "reliability" => cmd_reliability(&flags),
        "slices" => cmd_slices(&flags),
        "forward" => cmd_forward(&flags),
        "observe" => cmd_observe(&flags),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (try `splice help`)")),
    };
    if let Err(e) = result {
        fail(&e);
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("splice: {msg}");
    std::process::exit(2);
}

/// `splice testkit replay <spec>` — re-run a scenario printed by a
/// failing soak/CI run through the full differential harness.
fn cmd_testkit(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("replay") => {
            let [spec] = &args[1..] else {
                return Err("usage: splice testkit replay <SPEC>".into());
            };
            let sc = splice_testkit::Scenario::from_spec(spec)?;
            match splice_testkit::replay(&sc, &splice_testkit::ReplayOptions::default()) {
                Ok(report) => {
                    println!(
                        "PASS {spec}: {} event(s), {} next-hop + {} distance checks, {} walk(s)",
                        report.events_applied,
                        report.next_hop_checks,
                        report.distance_checks,
                        report.walks_checked
                    );
                    Ok(())
                }
                Err(div) => {
                    eprintln!("FAIL {spec}");
                    eprintln!("  {div}");
                    std::process::exit(1);
                }
            }
        }
        Some(other) => Err(format!(
            "unknown testkit subcommand {other:?} (try `splice testkit replay <SPEC>`)"
        )),
        None => Err("usage: splice testkit replay <SPEC>".into()),
    }
}

fn strategy_flag(flags: &Flags) -> Result<StrategyKind, String> {
    match flags.get("strategy") {
        None => Ok(StrategyKind::PerturbedSpf),
        Some(name) => StrategyKind::parse(name).ok_or_else(|| {
            format!("--strategy {name:?} unknown (perturbed-spf, tree, lst or arc)")
        }),
    }
}

fn build(topo: &Topology, flags: &Flags) -> Result<(splice_graph::Graph, Splicing), String> {
    let k: usize = flags.get_parsed("k", 5)?;
    if k == 0 {
        return Err("--k must be at least 1".into());
    }
    let seed: u64 = flags.get_parsed("seed", 1)?;
    let strategy = strategy_flag(flags)?;
    let g = topo.graph();
    let cfg = SplicingConfig::degree_based(k, 0.0, 3.0).with_strategy(strategy);
    let splicing = Splicing::build(&g, &cfg, seed);
    Ok((g, splicing))
}

fn cmd_info(flags: &Flags) -> Result<(), String> {
    let topo = resolve_topology(flags)?;
    let g = topo.graph();
    println!("topology : {}", topo.name);
    println!("nodes    : {}", g.node_count());
    println!("links    : {}", g.edge_count());
    println!(
        "degrees  : min {} / avg {:.2} / max {}",
        g.min_degree(),
        2.0 * g.edge_count() as f64 / g.node_count() as f64,
        g.max_degree()
    );
    if let Some(cut) = min_cut_links(&g) {
        println!("min cut  : {cut} link(s)");
    }
    let mask = resolve_failures(&topo, flags)?;
    if mask.failed_count() > 0 {
        let disc = splice_graph::traversal::disconnected_pairs(&g, &mask);
        let n = g.node_count();
        println!(
            "with {} failed link(s): {} of {} ordered pairs disconnected",
            mask.failed_count(),
            disc,
            n * (n - 1)
        );
    }
    let hubs: Vec<String> = {
        let mut by_degree: Vec<_> = g.nodes().map(|u| (g.degree(u), u)).collect();
        by_degree.sort_by_key(|&(d, _)| std::cmp::Reverse(d));
        by_degree
            .iter()
            .take(5)
            .map(|&(d, u)| format!("{} ({d})", topo.node_name(u)))
            .collect()
    };
    println!("hubs     : {}", hubs.join(", "));
    Ok(())
}

fn trace_names(topo: &Topology, trace: &Trace) -> String {
    trace
        .steps
        .iter()
        .map(|s| format!("{}[s{}]", topo.node_name(s.node), s.slice))
        .chain(std::iter::once(topo.node_name(trace.last).to_string()))
        .collect::<Vec<_>>()
        .join(" -> ")
}

fn cmd_route(flags: &Flags) -> Result<(), String> {
    let topo = resolve_topology(flags)?;
    let (g, splicing) = build(&topo, flags)?;
    let src = resolve_node(&topo, flags.get("src").ok_or("--src required")?)?;
    let dst = resolve_node(&topo, flags.get("dst").ok_or("--dst required")?)?;
    let mask = resolve_failures(&topo, flags)?;
    let slice: usize = flags.get_parsed("slice", 0)?;
    if slice >= splicing.k() {
        return Err(format!(
            "--slice {slice} out of range (k = {})",
            splicing.k()
        ));
    }
    let fwd = Forwarder::new(&splicing, &g, &mask);
    let out = fwd.forward(
        src,
        dst,
        ForwardingBits::stay_in_slice(slice, splicing.k()),
        &ForwarderOptions::default(),
    );
    match out {
        ForwardingOutcome::Delivered(trace) => {
            println!("delivered in {} hops via slice {slice}", trace.hop_count());
            println!("{}", trace_names(&topo, &trace));
            println!(
                "latency {:.2} ms ({}x the base shortest path)",
                trace.length(&topo.latencies()),
                {
                    let spt = splice_graph::dijkstra(&g, dst, &g.base_weights());
                    let base = spt
                        .path_from(src)
                        .map(|p| p.length(&topo.latencies()))
                        .unwrap_or(f64::NAN);
                    format!("{:.2}", trace.length(&topo.latencies()) / base)
                }
            );
        }
        ForwardingOutcome::LinkDown { trace, slice } => {
            println!(
                "dropped at {} — slice {slice}'s next hop link is down",
                topo.node_name(trace.last)
            );
            println!("(try `splice recover` with the same flags)");
        }
        other => println!("not delivered: {other:?}"),
    }
    Ok(())
}

fn cmd_recover(flags: &Flags) -> Result<(), String> {
    let topo = resolve_topology(flags)?;
    let (g, splicing) = build(&topo, flags)?;
    let src = resolve_node(&topo, flags.get("src").ok_or("--src required")?)?;
    let dst = resolve_node(&topo, flags.get("dst").ok_or("--dst required")?)?;
    let mask = resolve_failures(&topo, flags)?;
    if mask.failed_count() == 0 {
        return Err("recovery needs at least one --fail".into());
    }
    let seed: u64 = flags.get_parsed("seed", 1)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let scheme = flags.get("scheme").unwrap_or("end-system");
    match scheme {
        "end-system" => {
            let trials: usize = flags.get_parsed("trials", 5)?;
            let fwd = Forwarder::new(&splicing, &g, &mask);
            let rec = EndSystemRecovery {
                max_trials: trials,
                ..Default::default()
            };
            let out = rec.recover(&fwd, src, dst, 0, &ForwarderOptions::default(), &mut rng);
            if out.recovered {
                let trace = out
                    .delivery
                    .expect("recovered outcome always carries its delivery trace");
                println!(
                    "recovered in {} trial(s); {} hops, {} slice switch(es)",
                    out.trials,
                    trace.hop_count(),
                    trace.slice_switches()
                );
                println!("{}", trace_names(&topo, &trace));
            } else {
                println!("not recovered within {trials} trials");
            }
        }
        "network" => {
            let nr = NetworkRecovery::default();
            let out = nr.forward(&splicing, &mask, src, dst, 0, &mut rng);
            match out {
                ForwardingOutcome::Delivered(trace) => {
                    println!(
                        "delivered with in-network deflection; {} hops, {} slice switch(es)",
                        trace.hop_count(),
                        trace.slice_switches()
                    );
                    println!("{}", trace_names(&topo, &trace));
                }
                other => println!("not delivered: {other:?}"),
            }
        }
        other => return Err(format!("unknown --scheme {other:?}")),
    }

    // Packet-level replay: run the same failure set through the
    // wire-format data plane and surface the per-router counters.
    let registry = Registry::new();
    let mut net = SimNetwork::new(
        g.clone(),
        &splicing,
        topo.latencies(),
        RouterConfig {
            splicing_enabled: true,
            network_recovery: scheme == "network",
        },
    );
    net.set_telemetry(NetTelemetry::register(&registry));
    if let Some(path) = flags.get("trace") {
        net.set_trace_sink(open_trace(path)?);
    }
    for e in mask.failed_edges() {
        net.fail_link(e);
    }
    let report = net.inject(Packet::spliced(
        src,
        dst,
        64,
        ForwardingBits::stay_in_slice(0, splicing.k()),
        Bytes::from_static(b"splice-cli"),
    ));
    println!(
        "data plane replay ({}): {}",
        if scheme == "network" {
            "network recovery on"
        } else {
            "no in-network recovery"
        },
        match &report.drop {
            None => format!(
                "delivered, {} hop(s), {:.2} ms",
                report.path.len().saturating_sub(1),
                report.latency_ms
            ),
            Some(reason) => format!(
                "dropped at {} ({})",
                topo.node_name(*report.path.last().expect("path has the source")),
                splice_dataplane::drop_reason_label(reason)
            ),
        }
    );
    print_router_stats(&topo, net.stats());
    if let Some(path) = flags.get("metrics") {
        write_metrics(path, &registry)?;
    }
    if let Some(path) = flags.get("trace") {
        println!("wrote {path}");
    }
    Ok(())
}

/// Print the aggregate and noteworthy per-router counters of a walk.
fn print_router_stats(topo: &Topology, stats: &[splice_dataplane::RouterStats]) {
    let forwarded: u64 = stats.iter().map(|s| s.forwarded).sum();
    let delivered: u64 = stats.iter().map(|s| s.delivered).sum();
    let dropped: u64 = stats.iter().map(|s| s.dropped).sum();
    let deflections: u64 = stats.iter().map(|s| s.deflections).sum();
    println!(
        "router stats: forwarded {forwarded} | delivered {delivered} | dropped {dropped} | deflections {deflections}"
    );
    for (i, st) in stats.iter().enumerate() {
        if st.deflections > 0 || st.dropped > 0 {
            println!(
                "  {}: {} forwarded, {} deflection(s), {} dropped",
                topo.node_name(NodeId(i as u32)),
                st.forwarded,
                st.deflections,
                st.dropped
            );
        }
    }
}

/// Open a `--trace` JSONL sink.
fn open_trace(path: &str) -> Result<TraceSink, String> {
    TraceSink::create(path).map_err(|e| format!("cannot create --trace {path}: {e}"))
}

/// Write a Prometheus snapshot of `registry` to `path`.
fn write_metrics(path: &str, registry: &Registry) -> Result<(), String> {
    let parent = std::path::Path::new(path).parent();
    if let Some(parent) = parent.filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("creating {}: {e}", parent.display()))?;
    }
    std::fs::write(path, registry.render_prometheus())
        .map_err(|e| format!("writing --metrics {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn cmd_reliability(flags: &Flags) -> Result<(), String> {
    let topo = resolve_topology(flags)?;
    let g = topo.graph();
    let ks: Vec<usize> = flags.get_list("k", vec![1, 5, 10])?;
    let ps: Vec<f64> = flags.get_list("p", vec![0.05])?;
    let trials: usize = flags.get_parsed("trials", 200)?;
    let seed: u64 = flags.get_parsed("seed", 1)?;
    let semantics = match flags.get("semantics").unwrap_or("union") {
        "directed" => SpliceSemantics::Directed,
        _ => SpliceSemantics::UnionGraph,
    };
    let kmax = *ks.iter().max().ok_or("--k list empty")?;
    if ps.is_empty() {
        return Err("--p list empty".into());
    }
    let strategy = strategy_flag(flags)?;
    let cfg = ReliabilityConfig {
        ks: ks.clone(),
        ps: ps.clone(),
        trials,
        splicing: SplicingConfig::degree_based(kmax.max(1), 0.0, 3.0).with_strategy(strategy),
        semantics,
        seed,
    };
    let metrics = flags.get("metrics");
    let trace = flags.get("trace");
    let registry = Registry::new();
    let telemetry =
        (metrics.is_some() || trace.is_some()).then(|| ExperimentTelemetry::register(&registry));
    let out = reliability_experiment_instrumented(&g, &cfg, telemetry.as_ref());
    println!(
        "{}: fraction of pairs disconnected ({trials} trials, {:?}):",
        topo.name, semantics
    );
    print!("  {:<8}", "p");
    for curve in &out.curves {
        print!("{:<18}", curve.label);
    }
    println!("{:<14}", "best possible");
    for (pi, &p) in ps.iter().enumerate() {
        print!("  {p:<8}");
        for curve in &out.curves {
            print!("{:<18.4}", curve.points[pi].1);
        }
        println!("{:<14.4}", out.best_possible.points[pi].1);
    }

    if telemetry.is_some() {
        // Data-plane sampling pass: one spliced walk per ordered pair
        // under one sampled failure mask per p, so the packet counters in
        // the snapshot reflect the sweep just printed.
        let splicing = Splicing::build(&g, &cfg.splicing, seed);
        let mut net = SimNetwork::new(
            g.clone(),
            &splicing,
            topo.latencies(),
            RouterConfig {
                splicing_enabled: true,
                network_recovery: true,
            },
        );
        net.set_telemetry(NetTelemetry::register(&registry));
        if let Some(path) = trace {
            net.set_trace_sink(open_trace(path)?);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for &p in &ps {
            let fail_mask: EdgeMask = FailureModel::IidLinks { p }.sample(&g, &mut rng);
            for e in fail_mask.failed_edges() {
                net.fail_link(e);
            }
            for s in g.nodes() {
                for t in g.nodes() {
                    if s != t {
                        net.inject(Packet::spliced(
                            s,
                            t,
                            64,
                            ForwardingBits::stay_in_slice(0, splicing.k()),
                            Bytes::from_static(b"sample"),
                        ));
                    }
                }
            }
            for e in fail_mask.failed_edges() {
                net.restore_link(e);
            }
        }
        let stats = net.stats();
        println!(
            "data-plane sample: {} walk(s), forwarded {} | dropped {} | deflections {}",
            ps.len() * g.node_count() * (g.node_count() - 1),
            stats.iter().map(|s| s.forwarded).sum::<u64>(),
            stats.iter().map(|s| s.dropped).sum::<u64>(),
            stats.iter().map(|s| s.deflections).sum::<u64>(),
        );
        if let Some(path) = trace {
            println!("wrote {path}");
        }
    }
    if let Some(path) = metrics {
        write_metrics(path, &registry)?;
    }
    Ok(())
}

/// `splice forward` — drain seeded Zipf bursts through the sharded
/// batch forwarding engine over this deployment's FIB arena (respecting
/// `--fail`/`--fail-edge`), then print aggregate throughput, outcome
/// classes, burst-latency quantiles, and the per-shard outcome
/// checksums. The first burst is replayed through the scalar walk
/// packet-for-packet, so every run carries its own batch-vs-scalar
/// differential check.
fn cmd_forward(flags: &Flags) -> Result<(), String> {
    use splice_dataplane::{
        outcomes_checksum, run_sharded, scalar_walk, ForwardTelemetry, RotatingSnapshots,
        WalkOutcome,
    };
    use splice_traffic::{FlowConfig, FlowGen};

    let topo = resolve_topology(flags)?;
    let (g, splicing) = build(&topo, flags)?;
    let mask = resolve_failures(&topo, flags)?;
    let burst_size: usize = flags.get_parsed("burst", 256)?;
    let bursts: u64 = flags.get_parsed("bursts", 64)?;
    let shards: usize = flags.get_parsed("shards", 2)?;
    if burst_size == 0 || bursts == 0 || shards == 0 {
        return Err("--burst, --bursts and --shards must all be at least 1".into());
    }
    let seed: u64 = flags.get_parsed("seed", 1)?;
    let opts = ForwarderOptions::default();
    let gen = FlowGen::new(FlowConfig::new(g.node_count() as u32, splicing.k(), seed));
    let source = RotatingSnapshots(vec![std::sync::Arc::clone(splicing.arena())]);

    let registry = Registry::new();
    let tel = ForwardTelemetry::register(&registry);
    let reports = run_sharded(
        shards,
        opts,
        &source,
        &mask,
        Some(&tel),
        |shard, burst, buf| {
            if burst < bursts {
                gen.stream(shard as usize * bursts as usize + burst as usize)
                    .fill_burst(burst_size, buf);
            }
        },
    );

    // Differential spot check: shard 0's first burst, scalar vs batch.
    let mut buf = Vec::new();
    gen.stream(0).fill_burst(burst_size, &mut buf);
    let scalar: Vec<WalkOutcome> = buf
        .iter()
        .map(|&(s, d, h)| {
            WalkOutcome::from_outcome(&scalar_walk(
                splicing.arena(),
                &mask,
                NodeId(s),
                NodeId(d),
                h,
                &opts,
            ))
        })
        .collect();
    let scalar_sum = outcomes_checksum(&scalar);
    let mut check_engine = splice_dataplane::BatchForwarder::new(opts);
    let batch_sum = outcomes_checksum(check_engine.forward_burst(splicing.arena(), &mask, &buf));

    let mut stats = splice_dataplane::BatchStats::default();
    let mut busy = 0.0;
    println!(
        "{}: {} shards x {} bursts x {} packets, k={}, {} links failed",
        topo.name,
        shards,
        bursts,
        burst_size,
        splicing.k(),
        mask.failed_count()
    );
    println!("  shard   packets     hops  busy_ms  checksum");
    for r in &reports {
        stats.merge(&r.stats);
        busy += r.busy_seconds;
        println!(
            "  {:<5} {:>9} {:>8} {:>8.2}  {:016x}",
            r.shard,
            r.stats.packets,
            r.stats.hops,
            r.busy_seconds * 1e3,
            r.checksum
        );
    }
    let secs = busy.max(1e-12);
    let (p50, _, p99) = tel.burst_seconds.quantiles();
    println!(
        "aggregate: {:.0} pps, {:.1} ns/hop, burst p50 {:.1}us p99 {:.1}us",
        stats.packets as f64 / secs,
        secs * 1e9 / stats.hops.max(1) as f64,
        p50 * 1e6,
        p99 * 1e6
    );
    println!(
        "outcomes: {} delivered, {} dead-end, {} link-down, {} loop, {} ttl",
        stats.delivered, stats.dead_end, stats.link_down, stats.persistent_loop, stats.ttl_exceeded
    );
    if scalar_sum == batch_sum {
        println!(
            "differential spot check: shard 0 burst 0 scalar == batch ({scalar_sum:016x}, {} packets)",
            scalar.len()
        );
    } else {
        return Err(format!(
            "differential spot check FAILED: scalar {scalar_sum:016x} != batch {batch_sum:016x}"
        ));
    }
    println!(
        "merged checksum: {:016x}",
        splice_dataplane::merged_checksum(&reports)
    );
    Ok(())
}

/// `splice observe` — a standing churn loop behind a live scrape
/// endpoint: each deadline-paced tick fails random links through the
/// daemon's [`ControlPlane`] (ingest → coalesced repair → publish),
/// pushes a few spliced packets through the broken data plane,
/// recovers, and repeats — the same live-repair code path `spliced`
/// runs, driven synchronously. Everything lands in one registry and
/// one flight recorder, so `curl <addr>/metrics` shows span-duration
/// histograms with quantile gauges and `<addr>/snapshot` shows the
/// most recent repairs and walk anomalies while the loop is running;
/// `POST <addr>/shutdown` stops the loop gracefully.
fn cmd_observe(flags: &Flags) -> Result<(), String> {
    let topo = resolve_topology(flags)?;
    let (g, splicing) = build(&topo, flags)?;
    let seed: u64 = flags.get_parsed("seed", 1)?;
    let listen = flags.get("listen").unwrap_or("127.0.0.1:0");
    let duration_secs: u64 = flags.get_parsed("duration-secs", 30)?;
    let interval_ms: u64 = flags.get_parsed("interval-ms", 200)?;
    let walks: usize = flags.get_parsed("walks", 4)?;
    let batch_size: usize = flags.get_parsed("batch-size", 1)?;
    if batch_size == 0 {
        return Err("--batch-size must be at least 1".into());
    }

    let registry = Registry::new();
    let flight = FlightRecorder::new(1024);
    let telemetry = ExperimentTelemetry::register(&registry).with_flight(flight.clone());
    // Graceful stop: POST /shutdown raises the flag the churn loop
    // checks each round, so a scripted run (or CI) can end a
    // `--duration-secs 0` loop without killing the process.
    let stop = Arc::new(AtomicBool::new(false));
    let router = Router::new().route("POST", "/shutdown", {
        let stop = Arc::clone(&stop);
        move |_req| {
            stop.store(true, Ordering::SeqCst);
            AdminResponse::text("shutting down\n")
        }
    });
    let server = serve_with_router(listen, registry.clone(), Some(flight.clone()), router)
        .map_err(|e| format!("cannot bind --listen {listen}: {e}"))?;
    println!(
        "observe: {} (k = {}), churn every {interval_ms} ms for {}",
        topo.name,
        splicing.k(),
        if duration_secs == 0 {
            "ever (interrupt to stop)".to_string()
        } else {
            format!("{duration_secs}s")
        }
    );
    println!(
        "observe: scrape http://{}/metrics — also /healthz, /snapshot",
        server.local_addr()
    );

    let mut net = SimNetwork::new(
        g.clone(),
        &splicing,
        topo.latencies(),
        RouterConfig {
            splicing_enabled: true,
            network_recovery: true,
        },
    );
    net.set_telemetry(NetTelemetry::register(&registry));
    net.set_flight_recorder(flight.clone());

    let round_span = Span::new(
        "splice_observe_round",
        registry.histogram_seconds(
            "splice_observe_round_seconds",
            "One fail/repair/forward/restore churn round",
        ),
    )
    .with_flight(flight.clone());

    // The churn rides the daemon's control plane — the same
    // ingest/coalesce/publish state machine `spliced` runs — with
    // `--batch-size` as the coalescing cap, instead of hand-rolled
    // throwaway `try_repair` calls.
    let mut cp = ControlPlane::new(g.clone(), splicing.clone(), batch_size)
        .with_telemetry(telemetry.spf.clone());

    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.node_count() as u32;
    let m = g.edge_count() as u32;
    if m == 0 {
        return Err("topology has no links to churn".into());
    }
    let started = std::time::Instant::now();
    // Deadline-paced rounds: tick i fires at `start + i * interval`, so
    // a slow round doesn't push every later round back (the old
    // `thread::sleep(interval)` drifted by the round's own latency).
    let mut ticker = Ticker::new(std::time::Duration::from_millis(interval_ms));
    let mut rounds = 0u64;
    while !stop.load(Ordering::SeqCst)
        && (duration_secs == 0 || started.elapsed().as_secs() < duration_secs)
    {
        {
            let _round = round_span.enter();
            // Draw `batch_size` distinct links; at 1 this is the classic
            // single-event repair path, above it the round exercises the
            // coalesced repair_batch path instead.
            let mut edges: Vec<EdgeId> = Vec::with_capacity(batch_size.min(m as usize));
            while edges.len() < batch_size.min(m as usize) {
                let e = EdgeId(rng.gen_range(0..m));
                if !edges.contains(&e) {
                    edges.push(e);
                }
            }
            for &edge in &edges {
                cp.ingest(&ControlEvent::FailLink(edge));
            }
            cp.flush();
            for &edge in &edges {
                net.fail_link(edge);
            }
            for _ in 0..walks {
                let (src, dst) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if src == dst {
                    continue;
                }
                net.inject(Packet::spliced(
                    NodeId(src),
                    NodeId(dst),
                    64,
                    ForwardingBits::stay_in_slice(0, splicing.k()),
                    Bytes::from_static(b"observe"),
                ));
            }
            for &edge in &edges {
                net.restore_link(edge);
                cp.ingest(&ControlEvent::Recover(edge));
            }
            cp.flush();
        }
        rounds += 1;
        ticker.wait();
    }
    let (p50, _, p99) = telemetry.spf.spf_repair_seconds.quantiles();
    let stats = cp.stats();
    println!(
        "observe: {rounds} round(s) in {:.1}s ({} tick(s) missed); repair p50 {p50:.6}s \
         p99 {p99:.6}s; {} event(s), {} publish(es); flight {} event(s) recorded, {} dropped",
        started.elapsed().as_secs_f64(),
        ticker.missed(),
        stats.events,
        stats.publishes,
        flight.recorded(),
        flight.dropped()
    );
    if let Some(path) = flags.get("metrics") {
        write_metrics(path, &registry)?;
    }
    server.shutdown();
    Ok(())
}

fn cmd_slices(flags: &Flags) -> Result<(), String> {
    let topo = resolve_topology(flags)?;
    let (g, splicing) = build(&topo, flags)?;
    let latencies = topo.latencies();
    let per_slice = per_slice_stretch(&splicing, &g, &latencies);
    println!("{}: per-slice path stretch over all pairs:", topo.name);
    println!("  slice   mean    p99     max");
    for (i, samples) in per_slice.into_iter().enumerate() {
        let st = StretchStats::from_samples(samples).ok_or("no samples")?;
        println!("  {:<6}  {:.3}   {:.3}   {:.3}", i, st.mean, st.p99, st.max);
    }
    let diversity: usize = g
        .nodes()
        .map(|t| splicing.diversity_toward(t, splicing.k()))
        .sum();
    let n = g.node_count();
    println!(
        "mean next-hop diversity: {:.2} per (node, destination)",
        diversity as f64 / (n * (n - 1)) as f64
    );
    Ok(())
}
