//! # splice-cli
//!
//! The `splice` command-line tool: explore path splicing on built-in or
//! user-supplied topologies without writing Rust.
//!
//! ```text
//! splice info   --topology sprint
//! splice route  --topology geant --src pt --dst se --k 5 --fail pt-es
//! splice recover --topology sprint --src Seattle --dst "New York" --k 5 \
//!                --fail Seattle-Denver --scheme end-system
//! splice reliability --topology sprint --k 1,5,10 --p 0.05 --trials 300
//! ```
//!
//! Topologies can also be loaded from edge-list files via
//! `--file path.topo` (see `splice_topology::parse`).

use splice_graph::{EdgeId, EdgeMask, NodeId};
use splice_topology::{parse, Topology};
use std::collections::HashMap;

/// A parsed command line: flag → values (flags may repeat).
#[derive(Clone, Debug, Default)]
pub struct Flags {
    values: HashMap<String, Vec<String>>,
}

impl Flags {
    /// Parse `--flag value` pairs; repeated flags accumulate.
    ///
    /// Returns an error message on a flag with no value or a stray
    /// positional argument.
    pub fn parse(args: &[String]) -> Result<Flags, String> {
        let mut values: HashMap<String, Vec<String>> = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let flag = &args[i];
            if !flag.starts_with("--") {
                return Err(format!("unexpected positional argument {flag:?}"));
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("missing value for {flag}"))?;
            values
                .entry(flag.trim_start_matches("--").to_string())
                .or_default()
                .push(value.clone());
            i += 2;
        }
        Ok(Flags { values })
    }

    /// Last value of a flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// All values of a repeatable flag.
    pub fn get_all(&self, name: &str) -> &[String] {
        self.values.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A flag parsed as `T`, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for --{name}: {v:?}")),
        }
    }

    /// A comma-separated list flag parsed as `Vec<T>`.
    pub fn get_list<T: std::str::FromStr>(
        &self,
        name: &str,
        default: Vec<T>,
    ) -> Result<Vec<T>, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .split(',')
                .map(|x| {
                    x.trim()
                        .parse()
                        .map_err(|_| format!("bad value in --{name}: {x:?}"))
                })
                .collect(),
        }
    }
}

/// Resolve the topology from `--topology name` or `--file path`.
///
/// Names accept the built-ins (`sprint`, `geant`, `abilene`) and any
/// generator spec understood by [`splice_topology::resolve`], e.g.
/// `rand-24-40-7` or `grid-4-6`.
pub fn resolve_topology(flags: &Flags) -> Result<Topology, String> {
    if let Some(path) = flags.get("file") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let name = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("file");
        return parse::parse_edge_list(name, &text).map_err(|e| e.to_string());
    }
    splice_topology::resolve(flags.get("topology").unwrap_or("sprint")).map_err(|e| e.to_string())
}

/// Resolve a node by name (exact, then case-insensitive).
pub fn resolve_node(topo: &Topology, name: &str) -> Result<NodeId, String> {
    if let Some(id) = topo.node_by_name(name) {
        return Ok(id);
    }
    let lower = name.to_lowercase();
    topo.nodes
        .iter()
        .position(|n| n.name.to_lowercase() == lower)
        .map(|i| NodeId(i as u32))
        .ok_or_else(|| format!("no node named {name:?} in {}", topo.name))
}

/// Parse repeated `--fail a-b` flags into a failure mask.
pub fn resolve_failures(topo: &Topology, flags: &Flags) -> Result<EdgeMask, String> {
    let g = topo.graph();
    let mut mask = EdgeMask::all_up(g.edge_count());
    for spec in flags.get_all("fail") {
        let (a, b) = spec
            .split_once('-')
            .ok_or_else(|| format!("--fail expects a-b, got {spec:?}"))?;
        let (na, nb) = (resolve_node(topo, a.trim())?, resolve_node(topo, b.trim())?);
        let e = g
            .find_edge(na, nb)
            .ok_or_else(|| format!("no link {a} - {b} in {}", topo.name))?;
        mask.fail(e);
    }
    // Also accept --fail-edge <id> for scripted use.
    for spec in flags.get_all("fail-edge") {
        let id: u32 = spec
            .parse()
            .map_err(|_| format!("bad --fail-edge {spec:?}"))?;
        if (id as usize) >= g.edge_count() {
            return Err(format!("edge id {id} out of range"));
        }
        mask.fail(EdgeId(id));
    }
    Ok(mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(s: &[&str]) -> Flags {
        Flags::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn flag_parsing() {
        let f = flags(&["--k", "5", "--fail", "a-b", "--fail", "c-d"]);
        assert_eq!(f.get("k"), Some("5"));
        assert_eq!(f.get_all("fail"), &["a-b".to_string(), "c-d".to_string()]);
        assert_eq!(f.get_parsed::<usize>("k", 1).unwrap(), 5);
        assert_eq!(f.get_parsed::<usize>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn flag_errors() {
        assert!(Flags::parse(&["--k".to_string()]).is_err());
        assert!(Flags::parse(&["stray".to_string()]).is_err());
        let f = flags(&["--k", "abc"]);
        assert!(f.get_parsed::<usize>("k", 1).is_err());
    }

    #[test]
    fn list_flags() {
        let f = flags(&["--k", "1,3, 5"]);
        assert_eq!(f.get_list::<usize>("k", vec![]).unwrap(), vec![1, 3, 5]);
        assert_eq!(
            f.get_list::<usize>("p", vec![9]).unwrap(),
            vec![9],
            "default when absent"
        );
    }

    #[test]
    fn topology_resolution() {
        let f = flags(&["--topology", "geant"]);
        assert_eq!(resolve_topology(&f).unwrap().node_count(), 23);
        let f = flags(&["--topology", "nope"]);
        assert!(resolve_topology(&f).is_err());
        let f = flags(&[]);
        assert_eq!(resolve_topology(&f).unwrap().name, "sprint");
        let f = flags(&["--topology", "rand-24-40-7"]);
        assert_eq!(resolve_topology(&f).unwrap().node_count(), 24);
    }

    #[test]
    fn node_resolution_case_insensitive() {
        let topo = splice_topology::sprint::sprint();
        assert!(resolve_node(&topo, "Seattle").is_ok());
        assert!(resolve_node(&topo, "seattle").is_ok());
        assert!(resolve_node(&topo, "Atlantis").is_err());
    }

    #[test]
    fn failure_specs() {
        let topo = splice_topology::abilene::abilene();
        let f = flags(&["--fail", "Seattle-Denver"]);
        let mask = resolve_failures(&topo, &f).unwrap();
        assert_eq!(mask.failed_count(), 1);
        let f = flags(&["--fail", "Seattle+Denver"]);
        assert!(resolve_failures(&topo, &f).is_err());
        let f = flags(&["--fail", "Seattle-Miami"]);
        assert!(resolve_failures(&topo, &f).is_err(), "no such link");
        let f = flags(&["--fail-edge", "0"]);
        assert_eq!(resolve_failures(&topo, &f).unwrap().failed_count(), 1);
        let f = flags(&["--fail-edge", "999"]);
        assert!(resolve_failures(&topo, &f).is_err());
    }

    #[test]
    fn file_topology() {
        let dir = std::env::temp_dir().join("splice-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.topo");
        std::fs::write(&path, "a b 1.0\nb c 2.0\n").unwrap();
        let f = flags(&["--file", path.to_str().unwrap()]);
        let topo = resolve_topology(&f).unwrap();
        assert_eq!(topo.node_count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
