//! Integration tests driving the compiled `splice` binary end to end.

use std::process::{Command, Output};

fn splice(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_splice"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_and_no_args() {
    let out = splice(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("usage: splice"));
    let out = splice(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage: splice"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = splice(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn info_reports_paper_counts() {
    let out = splice(&["info", "--topology", "sprint"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("nodes    : 52"));
    assert!(text.contains("links    : 84"));
    assert!(text.contains("min cut"));
}

#[test]
fn route_prints_a_trace() {
    let out = splice(&["route", "--topology", "geant", "--src", "pt", "--dst", "se"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("delivered in"));
    assert!(text.contains("pt[s0]"));
}

#[test]
fn route_detects_failed_link() {
    let out = splice(&[
        "route",
        "--topology",
        "abilene",
        "--src",
        "Seattle",
        "--dst",
        "New York",
        "--fail",
        "Seattle-Denver",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("dropped at Seattle"));
}

#[test]
fn recover_routes_around_failure() {
    let out = splice(&[
        "recover",
        "--topology",
        "abilene",
        "--src",
        "Seattle",
        "--dst",
        "New York",
        "--fail",
        "Seattle-Denver",
        "--seed",
        "3",
        "--k",
        "5",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("recovered in"));
}

#[test]
fn recover_requires_a_failure() {
    let out = splice(&[
        "recover",
        "--topology",
        "abilene",
        "--src",
        "Seattle",
        "--dst",
        "Denver",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--fail"));
}

#[test]
fn reliability_prints_all_curves() {
    let out = splice(&[
        "reliability",
        "--topology",
        "abilene",
        "--k",
        "1,3",
        "--trials",
        "20",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("k = 1"));
    assert!(text.contains("k = 3"));
    assert!(text.contains("best possible"));
}

#[test]
fn recover_surfaces_router_stats() {
    let out = splice(&[
        "recover",
        "--topology",
        "abilene",
        "--src",
        "Seattle",
        "--dst",
        "New York",
        "--fail",
        "Seattle-Denver",
        "--scheme",
        "network",
        "--seed",
        "3",
        "--k",
        "5",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("data plane replay"), "{text}");
    assert!(text.contains("router stats: forwarded"), "{text}");
}

#[test]
fn reliability_metrics_snapshot() {
    let dir = std::env::temp_dir().join("splice-cli-metrics");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("m.txt");
    let trace = dir.join("walks.jsonl");
    let out = splice(&[
        "reliability",
        "--topology",
        "abilene",
        "--k",
        "1,3",
        "--trials",
        "10",
        "--metrics",
        metrics.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert!(text.contains("splice_packets_forwarded_total"), "{text}");
    assert!(text.contains("splice_deflections_total"), "{text}");
    assert!(text.contains("# TYPE splice_trial_duration_seconds histogram"));
    assert!(text.contains("splice_trial_duration_seconds_count 10"));
    let walks = std::fs::read_to_string(&trace).unwrap();
    // One JSONL line per ordered pair on abilene (11 nodes, one p value).
    assert_eq!(walks.lines().count(), 11 * 10);
    assert!(walks
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slices_prints_stretch_table() {
    let out = splice(&["slices", "--topology", "abilene", "--k", "3"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("per-slice path stretch"));
    assert!(text.contains("next-hop diversity"));
}

#[test]
fn bad_flags_fail_cleanly() {
    for args in [
        vec!["route", "--topology", "sprint"],     // missing src/dst
        vec!["info", "--topology", "atlantis"],    // unknown topology
        vec!["route", "--src"],                    // dangling flag
        vec!["info", "--fail", "Nowhere-Chicago"], // unknown node
    ] {
        let out = splice(&args);
        assert!(!out.status.success(), "{args:?} should fail");
        assert!(!stderr(&out).is_empty());
    }
}

#[test]
fn file_topology_roundtrip() {
    let dir = std::env::temp_dir().join("splice-cli-int");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("square.topo");
    std::fs::write(&path, "a b 1\nb c 1\nc d 1\nd a 1\n").unwrap();
    let out = splice(&["info", "--file", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("nodes    : 4"));
    assert!(text.contains("min cut  : 2"));
    std::fs::remove_dir_all(&dir).ok();
}
