//! Measured incremental-repair numbers, written to `BENCH_spf_repair.json`.
//!
//! The criterion suite in `benches/spf_repair.rs` gives statistically
//! rigorous timings; this module produces the companion machine-readable
//! summary: for each k, the cost of one full `Splicing::build` (what a
//! non-incremental control plane redoes after every event) against the
//! mean cost of `Splicing::repair` over every single-link failure on the
//! topology, plus the repair frontier and patched-column counts that
//! explain the gap. Plain `Instant` timing keeps the writer
//! dependency-free so it runs even where criterion is absent.

use splice_core::slices::{RepairEvent, Splicing, SplicingConfig};
use splice_sim::lab::LabError;
use splice_telemetry::{Histogram, JsonArray, JsonObject};
use splice_topology::TopologyError;
use std::path::Path;
use std::time::Instant;

use crate::load_topology;

/// Measured numbers for one value of k.
#[derive(Clone, Debug)]
pub struct RepairBenchEntry {
    /// Number of slices.
    pub k: usize,
    /// Wall time of one full `Splicing::build` (k·n Dijkstras).
    pub rebuild_seconds: f64,
    /// Mean wall time of `Splicing::repair` over every single-link
    /// failure event on the topology.
    pub repair_seconds_mean: f64,
    /// Median single-event repair time (log2-bucket interpolated).
    pub repair_seconds_p50: f64,
    /// Tail single-event repair time (p99, log2-bucket interpolated).
    pub repair_seconds_p99: f64,
    /// Worst single-event repair time.
    pub repair_seconds_max: f64,
    /// `rebuild_seconds / repair_seconds_mean` — the incremental win.
    pub speedup_mean: f64,
    /// Number of single-link failure events measured (= edge count).
    pub events: usize,
    /// Mean FIB columns rewritten per event, across all slices.
    pub patched_columns_mean: f64,
    /// Mean dirty-frontier size per event, summed across slices.
    pub frontier_nodes_mean: f64,
    /// Columns a full rebuild would rewrite (k·n), for comparison.
    pub columns_total: usize,
}

/// Measure full rebuilds vs. per-link repairs on `topology` for each k.
pub fn measure(
    topology: &str,
    ks: &[usize],
    seed: u64,
) -> Result<Vec<RepairBenchEntry>, TopologyError> {
    let topo = load_topology(topology)?;
    let g = topo.graph();
    let entries = ks
        .iter()
        .map(|&k| {
            let cfg = SplicingConfig::degree_based(k, 0.0, 3.0);
            let t0 = Instant::now();
            let sp = Splicing::build(&g, &cfg, seed);
            let rebuild_seconds = t0.elapsed().as_secs_f64();

            let mut repair_total = 0.0f64;
            // Per-event durations in nanoseconds; quantiles come out in
            // seconds via the scale, same as the registry histograms.
            let repair_hist = Histogram::with_scale(1e-9);
            let mut patched = 0usize;
            let mut frontier = 0usize;
            let mut events = 0usize;
            for e in g.edge_ids() {
                let event = RepairEvent::LinkFailure(e);
                let t0 = Instant::now();
                let (repaired, stats) = sp.repair_report(&g, &event);
                let elapsed = t0.elapsed();
                std::hint::black_box(repaired);
                repair_total += elapsed.as_secs_f64();
                repair_hist.record_duration(elapsed);
                patched += stats.patched_columns;
                frontier += stats.frontier_nodes;
                events += 1;
            }
            let repair_seconds_mean = repair_total / events.max(1) as f64;
            let (repair_seconds_p50, _, repair_seconds_p99) = repair_hist.quantiles();

            RepairBenchEntry {
                k,
                rebuild_seconds,
                repair_seconds_mean,
                repair_seconds_p50,
                repair_seconds_p99,
                // The histogram tracks the exact max and clamps its
                // quantiles to it, so sourcing both from the same place
                // keeps p99 <= max an invariant of the report.
                repair_seconds_max: repair_hist.max_scaled(),
                speedup_mean: rebuild_seconds / repair_seconds_mean.max(1e-12),
                events,
                patched_columns_mean: patched as f64 / events.max(1) as f64,
                frontier_nodes_mean: frontier as f64 / events.max(1) as f64,
                columns_total: k * g.node_count(),
            }
        })
        .collect();
    Ok(entries)
}

/// Schema version stamped into every `BENCH_spf_repair.json`. Bump when a
/// field is renamed, removed, or changes meaning; adding fields is
/// compatible. Version 2 added `repair_seconds_p50`/`repair_seconds_p99`
/// (log2-bucket interpolated quantiles) to every entry.
pub const SCHEMA_VERSION: u64 = 2;

/// Render entries as the `BENCH_spf_repair.json` document.
///
/// Stable schema (version [`SCHEMA_VERSION`]):
///
/// ```json
/// {
///   "benchmark": "spf_repair",
///   "schema_version": 2,
///   "topology": "<name>",
///   "seed": <u64>,
///   "entries": [ { one object per k, fields as in RepairBenchEntry } ]
/// }
/// ```
pub fn render(topology: &str, seed: u64, entries: &[RepairBenchEntry]) -> String {
    let mut arr = JsonArray::new();
    for e in entries {
        arr = arr.push_raw(
            &JsonObject::new()
                .field_u64("k", e.k as u64)
                .field_f64("rebuild_seconds", e.rebuild_seconds)
                .field_f64("repair_seconds_mean", e.repair_seconds_mean)
                .field_f64("repair_seconds_p50", e.repair_seconds_p50)
                .field_f64("repair_seconds_p99", e.repair_seconds_p99)
                .field_f64("repair_seconds_max", e.repair_seconds_max)
                .field_f64("speedup_mean", e.speedup_mean)
                .field_u64("events", e.events as u64)
                .field_f64("patched_columns_mean", e.patched_columns_mean)
                .field_f64("frontier_nodes_mean", e.frontier_nodes_mean)
                .field_u64("columns_total", e.columns_total as u64)
                .finish(),
        );
    }
    JsonObject::new()
        .field_str("benchmark", "spf_repair")
        .field_u64("schema_version", SCHEMA_VERSION)
        .field_str("topology", topology)
        .field_u64("seed", seed)
        .field_raw("entries", &arr.finish())
        .finish()
}

/// Measure on `topology` and write `BENCH_spf_repair.json` to `path`.
pub fn write_repair_report(
    path: impl AsRef<Path>,
    topology: &str,
    ks: &[usize],
    seed: u64,
) -> Result<(), LabError> {
    let entries = measure(topology, ks, seed)?;
    let mut text = render(topology, seed, &entries);
    text.push('\n');
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, text)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_entries_are_sane() {
        let entries = measure("abilene", &[1, 2], 7).unwrap();
        assert_eq!(entries.len(), 2);
        for e in &entries {
            assert!(e.rebuild_seconds > 0.0);
            assert!(e.repair_seconds_mean > 0.0);
            assert!(e.repair_seconds_p50 > 0.0);
            // Quantiles are clamped to the tracked max, so the usual
            // order holds exactly: p50 <= p99 <= max.
            assert!(e.repair_seconds_p99 >= e.repair_seconds_p50);
            assert!(e.repair_seconds_p99 <= e.repair_seconds_max);
            assert_eq!(e.events, 14); // Abilene's link count
            assert_eq!(e.columns_total, e.k * 11);
            // Repair never rewrites more columns than a full rebuild.
            assert!(e.patched_columns_mean <= e.columns_total as f64);
            assert!(e.frontier_nodes_mean > 0.0);
        }
    }

    #[test]
    fn report_renders_and_writes() {
        let entries = measure("abilene", &[1], 7).unwrap();
        let json = render("abilene", 7, &entries);
        assert!(json.contains(r#""benchmark":"spf_repair""#));
        assert!(json.contains(r#""schema_version":2"#));
        assert!(json.contains(r#""topology":"abilene""#));
        assert!(json.contains(r#""repair_seconds_mean""#));
        assert!(json.contains(r#""repair_seconds_p50""#));
        assert!(json.contains(r#""repair_seconds_p99""#));
        assert!(json.contains(r#""patched_columns_mean""#));

        let dir = std::env::temp_dir().join("splice-bench-repair-report");
        let path = dir.join("BENCH_spf_repair.json");
        write_repair_report(&path, "abilene", &[1], 7).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains(r#""benchmark":"spf_repair""#));
        assert!(back.ends_with('\n'));
        std::fs::remove_dir_all(&dir).ok();
    }
}
