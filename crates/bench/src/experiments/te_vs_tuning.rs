//! §5 extension: splicing's automatic load balancing vs conventional
//! link-weight optimization — the comparison the paper says it was
//! running ("we are currently comparing the traffic balance that path
//! splicing achieves versus that which conventional link-weight
//! optimization achieves, both in the case of failures and in steady
//! state").
//!
//! ```text
//! splice-lab run te_vs_tuning
//! ```

use crate::banner;
use splice_core::slices::{Splicing, SplicingConfig};
use splice_graph::EdgeMask;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;
use splice_traffic::load::{link_loads_with_recovery, RoutingMode};
use splice_traffic::matrix::TrafficMatrix;
use splice_traffic::optimize::{max_utilization, optimize_weights};

/// Splicing's untuned spreading vs Fortz–Thorup-style weight tuning.
pub struct TeVsTuning;

impl Experiment for TeVsTuning {
    fn name(&self) -> &'static str {
        "te_vs_tuning"
    }

    fn describe(&self) -> &'static str {
        "§5: splicing's untuned spreading vs tuned OSPF weights"
    }

    // Here "trials" is the optimizer's move budget, not a Monte-Carlo count.
    fn default_trials(&self) -> usize {
        800
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "§5 — splicing vs tuned OSPF weights, {} topology, {} optimizer moves",
            ctx.topology.name, ctx.config.trials
        ));

        let capacity = 100.0;
        let tm = TrafficMatrix::gravity(&g, 1500.0, ctx.config.seed);

        // Tuned single-path baseline. Built directly — the tables come from
        // the optimizer's weights, not a cacheable (k, perturbation, seed).
        let opt = optimize_weights(&g, &tm, capacity, ctx.config.trials, ctx.config.seed);
        println!(
            "weight search: cost {:.1} -> {:.1} over {} accepted moves\n",
            opt.initial_cost, opt.final_cost, opt.moves
        );
        let tuned = {
            use splice_core::slices::Slice;
            let tables = splice_routing::spf::spf_from_weights(&g, &opt.weights);
            Splicing::from_slices(vec![Slice {
                id: 0,
                weights: opt.weights.clone(),
                tables,
            }])
        };
        let base = ctx.deployment(
            &g,
            &SplicingConfig::degree_based(1, 0.0, 3.0),
            ctx.config.seed,
        );
        let spliced = ctx.deployment(
            &g,
            &SplicingConfig::degree_based(5, 0.0, 3.0),
            ctx.config.seed,
        );

        // Steady state.
        let steady = |sp: &Splicing, mode| max_utilization(sp, &g, &tm, mode, capacity);
        // Under failures: worst max-utilization over all single-link failures
        // with recovery re-routing.
        let worst_failure = |sp: &Splicing, mode| -> f64 {
            g.edge_ids()
                .map(|e| {
                    let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
                    link_loads_with_recovery(sp, &g, &tm, mode, &mask).max() / capacity
                })
                .fold(0.0f64, f64::max)
        };

        let measurements = [
            (
                "untuned OSPF (single path)",
                steady(&base, RoutingMode::ShortestPath),
                worst_failure(&base, RoutingMode::ShortestPath),
            ),
            (
                "tuned OSPF (Fortz-Thorup-style)",
                steady(&tuned, RoutingMode::ShortestPath),
                worst_failure(&tuned, RoutingMode::ShortestPath),
            ),
            (
                "splicing k=5, hash-spread",
                steady(&spliced, RoutingMode::HashSpread),
                worst_failure(&spliced, RoutingMode::HashSpread),
            ),
            (
                "splicing k=5, equal-split",
                steady(&spliced, RoutingMode::EqualSplit),
                worst_failure(&spliced, RoutingMode::EqualSplit),
            ),
        ];
        let rows = measurements
            .iter()
            .map(|(n, s, f)| vec![n.to_string(), format!("{:.3}", s), format!("{:.3}", f)])
            .collect::<Vec<_>>();

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("te_vs_tuning_{}.txt", ctx.topology.name),
                &["routing", "max util (steady)", "max util (worst failure)"],
                rows,
            )],
            notes: vec![
                "splicing needs no per-matrix tuning; the question is how close its untuned"
                    .to_string(),
                "spreading gets to the tuned baseline, and how each behaves under failures."
                    .to_string(),
            ],
        })
    }
}
