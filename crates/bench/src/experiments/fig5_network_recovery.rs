//! Figure 5: network-based recovery. A router whose next-hop link died
//! deflects the packet into an alternate slice with a live next hop.
//!
//! ```text
//! splice-lab run fig5
//! ```

use crate::banner;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;
use splice_sim::recovery::{recovery_experiment_instrumented, RecoveryConfig};

/// Network-based (router-driven) recovery curves.
pub struct Fig5NetworkRecovery;

impl Experiment for Fig5NetworkRecovery {
    fn name(&self) -> &'static str {
        "fig5_network_recovery"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["fig5"]
    }

    fn describe(&self) -> &'static str {
        "Figure 5: network-based recovery via slice deflection"
    }

    fn default_trials(&self) -> usize {
        100
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "Figure 5 — network-based recovery, {} topology, {} trials",
            ctx.topology.name, ctx.config.trials
        ));

        let mut cfg = RecoveryConfig::figure5(ctx.config.trials, ctx.config.seed);
        cfg.semantics = ctx.config.splice_semantics();
        let telemetry = ctx
            .experiment_telemetry()
            .with_heartbeat((ctx.config.trials / 10).max(1) as u64);
        let out =
            recovery_experiment_instrumented(&g, &ctx.topology.latencies(), &cfg, Some(&telemetry));

        let mut series = vec![out.no_splicing.clone()];
        for (rec, rel) in out.recovery.iter().zip(&out.reliability) {
            series.push(rec.clone());
            series.push(rel.clone());
        }

        let mut notes = vec!["\n=== §4.3 aggregates (network-based) ===".to_string()];
        for st in &out.stats {
            notes.push(format!(
                "k={}: attempts {} | recovered {} ({:.1}%) | latency stretch {:.2} | hop stretch {:.2} | loop fraction {:.4}",
                st.k,
                st.attempts,
                st.recovered,
                100.0 * st.recovered as f64 / st.attempts.max(1) as f64,
                st.avg_latency_stretch,
                st.avg_hop_stretch,
                st.loop_fraction,
            ));
        }

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::series(
                format!(
                    "fig5_network_recovery_{}_{}.csv",
                    ctx.topology.name, ctx.config.semantics
                ),
                "p",
                3,
                false,
                series,
            )],
            notes,
        })
    }
}
