//! Batched forwarding throughput: drain seeded Zipf bursts through the
//! scalar reference, the struct-of-arrays batch engine, and the sharded
//! batch workers over one rotating sequence of churn-repaired FIB
//! snapshots, and report aggregate packets per second for each.
//!
//! ```text
//! splice-lab run forward_storm
//! splice-lab run forward_storm --topology abilene --trials 50
//! ```
//!
//! `--trials` sets the bursts per shard. The CSV artifact carries each
//! engine's merged outcome checksum as its last column; every row must
//! agree — the measurement itself asserts it — so CI can diff the
//! column and a faster path that forwards differently cannot land.

use crate::banner;
use crate::forward_report::{measure, ForwardBenchConfig, ForwardBenchEntry};
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;

/// Worker shards (and independent flow streams) for the sharded engine.
const STORM_SHARDS: usize = 2;

/// Aggregate forwarding throughput: scalar vs batch vs sharded batch.
pub struct ForwardStorm;

fn csv(entries: &[ForwardBenchEntry]) -> String {
    let mut out = String::from(
        "engine,packets,hops,pps,ns_per_hop,burst_seconds_p50,burst_seconds_p99,\
         delivered,dead_end,link_down,persistent_loop,ttl_exceeded,\
         speedup_vs_scalar,checksum\n",
    );
    for e in entries {
        out.push_str(&format!(
            "{},{},{},{:.1},{:.1},{:.9},{:.9},{},{},{},{},{},{:.3},{}\n",
            e.engine,
            e.stats.packets,
            e.stats.hops,
            e.pps,
            e.ns_per_hop,
            e.burst_seconds_p50,
            e.burst_seconds_p99,
            e.stats.delivered,
            e.stats.dead_end,
            e.stats.link_down,
            e.stats.persistent_loop,
            e.stats.ttl_exceeded,
            e.speedup_vs_scalar,
            e.checksum,
        ));
    }
    out
}

impl Experiment for ForwardStorm {
    fn name(&self) -> &'static str {
        "forward_storm"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["forward"]
    }

    fn describe(&self) -> &'static str {
        "batched forwarding pps: scalar vs SoA burst engine vs sharded workers"
    }

    fn default_trials(&self) -> usize {
        200
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let mut cfg = ForwardBenchConfig::default_for(&ctx.topology.name, ctx.config.seed);
        cfg.bursts_per_shard = ctx.config.trials.max(1) as u64;
        cfg.shards = STORM_SHARDS;
        if let Some(b) = ctx.config.batch_size {
            cfg.batch = b.max(1);
        }
        banner(&format!(
            "forward storm — {} packets on {}, k={}, {} shards x {} bursts x {}",
            cfg.total_packets(),
            ctx.topology.name,
            cfg.k,
            cfg.shards,
            cfg.bursts_per_shard,
            cfg.burst_size
        ));

        let report = measure(&cfg)?;

        let mut rows = Vec::new();
        for e in &report.engines {
            rows.push(vec![
                e.engine.to_string(),
                format!("{:.0}", e.pps),
                format!("{:.0}ns", e.ns_per_hop),
                format!("{:.1}us", e.burst_seconds_p50 * 1e6),
                format!("{:.1}us", e.burst_seconds_p99 * 1e6),
                format!("{:.2}x", e.speedup_vs_scalar),
                format!("{:016x}", e.checksum),
            ]);
        }

        let notes = vec![
            format!(
                "all {} engines landed on outcome checksum {:016x} — the fast paths \
                 forward packet-for-packet like the scalar reference",
                report.engines.len(),
                report.engines[0].checksum
            ),
            format!(
                "differential oracle: {} flows through batch/scalar/naive across {} churn \
                 checkpoints, {} divergences",
                report.oracle.flows_checked, report.oracle.checkpoints, report.oracle.divergences
            ),
        ];

        Ok(ExperimentOutput {
            artifacts: vec![
                Artifact::table(
                    format!("forward_storm_{}.txt", ctx.topology.name),
                    &[
                        "engine",
                        "pps",
                        "ns/hop",
                        "burst p50",
                        "burst p99",
                        "vs scalar",
                        "checksum",
                    ],
                    rows,
                ),
                Artifact::text(
                    format!("forward_storm_{}.csv", ctx.topology.name),
                    csv(&report.engines),
                ),
            ],
            notes,
        })
    }
}
