//! Table 1: the paper's summary of results, assembled from fresh runs of
//! the reliability, recovery, and loop experiments.
//!
//! ```text
//! splice-lab run table1
//! ```

use crate::banner;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::loops::{loop_experiment, LoopConfig};
use splice_sim::output::Artifact;
use splice_sim::recovery::{recovery_experiment, RecoveryConfig};
use splice_sim::reliability::{reliability_experiment, ReliabilityConfig};
use splice_sim::summary::Table1;

/// The paper's summary table.
pub struct Table1Summary;

impl Experiment for Table1Summary {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn describe(&self) -> &'static str {
        "Table 1: summary assembled from reliability + recovery + loop runs"
    }

    fn default_trials(&self) -> usize {
        100
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "Table 1 — summary of results, {} topology, {} trials per experiment",
            ctx.topology.name, ctx.config.trials
        ));

        let reliability = reliability_experiment(
            &g,
            &ReliabilityConfig::figure3(ctx.config.trials, ctx.config.seed),
        );
        let recovery = recovery_experiment(
            &g,
            &ctx.topology.latencies(),
            &RecoveryConfig::figure4(ctx.config.trials, ctx.config.seed + 1),
        );
        let loops = loop_experiment(
            &g,
            &LoopConfig::paper(vec![2, 5, 10], ctx.config.trials, ctx.config.seed + 2),
        );

        let rendered = Table1::assemble(&reliability, &recovery, &loops).render();

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::text(
                format!("table1_{}.txt", ctx.topology.name),
                rendered,
            )],
            notes: Vec::new(),
        })
    }
}
