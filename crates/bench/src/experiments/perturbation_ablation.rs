//! Ablation (§3.1.1): perturbation strategy and `Weight(a, b)` range —
//! how the choice the paper settled on (degree-based `Weight(0, 3)`)
//! compares with uniform perturbations and other ranges, on both
//! reliability and stretch.
//!
//! ```text
//! splice-lab run perturbation_ablation
//! ```

use crate::banner;
use splice_core::slices::SplicingConfig;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;
use splice_sim::reliability::{reliability_experiment, ReliabilityConfig};
use splice_sim::stretch_exp::{slice_stretch_experiment, worst_slice_p99};

/// Perturbation-strategy ablation at k=5.
pub struct PerturbationAblation;

impl Experiment for PerturbationAblation {
    fn name(&self) -> &'static str {
        "perturbation_ablation"
    }

    fn describe(&self) -> &'static str {
        "Ablation: perturbation strategy and Weight(a,b) range trade-offs"
    }

    fn default_trials(&self) -> usize {
        120
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "Ablation — perturbation strategies, {} topology, k=5, {} trials",
            ctx.topology.name, ctx.config.trials
        ));

        let variants: Vec<(&str, SplicingConfig)> = vec![
            (
                "degree Weight(0,1)",
                SplicingConfig::degree_based(5, 0.0, 1.0),
            ),
            (
                "degree Weight(0,3)",
                SplicingConfig::degree_based(5, 0.0, 3.0),
            ),
            (
                "degree Weight(0,5)",
                SplicingConfig::degree_based(5, 0.0, 5.0),
            ),
            (
                "degree Weight(1,3)",
                SplicingConfig::degree_based(5, 1.0, 3.0),
            ),
            ("uniform(1)", SplicingConfig::uniform(5, 1.0)),
            ("uniform(3)", SplicingConfig::uniform(5, 3.0)),
        ];

        let ps = vec![0.02, 0.05, 0.08];
        let mut rows = Vec::new();
        for (name, scfg) in variants {
            let rel = reliability_experiment(
                &g,
                &ReliabilityConfig {
                    ks: vec![5],
                    ps: ps.clone(),
                    trials: ctx.config.trials,
                    splicing: scfg.clone(),
                    semantics: Default::default(),
                    seed: ctx.config.seed,
                },
            );
            let disc_at = |p: f64| {
                rel.curves[0]
                    .y_at(p)
                    .expect("queried p comes from the experiment's own ps list")
            };
            let stats = slice_stretch_experiment(
                &g,
                &ctx.topology.latencies(),
                &scfg,
                &[ctx.config.seed, ctx.config.seed + 1, ctx.config.seed + 2],
            );
            rows.push(vec![
                name.to_string(),
                format!("{:.4}", disc_at(0.02)),
                format!("{:.4}", disc_at(0.05)),
                format!("{:.4}", disc_at(0.08)),
                format!("{:.3}", worst_slice_p99(&stats)),
            ]);
        }

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("perturbation_ablation_{}.txt", ctx.topology.name),
                &[
                    "perturbation",
                    "disc@p=.02",
                    "disc@p=.05",
                    "disc@p=.08",
                    "worst p99 stretch",
                ],
                rows,
            )],
            notes: vec![
                "trade-off: stronger perturbations buy reliability but cost stretch".to_string(),
            ],
        })
    }
}
