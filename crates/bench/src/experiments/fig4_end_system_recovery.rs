//! Figure 4: end-system recovery. For every broken default path, the end
//! host retries with coin-toss-randomized forwarding bits (20-hop header,
//! switch probability 0.5), up to 5 trials.
//!
//! ```text
//! splice-lab run fig4
//! ```

use crate::banner;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;
use splice_sim::recovery::{recovery_experiment_instrumented, RecoveryConfig};

/// End-system (host-driven) recovery curves.
pub struct Fig4EndSystemRecovery;

impl Experiment for Fig4EndSystemRecovery {
    fn name(&self) -> &'static str {
        "fig4_end_system_recovery"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["fig4"]
    }

    fn describe(&self) -> &'static str {
        "Figure 4: end-system recovery via randomized splice headers"
    }

    fn default_trials(&self) -> usize {
        100
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "Figure 4 — end-system recovery, {} topology, {} trials",
            ctx.topology.name, ctx.config.trials
        ));

        let mut cfg = RecoveryConfig::figure4(ctx.config.trials, ctx.config.seed);
        cfg.semantics = ctx.config.splice_semantics();
        let telemetry = ctx
            .experiment_telemetry()
            .with_heartbeat((ctx.config.trials / 10).max(1) as u64);
        let out =
            recovery_experiment_instrumented(&g, &ctx.topology.latencies(), &cfg, Some(&telemetry));

        let mut series = vec![out.no_splicing.clone()];
        for (rec, rel) in out.recovery.iter().zip(&out.reliability) {
            series.push(rec.clone());
            series.push(rel.clone());
        }

        let mut notes = vec!["\n=== §4.3 aggregates (end-system) ===".to_string()];
        for st in &out.stats {
            notes.push(format!(
                "k={}: attempts {} | recovered {} ({:.1}%) | avg trials {:.2} | latency stretch {:.2} | hop stretch {:.2} | loop fraction {:.4}",
                st.k,
                st.attempts,
                st.recovered,
                100.0 * st.recovered as f64 / st.attempts.max(1) as f64,
                st.avg_trials,
                st.avg_latency_stretch,
                st.avg_hop_stretch,
                st.loop_fraction,
            ));
        }

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::series(
                format!(
                    "fig4_end_system_recovery_{}_{}.csv",
                    ctx.topology.name, ctx.config.semantics
                ),
                "p",
                3,
                false,
                series,
            )],
            notes,
        })
    }
}
