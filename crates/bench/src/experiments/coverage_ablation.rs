//! §5 extension: coverage-aware slice construction vs. independent
//! random perturbation — does steering new slices onto uncovered edges
//! buy "more reliability with fewer slices", as the paper conjectures?
//!
//! ```text
//! splice-lab run coverage_ablation
//! ```

use crate::banner;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_core::coverage::{build_coverage_aware, CoverageConfig};
use splice_core::slices::{Splicing, SplicingConfig};
use splice_sim::failure::FailureModel;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;

/// Coverage-aware vs independent slice construction.
///
/// Builds a fresh deployment pair per trial (seeded `seed + trial`), so it
/// deliberately bypasses the shared deployment cache.
pub struct CoverageAblation;

impl Experiment for CoverageAblation {
    fn name(&self) -> &'static str {
        "coverage_ablation"
    }

    fn describe(&self) -> &'static str {
        "§5: coverage-aware slice construction vs independent perturbation"
    }

    fn default_trials(&self) -> usize {
        200
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "Ablation — coverage-aware vs independent slices, {} topology, {} trials",
            ctx.topology.name, ctx.config.trials
        ));

        let n = g.node_count();
        let pairs = (n * (n - 1)) as f64;
        let p = 0.05;
        let kmax = 10;

        // Mean disconnection (union semantics) per k for each construction.
        let mut disc_plain = vec![0.0; kmax];
        let mut disc_aware = vec![0.0; kmax];
        let mut cov_plain = vec![0.0; kmax];
        let mut cov_aware = vec![0.0; kmax];
        for trial in 0..ctx.config.trials as u64 {
            let seed = ctx.config.seed + trial;
            let plain = Splicing::build(&g, &SplicingConfig::degree_based(kmax, 0.0, 3.0), seed);
            let aware = build_coverage_aware(
                &g,
                &CoverageConfig {
                    base: SplicingConfig::degree_based(kmax, 0.0, 3.0),
                    penalty: 1.0,
                },
                seed,
            );
            let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
            let mask = FailureModel::IidLinks { p }.sample(&g, &mut rng);
            for k in 1..=kmax {
                disc_plain[k - 1] += plain.union_disconnected_pairs(k, &mask) as f64 / pairs;
                disc_aware[k - 1] += aware.union_disconnected_pairs(k, &mask) as f64 / pairs;
                // Mean distinct next hops per (node, destination) — the
                // diversity the penalty is supposed to manufacture.
                let diversity = |sp: &Splicing| {
                    let total: usize = g.nodes().map(|t| sp.diversity_toward(t, k)).sum();
                    total as f64 / (n * (n - 1)) as f64
                };
                cov_plain[k - 1] += diversity(&plain);
                cov_aware[k - 1] += diversity(&aware);
            }
        }
        let t = ctx.config.trials as f64;
        let rows: Vec<Vec<String>> = (1..=kmax)
            .map(|k| {
                vec![
                    k.to_string(),
                    format!("{:.4}", disc_plain[k - 1] / t),
                    format!("{:.4}", disc_aware[k - 1] / t),
                    format!("{:.3}", cov_plain[k - 1] / t),
                    format!("{:.3}", cov_aware[k - 1] / t),
                ]
            })
            .collect();

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("coverage_ablation_{}.txt", ctx.topology.name),
                &[
                    "k",
                    "disc (independent)",
                    "disc (coverage-aware)",
                    "next-hop diversity (ind)",
                    "next-hop diversity (aware)",
                ],
                rows,
            )],
            notes: vec![
                format!(
                    "disconnection at p = {p}, union semantics; the paper's §5 conjecture is that"
                ),
                "coverage awareness achieves a given reliability with fewer slices.".to_string(),
            ],
        })
    }
}
