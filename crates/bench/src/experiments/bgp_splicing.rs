//! §5 extension: interdomain path splicing. BGP's decision process keeps
//! the k best valley-free routes per destination; the forwarding bits
//! select among them. We measure AS-level reliability under inter-AS link
//! failures, before any reconvergence.
//!
//! ```text
//! splice-lab run bgp_splicing
//! ```

use crate::banner;
use splice_bgp::asgraph::{AsGraph, AsId};
use splice_bgp::splice_bgp::bgp_reliability;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;

/// AS-level reliability with k spliced BGP routes.
pub struct BgpSplicing;

impl Experiment for BgpSplicing {
    fn name(&self) -> &'static str {
        "bgp_splicing"
    }

    fn describe(&self) -> &'static str {
        "§5: AS-level reliability with k best valley-free BGP routes"
    }

    fn default_trials(&self) -> usize {
        200
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let (trials, seed) = (ctx.config.trials, ctx.config.seed);
        banner(&format!(
            "§5 — spliced BGP reliability, internet-like AS graph, {trials} trials"
        ));

        let g = AsGraph::internet_like(4, 12, 40, seed);
        println!(
            "AS graph: {} ASes, {} inter-AS links (4 tier-1, 12 mid, 40 stubs)",
            g.as_count(),
            g.link_count()
        );

        let ks = [1usize, 2, 3];
        let ps: Vec<f64> = (1..=5).map(|i| i as f64 * 0.02).collect();
        // Average over several destinations for stability. At least one
        // trial per destination even when a smoke run asks for fewer.
        let dests = [AsId(0), AsId(6), AsId(30), AsId(50)];
        let per_dest = (trials / dests.len()).max(1);
        let mut rows = Vec::new();
        for &p in &ps {
            let mut cells = vec![format!("{p:.2}")];
            for &k in &ks {
                let mut acc = 0.0;
                for &d in &dests {
                    let pts = bgp_reliability(&g, d, &[k], &[p], per_dest, seed);
                    acc += pts[0].disconnected;
                }
                cells.push(format!("{:.4}", acc / dests.len() as f64));
            }
            rows.push(cells);
        }

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                "bgp_splicing.txt",
                &["p", "k=1", "k=2", "k=3"],
                rows,
            )],
            notes: vec![
                "claim: installing k best BGP routes sharply cuts AS-level disconnection"
                    .to_string(),
            ],
        })
    }
}
