//! Baseline: ECMP — the multipath deployed today. ECMP's diversity comes
//! from accidental weight ties in one weight setting; splicing's comes
//! from k deliberate trees. How far do ties get you on a real topology?
//!
//! ```text
//! splice-lab run ecmp_baseline
//! ```

use crate::banner;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_core::slices::SplicingConfig;
use splice_routing::ecmp::{ecmp_disconnected_pairs, ecmp_sets};
use splice_sim::failure::FailureModel;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;

/// ECMP tie-diversity vs deliberate slices.
pub struct EcmpBaseline;

impl Experiment for EcmpBaseline {
    fn name(&self) -> &'static str {
        "ecmp_baseline"
    }

    fn describe(&self) -> &'static str {
        "Baseline: ECMP's accidental tie-diversity vs spliced slices"
    }

    fn default_trials(&self) -> usize {
        300
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "Baseline — ECMP vs splicing, {} topology, {} trials",
            ctx.topology.name, ctx.config.trials
        ));

        let n = g.node_count();
        let pairs = (n * (n - 1)) as f64;
        let w = g.base_weights();

        // How much tie-fanout does this topology even have?
        let fanout: f64 = g
            .nodes()
            .map(|t| ecmp_sets(&g, t, &w).mean_fanout())
            .sum::<f64>()
            / n as f64;
        println!("mean ECMP fan-out on base weights: {fanout:.3} next hops per (node, dst)\n");

        let splicing = ctx.deployment(
            &g,
            &SplicingConfig::degree_based(10, 0.0, 3.0),
            ctx.config.seed,
        );
        let ps = [0.02f64, 0.05, 0.08];
        let mut rows = Vec::new();
        for &p in &ps {
            let (mut single, mut ecmp, mut k2, mut k5) = (0.0, 0.0, 0.0, 0.0);
            for trial in 0..ctx.config.trials as u64 {
                let mut rng = StdRng::seed_from_u64(ctx.config.seed + trial);
                let mask = FailureModel::IidLinks { p }.sample(&g, &mut rng);
                single += splicing.disconnected_pairs(1, &mask) as f64 / pairs;
                ecmp += ecmp_disconnected_pairs(&g, &w, &mask) as f64 / pairs;
                k2 += splicing.disconnected_pairs(2, &mask) as f64 / pairs;
                k5 += splicing.disconnected_pairs(5, &mask) as f64 / pairs;
            }
            let t = ctx.config.trials as f64;
            rows.push(vec![
                format!("{p}"),
                format!("{:.4}", single / t),
                format!("{:.4}", ecmp / t),
                format!("{:.4}", k2 / t),
                format!("{:.4}", k5 / t),
            ]);
        }

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("ecmp_baseline_{}.txt", ctx.topology.name),
                &[
                    "p",
                    "single path",
                    "ECMP (ties)",
                    "splicing k=2",
                    "splicing k=5",
                ],
                rows,
            )],
            notes: vec![
                "(directed forwarding semantics throughout.) With distance-derived weights the"
                    .to_string(),
                "topology has few exact ties, so ECMP barely improves on single-path — one"
                    .to_string(),
                "deliberately perturbed slice beats all the accidental ties.".to_string(),
            ],
        })
    }
}
