//! Ablation (§4.4/§5): loop-handling strategies for recovery headers —
//! the free Bernoulli re-toss, first-hop-biased flipping, never-revisit
//! (provably no persistent loops), and bounded switches — trading loop
//! frequency against recovery success.
//!
//! ```text
//! splice-lab run loopfree_ablation
//! ```

use crate::banner;
use splice_core::prelude::*;
use splice_core::recovery::HeaderStrategy;
use splice_core::slices::SplicingConfig;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::loops::{loop_experiment, LoopConfig};
use splice_sim::output::Artifact;
use splice_sim::recovery::{recovery_experiment, RecoveryConfig, RecoveryScheme};

/// Loop-handling strategy ablation at k=5.
pub struct LoopfreeAblation;

impl Experiment for LoopfreeAblation {
    fn name(&self) -> &'static str {
        "loopfree_ablation"
    }

    fn describe(&self) -> &'static str {
        "Ablation: loop-handling header strategies vs recovery success"
    }

    fn default_trials(&self) -> usize {
        60
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "Ablation — loop-handling strategies, {} topology, k=5, {} trials",
            ctx.topology.name, ctx.config.trials
        ));

        let strategies: Vec<(&str, HeaderStrategy)> = vec![
            (
                "bernoulli(0.5)",
                HeaderStrategy::Bernoulli { flip_prob: 0.5 },
            ),
            (
                "first-hop-biased(0.8)",
                HeaderStrategy::FirstHopBiased { flip_prob: 0.8 },
            ),
            (
                "no-revisit(0.5)",
                HeaderStrategy::NoRevisit { flip_prob: 0.5 },
            ),
            (
                "bounded-switches(0.5, 2)",
                HeaderStrategy::BoundedSwitches {
                    flip_prob: 0.5,
                    max_switches: 2,
                },
            ),
        ];

        let mut rows = Vec::new();
        for (name, strategy) in strategies {
            // Recovery success with this strategy.
            let rec_cfg = RecoveryConfig {
                ks: vec![5],
                ps: vec![0.02, 0.05, 0.08],
                trials: ctx.config.trials,
                splicing: SplicingConfig::degree_based(5, 0.0, 3.0),
                scheme: RecoveryScheme::EndSystem(EndSystemRecovery {
                    max_trials: 5,
                    header_hops: 20,
                    strategy,
                }),
                semantics: Default::default(),
                seed: ctx.config.seed,
            };
            let rec = recovery_experiment(&g, &ctx.topology.latencies(), &rec_cfg);
            let st = &rec.stats[0];

            // Loop frequency with this strategy.
            let loop_cfg = LoopConfig {
                ks: vec![5],
                p: 0.05,
                trials: ctx.config.trials,
                splicing: SplicingConfig::degree_based(5, 0.0, 3.0),
                strategy,
                header_hops: 20,
                seed: ctx.config.seed,
            };
            let loops = &loop_experiment(&g, &loop_cfg)[0];

            rows.push(vec![
                name.to_string(),
                format!(
                    "{:.1}%",
                    100.0 * st.recovered as f64 / st.attempts.max(1) as f64
                ),
                format!("{:.2}", st.avg_trials),
                format!("{:.3}", st.avg_latency_stretch),
                format!("{:.4}", loops.two_hop_rate()),
                format!("{:.4}", loops.longer_rate()),
                loops.persistent.to_string(),
            ]);
        }

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("loopfree_ablation_{}.txt", ctx.topology.name),
                &[
                    "strategy",
                    "recovered",
                    "avg trials",
                    "lat stretch",
                    "2-hop loops/trial",
                    ">2-hop/trial",
                    "persistent",
                ],
                rows,
            )],
            notes: vec![
                "expectation: no-revisit eliminates persistent loops at a small recovery cost"
                    .to_string(),
            ],
        })
    }
}
