//! §4.4: forwarding-loop frequencies under random recovery headers —
//! roughly 1-in-100 trials see a two-hop loop at k = 2, up to 1-in-10 at
//! larger k; longer loops are extremely rare.
//!
//! ```text
//! splice-lab run loop_stats
//! ```

use crate::banner;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::loops::{loop_experiment, LoopConfig};
use splice_sim::output::Artifact;

/// Forwarding-loop frequency table.
pub struct LoopStats;

impl Experiment for LoopStats {
    fn name(&self) -> &'static str {
        "loop_stats"
    }

    fn describe(&self) -> &'static str {
        "§4.4: forwarding-loop frequencies under Bernoulli(0.5) headers"
    }

    fn default_trials(&self) -> usize {
        150
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "§4.4 — forwarding-loop frequency, {} topology, Bernoulli(0.5) headers, {} trials",
            ctx.topology.name, ctx.config.trials
        ));

        let cfg = LoopConfig::paper(vec![2, 3, 5, 10], ctx.config.trials, ctx.config.seed);
        let out = loop_experiment(&g, &cfg);

        let rows: Vec<Vec<String>> = out
            .iter()
            .map(|st| {
                vec![
                    st.k.to_string(),
                    st.attempts.to_string(),
                    format!("{:.4}", st.two_hop_rate()),
                    format!("{:.4}", st.longer_rate()),
                    st.persistent.to_string(),
                ]
            })
            .collect();

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("loop_stats_{}.txt", ctx.topology.name),
                &[
                    "k",
                    "recovery trials",
                    "2-hop loop rate",
                    ">2-hop loop rate",
                    "persistent",
                ],
                rows,
            )],
            notes: vec![
                "paper: 2-hop ≈ 0.01/trial at k=2, ≈ 0.1/trial at larger k; longer loops extremely rare"
                    .to_string(),
            ],
        })
    }
}
