//! Theorem A.1's scaling claim: the slice count needed for near-optimal
//! connectivity grows like log n. We sweep three graph families of
//! growing size and report k* (the slices capturing 90% of the achievable
//! disconnection improvement) against log₂ n.
//!
//! ```text
//! splice-lab run scaling_lognslices
//! ```

use crate::banner;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;
use splice_sim::scaling::{slices_needed, ScalingConfig};
use splice_topology::generators::{barabasi_albert, connected_erdos_renyi, waxman};

/// Slices needed vs graph size across three random families.
pub struct ScalingLogNSlices;

impl Experiment for ScalingLogNSlices {
    fn name(&self) -> &'static str {
        "scaling_lognslices"
    }

    fn describe(&self) -> &'static str {
        "Theorem A.1: slices needed vs n across ER/BA/Waxman families"
    }

    fn default_trials(&self) -> usize {
        60
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let (trials, seed) = (ctx.config.trials, ctx.config.seed);
        banner(&format!(
            "Theorem A.1 — slices needed vs n (90% of achievable improvement, p=0.05, {trials} trials)"
        ));

        let sizes = [16usize, 24, 32, 48, 64, 96];
        let mut rows = Vec::new();
        for &n in &sizes {
            let cfg = ScalingConfig {
                trials,
                seed,
                ..Default::default()
            };
            let er = connected_erdos_renyi(n, (4.0 / n as f64).min(0.9).max(6.0 / n as f64), seed);
            let ba = barabasi_albert(n, 2, &mut StdRng::seed_from_u64(seed + 1));
            let wx = waxman(n, 0.9, 0.35, &mut StdRng::seed_from_u64(seed + 2));
            let k_er = slices_needed(&er, &cfg);
            let k_ba = slices_needed(&ba, &cfg);
            let k_wx = slices_needed(&wx, &cfg);
            rows.push(vec![
                n.to_string(),
                format!("{:.2}", (n as f64).log2()),
                k_er.to_string(),
                k_ba.to_string(),
                k_wx.to_string(),
            ]);
        }

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                "scaling_lognslices.txt",
                &["n", "log2(n)", "k* (ER)", "k* (BA m=2)", "k* (Waxman)"],
                rows,
            )],
            notes: vec![
                "Theorem A.1 is an upper bound: c0·log n slices always suffice. Measured k*"
                    .to_string(),
                "stays at or below a small constant multiple of log2(n) across families and"
                    .to_string(),
                "sizes — on these constant-average-degree families it saturates around 3-5."
                    .to_string(),
            ],
        })
    }
}
