//! The intro's scalability claim, quantified: splicing's path diversity
//! comes "without running a protocol that must compute an exponential
//! number of paths". Here is that other protocol — explicit k-shortest
//! paths (Yen) per pair — compared with splicing on state and compute.
//!
//! ```text
//! splice-lab run explicit_paths_baseline
//! ```

use crate::banner;
use splice_core::slices::{Splicing, SplicingConfig};
use splice_graph::yen::k_shortest_paths;
use splice_graph::NodeId;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;
use std::time::Instant;

/// Explicit k-shortest-paths multipath vs splicing on state and compute.
///
/// Deliberately bypasses the deployment cache: the build *time* is one of
/// the measured columns, so every build must actually happen here.
pub struct ExplicitPathsBaseline;

impl Experiment for ExplicitPathsBaseline {
    fn name(&self) -> &'static str {
        "explicit_paths_baseline"
    }

    fn describe(&self) -> &'static str {
        "Baseline: explicit k-shortest-path state/compute vs splicing"
    }

    fn default_trials(&self) -> usize {
        0
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "Baseline — explicit k-shortest paths vs splicing, {} topology",
            ctx.topology.name
        ));

        let n = g.node_count();
        let w = g.base_weights();
        let mut rows = Vec::new();
        for k in [2usize, 5, 10] {
            // Splicing: k trees per destination; state = n FIB entries per
            // (router, slice); construction = k * n Dijkstras. Built
            // directly (not via the cache) because the build is timed.
            let t0 = Instant::now();
            let splicing = Splicing::build(
                &g,
                &SplicingConfig::degree_based(k, 0.0, 3.0),
                ctx.config.seed,
            );
            let splice_time = t0.elapsed();
            let splice_state: usize = splicing.total_state();

            // Explicit multipath: k loopless paths per ordered pair; state =
            // stored hops per pair (a source route each).
            let t0 = Instant::now();
            let mut explicit_state = 0usize;
            for s in 0..n as u32 {
                for t in 0..n as u32 {
                    if s == t {
                        continue;
                    }
                    let paths = k_shortest_paths(&g, &w, NodeId(s), NodeId(t), k);
                    explicit_state += paths.iter().map(|p| p.hop_count()).sum::<usize>();
                }
            }
            let explicit_time = t0.elapsed();

            rows.push(vec![
                k.to_string(),
                splice_state.to_string(),
                format!("{:.0} ms", splice_time.as_secs_f64() * 1e3),
                explicit_state.to_string(),
                format!("{:.0} ms", explicit_time.as_secs_f64() * 1e3),
                format!("{:.1}x", explicit_state as f64 / splice_state as f64),
            ]);
        }

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("explicit_paths_baseline_{}.txt", ctx.topology.name),
                &[
                    "k",
                    "splicing state (FIB entries)",
                    "build",
                    "explicit state (stored hops)",
                    "build",
                    "state ratio",
                ],
                rows,
            )],
            notes: vec![
                "splicing's state is k FIBs (k*n per router); explicit multipath stores k"
                    .to_string(),
                "source routes per *pair* — the per-pair blowup the paper's design avoids."
                    .to_string(),
            ],
        })
    }
}
