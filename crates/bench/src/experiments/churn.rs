//! Sustained-churn throughput: replay a long deterministic stream of
//! failures, reweights, and recoveries through the batched repair path
//! at several batch sizes, and report how many updates per second the
//! control plane absorbs at each.
//!
//! ```text
//! splice-lab run churn
//! splice-lab run churn --batch-size 8     # pin one batch size
//! ```
//!
//! `--trials` sets the schedule length. The CSV artifact carries the
//! final-FIB checksum as its last column; every row must agree, because
//! `repair_batch` is bit-identical to folding its events one at a time —
//! CI diffs that column across batch sizes.

use crate::banner;
use crate::churn_report::{measure, ChurnBenchEntry};
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;

/// Default batch-size sweep when `--batch-size` is not pinned.
const BATCH_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];

/// Slices for the churn deployment.
const CHURN_K: usize = 5;

/// Sustained updates/sec under churn at several repair batch sizes.
pub struct Churn;

fn csv(entries: &[ChurnBenchEntry]) -> String {
    let mut out = String::from(
        "batch_size,batches,events_applied,rebuilds,updates_per_sec,\
         repair_seconds_p50,repair_seconds_p99,repair_seconds_max,\
         patched_columns,patched_columns_per_sec,speedup_vs_batch1,fib_checksum\n",
    );
    for e in entries {
        out.push_str(&format!(
            "{},{},{},{},{:.1},{:.9},{:.9},{:.9},{},{:.1},{:.3},{}\n",
            e.batch_size,
            e.batches,
            e.events_applied,
            e.rebuilds,
            e.updates_per_sec,
            e.repair_seconds_p50,
            e.repair_seconds_p99,
            e.repair_seconds_max,
            e.patched_columns,
            e.patched_columns_per_sec,
            e.speedup_vs_batch1,
            e.fib_checksum,
        ));
    }
    out
}

impl Experiment for Churn {
    fn name(&self) -> &'static str {
        "churn"
    }

    fn describe(&self) -> &'static str {
        "sustained-churn updates/sec through batched delta-SPF repair"
    }

    fn default_trials(&self) -> usize {
        400
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let schedule_len = ctx.config.trials.max(1);
        let sweep: Vec<usize> = match ctx.config.batch_size {
            Some(b) => vec![b],
            None => BATCH_SWEEP.to_vec(),
        };
        banner(&format!(
            "sustained churn — {} events on {}, k={}, batch sizes {:?}",
            schedule_len, ctx.topology.name, CHURN_K, sweep
        ));

        let entries = measure(
            &ctx.topology.name,
            CHURN_K,
            schedule_len,
            &sweep,
            ctx.config.seed,
        )?;

        let mut rows = Vec::new();
        for e in &entries {
            rows.push(vec![
                e.batch_size.to_string(),
                format!("{:.0}", e.updates_per_sec),
                format!("{:.1}us", e.repair_seconds_p50 * 1e6),
                format!("{:.1}us", e.repair_seconds_p99 * 1e6),
                format!("{:.2}x", e.speedup_vs_batch1),
                format!("{:016x}", e.fib_checksum),
            ]);
        }

        let notes = vec![
            format!(
                "all {} batch sizes landed on FIB checksum {:016x} — batching changed nothing but speed",
                entries.len(),
                entries[0].fib_checksum
            ),
            "timed steps are repair_batch calls only; rebuild-from-base recoveries are untimed"
                .to_string(),
        ];

        Ok(ExperimentOutput {
            artifacts: vec![
                Artifact::table(
                    format!("churn_{}.txt", ctx.topology.name),
                    &[
                        "batch size",
                        "updates/sec",
                        "repair p50",
                        "repair p99",
                        "vs batch=1",
                        "fib checksum",
                    ],
                    rows,
                ),
                Artifact::text(format!("churn_{}.csv", ctx.topology.name), csv(&entries)),
            ],
            notes,
        })
    }
}
