//! Figure 3: reliability curves with degree-based `Weight(0, 3)`
//! perturbations, k ∈ {1, 2, 3, 4, 5, 10}, plus the best-possible curve
//! of the underlying graph.
//!
//! ```text
//! splice-lab run fig3
//! splice-lab run fig3 --topology geant
//! ```

use crate::banner;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;
use splice_sim::reliability::{reliability_experiment_instrumented, ReliabilityConfig};

/// The paper's headline figure.
pub struct Fig3Reliability;

impl Experiment for Fig3Reliability {
    fn name(&self) -> &'static str {
        "fig3_reliability"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["fig3"]
    }

    fn describe(&self) -> &'static str {
        "Figure 3: reliability curves, degree-based Weight(0,3), k in {1..5,10}"
    }

    fn default_trials(&self) -> usize {
        250
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "Figure 3 — reliability, {} ({} nodes / {} links), degree-based Weight(0,3), {} trials",
            ctx.topology.name,
            ctx.topology.node_count(),
            ctx.topology.link_count(),
            ctx.config.trials
        ));

        let mut cfg = ReliabilityConfig::figure3(ctx.config.trials, ctx.config.seed);
        cfg.semantics = ctx.config.splice_semantics();
        cfg.splicing = cfg.splicing.with_strategy(ctx.config.strategy);
        if ctx.config.strategy != splice_core::strategy::StrategyKind::PerturbedSpf {
            println!("strategy: {}", ctx.config.strategy.name());
        }
        println!(
            "semantics: {} (use --semantics directed for forwarding-exact accounting)",
            ctx.config.semantics
        );
        let telemetry = ctx
            .experiment_telemetry()
            .with_heartbeat((ctx.config.trials / 10).max(1) as u64);
        let out = reliability_experiment_instrumented(&g, &cfg, Some(&telemetry));

        let mut series = out.curves.clone();
        series.push(out.best_possible.clone());

        // Headline check: k=10 vs best possible at p = 0.05.
        let k10 = out.for_k(10).expect("k=10 evaluated");
        let at = |s: &splice_sim::stats::Series| s.y_at(0.05).unwrap_or(f64::NAN);
        let headline = format!(
            "At p=0.05: k=1 {:.4} | k=5 {:.4} | k=10 {:.4} | best possible {:.4}",
            at(out.for_k(1).expect("k=1 evaluated")),
            at(out.for_k(5).expect("k=5 evaluated")),
            at(k10),
            at(&out.best_possible),
        );

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::series(
                format!(
                    "fig3_reliability_{}_{}.csv",
                    ctx.topology.name, ctx.config.semantics
                ),
                "p",
                3,
                true,
                series,
            )],
            notes: vec![headline],
        })
    }
}
