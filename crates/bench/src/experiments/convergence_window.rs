//! §6 extension: the convergence window. When a link fails, how long is
//! the network blind (flood rounds, messages), and how many of the
//! affected pairs does splicing keep connected on *stale* state alone —
//! the evidence behind "splicing may permit dynamic routing to react
//! much more slowly to failures"?
//!
//! ```text
//! splice-lab run convergence_window
//! ```

use crate::banner;
use splice_core::slices::SplicingConfig;
use splice_sim::convergence::{convergence_window_sweep, summarize};
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;

/// Pairs rescued on stale FIBs during the convergence window.
pub struct ConvergenceWindow;

impl Experiment for ConvergenceWindow {
    fn name(&self) -> &'static str {
        "convergence_window"
    }

    fn describe(&self) -> &'static str {
        "§6: pairs rescued on stale FIBs during the convergence window"
    }

    fn default_trials(&self) -> usize {
        0
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "§6 — convergence windows under single-link failures, {} topology",
            ctx.topology.name
        ));

        let mut rows = Vec::new();
        for k in [1usize, 2, 3, 5, 10] {
            let cfg = SplicingConfig::degree_based(k, 0.0, 3.0);
            let results = convergence_window_sweep(&g, &cfg, ctx.config.seed);
            let s = summarize(&results);
            rows.push(vec![
                k.to_string(),
                s.worst_window_rounds.to_string(),
                s.total_affected.to_string(),
                s.total_rescued.to_string(),
                format!("{:.1}%", 100.0 * s.mean_rescue_rate),
            ]);
        }

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("convergence_window_{}.txt", ctx.topology.name),
                &[
                    "k",
                    "worst window (flood rounds)",
                    "affected pairs",
                    "rescued by splicing",
                    "mean rescue rate",
                ],
                rows,
            )],
            notes: vec![
                "pairs rescued ride out the window on stale FIBs — routing can afford to react slowly"
                    .to_string(),
            ],
        })
    }
}
