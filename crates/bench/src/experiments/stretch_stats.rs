//! §4.3's stretch numbers: per-slice path-stretch distributions (the
//! paper: "in any particular slice, 99% of all paths in each tree have
//! stretch of less than 2.6") and recovered-path stretch (≈1.3× latency,
//! +50% hops for end-system recovery; ≈1.33× and +55% for network-based).
//!
//! ```text
//! splice-lab run stretch_stats
//! ```

use crate::banner;
use splice_core::slices::SplicingConfig;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::{render_table, Artifact};
use splice_sim::recovery::{recovery_experiment, RecoveryConfig};
use splice_sim::stretch_exp::{slice_stretch_experiment, worst_slice_p99};

/// Per-slice and recovered-path stretch statistics.
pub struct StretchStats;

impl Experiment for StretchStats {
    fn name(&self) -> &'static str {
        "stretch_stats"
    }

    fn describe(&self) -> &'static str {
        "§4.3: per-slice and recovered-path stretch distributions"
    }

    fn default_trials(&self) -> usize {
        60
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        let latencies = ctx.topology.latencies();

        banner(&format!(
            "§4.3 — per-slice stretch, {} topology, degree-based Weight(0,3)",
            ctx.topology.name
        ));
        let template = SplicingConfig::degree_based(10, 0.0, 3.0);
        let seeds: Vec<u64> = (0..10).map(|i| ctx.config.seed + i).collect();
        let stats = slice_stretch_experiment(&g, &latencies, &template, &seeds);
        let rows: Vec<Vec<String>> = stats
            .iter()
            .enumerate()
            .map(|(i, s)| {
                vec![
                    if i == 0 {
                        "0 (base)".to_string()
                    } else {
                        i.to_string()
                    },
                    format!("{:.3}", s.mean),
                    format!("{:.3}", s.p50),
                    format!("{:.3}", s.p95),
                    format!("{:.3}", s.p99),
                    format!("{:.3}", s.max),
                ]
            })
            .collect();
        let table = render_table(&["slice", "mean", "p50", "p95", "p99", "max"], &rows);

        let es = recovery_experiment(
            &g,
            &latencies,
            &RecoveryConfig::figure4(ctx.config.trials, ctx.config.seed),
        );
        let nb = recovery_experiment(
            &g,
            &latencies,
            &RecoveryConfig::figure5(ctx.config.trials, ctx.config.seed),
        );
        let mut out = String::new();
        for (name, curves) in [("end-system", &es), ("network-based", &nb)] {
            for st in &curves.stats {
                out.push_str(&format!(
                    "{name} k={}: avg trials {:.2} | latency stretch {:.3} (paper ~{}) | hop stretch {:.3} (paper ~{})\n",
                    st.k,
                    st.avg_trials,
                    st.avg_latency_stretch,
                    if name == "end-system" { "1.30" } else { "1.33" },
                    st.avg_hop_stretch,
                    if name == "end-system" { "1.50" } else { "1.55" },
                ));
            }
        }
        out.push_str(&table);

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::text(
                format!("stretch_stats_{}.txt", ctx.topology.name),
                out,
            )],
            notes: vec![format!(
                "worst per-slice p99 stretch: {:.3}  (paper: < 2.6)",
                worst_slice_p99(&stats)
            )],
        })
    }
}
