//! Live-daemon sustained churn: the event-driven control plane on its
//! own thread, subscribed forwarding workers draining bursts, and a
//! churn stream over the control channel — the deployment shape
//! `spliced` runs, measured end to end.
//!
//! ```text
//! splice-lab run daemon_churn
//! splice-lab run daemon_churn --batch-size 4    # pin the coalescing cap
//! ```
//!
//! `--trials` sets the schedule length. Where the `churn` experiment
//! times synchronous `repair_batch` calls, this one reports the full
//! channel → ingest → publish path (sustained events/sec, enqueue→
//! FIB-visible latency) plus the forwarding rate sustained under the
//! churn. The run aborts unless the daemon's final FIB is bit-identical
//! to a differently-partitioned replay of the same stream, so the
//! throughput numbers can never describe a diverged control plane.

use crate::banner;
use crate::daemon_report::{measure, DaemonBenchReport};
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;

/// Coalescing cap when `--batch-size` is not pinned.
const DAEMON_MAX_BATCH: usize = 8;

/// Slices for the daemon deployment.
const DAEMON_K: usize = 5;

/// Subscribed forwarding workers.
const DAEMON_WORKERS: usize = 2;

/// Packets per worker burst.
const DAEMON_BURST: usize = 128;

/// Event-loop throughput and FIB-visible latency under live churn.
pub struct DaemonChurn;

fn csv(r: &DaemonBenchReport) -> String {
    format!(
        "events,events_per_sec,event_visible_p50_seconds,event_visible_p99_seconds,\
         repair_batches,rebuilds,publishes,final_epoch,arenas_recycled,\
         packets_forwarded,forward_pps,epochs_seen,divergences,fib_checksum\n\
         {},{:.1},{:.9},{:.9},{},{},{},{},{},{},{:.1},{},{},{}\n",
        r.events,
        r.events_per_sec,
        r.event_visible_p50,
        r.event_visible_p99,
        r.repair_batches,
        r.rebuilds,
        r.publishes,
        r.final_epoch,
        r.arenas_recycled,
        r.packets,
        r.forward_pps,
        r.epochs_seen,
        r.divergences,
        r.fib_checksum,
    )
}

impl Experiment for DaemonChurn {
    fn name(&self) -> &'static str {
        "daemon_churn"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["daemon"]
    }

    fn describe(&self) -> &'static str {
        "live event-loop churn: events/sec, FIB-visible latency, pps under churn"
    }

    fn default_trials(&self) -> usize {
        200
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let schedule_len = ctx.config.trials.max(1);
        let max_batch = ctx.config.batch_size.unwrap_or(DAEMON_MAX_BATCH).max(1);
        banner(&format!(
            "daemon churn — {} events on {}, k={}, max batch {}, {} worker(s)",
            schedule_len, ctx.topology.name, DAEMON_K, max_batch, DAEMON_WORKERS
        ));

        let r = measure(
            &ctx.topology.name,
            DAEMON_K,
            schedule_len,
            max_batch,
            DAEMON_WORKERS,
            DAEMON_BURST,
            ctx.config.seed,
        )?;

        let rows = vec![vec![
            r.events.to_string(),
            format!("{:.0}", r.events_per_sec),
            format!("{:.1}us", r.event_visible_p50 * 1e6),
            format!("{:.1}us", r.event_visible_p99 * 1e6),
            format!("{:.0}", r.forward_pps),
            r.epochs_seen.to_string(),
            format!("{:016x}", r.fib_checksum),
        ]];

        let notes = vec![
            format!(
                "daemon FIB checksum {:016x} matched the replay oracle — zero divergences",
                r.fib_checksum
            ),
            format!(
                "{} event(s) coalesced into {} repair pass(es) + {} rebuild(s), \
                 {} snapshot(s) published, {} arena(s) recycled",
                r.events, r.repair_batches, r.rebuilds, r.publishes, r.arenas_recycled
            ),
        ];

        Ok(ExperimentOutput {
            artifacts: vec![
                Artifact::table(
                    format!("daemon_churn_{}.txt", ctx.topology.name),
                    &[
                        "events",
                        "events/sec",
                        "visible p50",
                        "visible p99",
                        "forward pps",
                        "epochs seen",
                        "fib checksum",
                    ],
                    rows,
                ),
                Artifact::text(format!("daemon_churn_{}.csv", ctx.topology.name), csv(&r)),
            ],
            notes,
        })
    }
}
