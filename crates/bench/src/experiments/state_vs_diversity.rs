//! §4.2's scalability claim: control-plane cost (messages, LSDB, FIBs)
//! grows **linearly** in k, while path diversity grows much faster.
//! Costs are measured on the link-state substrate by actually flooding
//! and converging k instances.
//!
//! ```text
//! splice-lab run state_vs_diversity
//! ```

use crate::banner;
use splice_core::slices::SplicingConfig;
use splice_sim::diversity::state_vs_diversity;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;

/// Control-plane cost vs path diversity as k grows.
pub struct StateVsDiversity;

impl Experiment for StateVsDiversity {
    fn name(&self) -> &'static str {
        "state_vs_diversity"
    }

    fn describe(&self) -> &'static str {
        "§4.2: linear control-plane cost vs super-linear path diversity in k"
    }

    fn default_trials(&self) -> usize {
        50
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "§4.2 — state/messages vs path diversity, {} topology",
            ctx.topology.name
        ));

        let ks = [1usize, 2, 3, 4, 5, 8, 10];
        let template = SplicingConfig::degree_based(10, 0.0, 3.0);
        let pts = state_vs_diversity(&g, &template, &ks, ctx.config.trials, 60, ctx.config.seed);

        let base_msgs = pts[0].messages as f64;
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|p| {
                vec![
                    p.k.to_string(),
                    p.messages.to_string(),
                    format!("{:.1}x", p.messages as f64 / base_msgs),
                    p.fib_entries.to_string(),
                    p.lsdb_entries.to_string(),
                    format!("{:.2}", p.distinct_paths),
                    format!("{:.2}", p.succ_connectivity),
                ]
            })
            .collect();

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("state_vs_diversity_{}.txt", ctx.topology.name),
                &[
                    "k",
                    "LSA msgs",
                    "msg growth",
                    "FIB entries",
                    "LSDB entries",
                    "distinct paths/pair",
                    "succ connectivity",
                ],
                rows,
            )],
            notes: vec![
                "claim: cost columns scale as k (linear); diversity columns grow super-linearly early"
                    .to_string(),
            ],
        })
    }
}
