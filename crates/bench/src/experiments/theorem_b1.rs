//! Theorem B.1: the Chebyshev concentration bound on perturbed path
//! lengths, validated empirically on the topology's real shortest paths.
//!
//! ```text
//! splice-lab run theorem_b1
//! ```

use crate::banner;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;
use splice_sim::theory::theorem_b1_experiment;

/// Empirical check of the Theorem B.1 concentration bound.
pub struct TheoremB1;

impl Experiment for TheoremB1 {
    fn name(&self) -> &'static str {
        "theorem_b1"
    }

    fn describe(&self) -> &'static str {
        "Theorem B.1: perturbed path-length concentration vs the 1/r^2 bound"
    }

    fn default_trials(&self) -> usize {
        20000
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "Theorem B.1 — perturbed path-length concentration, {} topology, {} samples per r",
            ctx.topology.name, ctx.config.trials
        ));

        let rs = [1.2, 1.5, 2.0, 3.0, 5.0, 8.0];
        let mut all_rows = Vec::new();
        for &c in &[0.25, 0.5, 0.75] {
            let rows = theorem_b1_experiment(&g, c, &rs, ctx.config.trials, ctx.config.seed);
            for row in rows {
                all_rows.push(vec![
                    format!("{c}"),
                    format!("{}", row.r),
                    format!("{:.5}", row.bound),
                    format!("{:.5}", row.observed),
                    if row.observed <= row.bound {
                        "ok"
                    } else {
                        "VIOLATED"
                    }
                    .to_string(),
                ]);
            }
        }

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("theorem_b1_{}.txt", ctx.topology.name),
                &["c", "r", "bound 1/r^2", "observed", "check"],
                all_rows,
            )],
            notes: Vec::new(),
        })
    }
}
