//! The experiment catalogue: every driver that used to be its own
//! `cargo run --bin` binary, ported onto the [`splice_sim::lab`] engine.
//!
//! Each submodule holds one [`Experiment`] implementation; [`registry`]
//! assembles them in the canonical `run-all` order. The order matters
//! operationally: experiments that share a spliced deployment
//! (same `(topology, k, perturbation, seed)` key) run close together so
//! the [`splice_sim::lab::DeploymentCache`] turns repeat builds into hits.

use splice_sim::lab::ExperimentRegistry;

pub mod bgp_splicing;
pub mod capacity_multipath;
pub mod churn;
pub mod convergence_window;
pub mod coverage_ablation;
pub mod daemon_churn;
pub mod ecmp_baseline;
pub mod explicit_paths_baseline;
pub mod fig3_reliability;
pub mod fig4_end_system_recovery;
pub mod fig5_network_recovery;
pub mod forward_storm;
pub mod header_encoding_ablation;
pub mod loop_stats;
pub mod loopfree_ablation;
pub mod node_failures;
pub mod overlay_splicing;
pub mod perturbation_ablation;
pub mod routing_dynamics;
pub mod scaling_lognslices;
pub mod slicing_vs_mrc;
pub mod srlg_failures;
pub mod state_vs_diversity;
pub mod strategy_sweep;
pub mod stretch_stats;
pub mod table1;
pub mod te_load_balance;
pub mod te_vs_tuning;
pub mod theorem_b1;

/// Build the full experiment registry in canonical `run-all` order:
/// paper figures and tables first, then extensions, ablations, and
/// baselines.
pub fn registry() -> ExperimentRegistry {
    let mut reg = ExperimentRegistry::new();
    reg.register(Box::new(fig3_reliability::Fig3Reliability));
    reg.register(Box::new(fig4_end_system_recovery::Fig4EndSystemRecovery));
    reg.register(Box::new(fig5_network_recovery::Fig5NetworkRecovery));
    reg.register(Box::new(table1::Table1Summary));
    reg.register(Box::new(stretch_stats::StretchStats));
    reg.register(Box::new(loop_stats::LoopStats));
    reg.register(Box::new(scaling_lognslices::ScalingLogNSlices));
    reg.register(Box::new(theorem_b1::TheoremB1));
    reg.register(Box::new(state_vs_diversity::StateVsDiversity));
    reg.register(Box::new(strategy_sweep::StrategySweep));
    reg.register(Box::new(te_load_balance::TeLoadBalance));
    reg.register(Box::new(te_vs_tuning::TeVsTuning));
    reg.register(Box::new(capacity_multipath::CapacityMultipath));
    reg.register(Box::new(bgp_splicing::BgpSplicing));
    reg.register(Box::new(overlay_splicing::SplicedOverlay));
    reg.register(Box::new(slicing_vs_mrc::SlicingVsMrc));
    reg.register(Box::new(coverage_ablation::CoverageAblation));
    reg.register(Box::new(loopfree_ablation::LoopfreeAblation));
    reg.register(Box::new(perturbation_ablation::PerturbationAblation));
    reg.register(Box::new(header_encoding_ablation::HeaderEncodingAblation));
    reg.register(Box::new(node_failures::NodeFailures));
    reg.register(Box::new(srlg_failures::SrlgFailures));
    reg.register(Box::new(convergence_window::ConvergenceWindow));
    reg.register(Box::new(churn::Churn));
    reg.register(Box::new(daemon_churn::DaemonChurn));
    reg.register(Box::new(forward_storm::ForwardStorm));
    reg.register(Box::new(routing_dynamics::RoutingDynamics));
    reg.register(Box::new(ecmp_baseline::EcmpBaseline));
    reg.register(Box::new(explicit_paths_baseline::ExplicitPathsBaseline));
    reg
}

#[cfg(test)]
mod tests {
    use super::registry;

    #[test]
    fn registry_holds_all_experiments_with_unique_names() {
        let reg = registry();
        assert_eq!(reg.len(), 29);
        assert!(reg.find("churn").is_some());
        assert!(reg.find("daemon_churn").is_some());
        assert!(reg.find("daemon").is_some());
        assert!(reg.find("forward_storm").is_some());
        assert!(reg.find("forward").is_some());
        // Uniqueness is enforced by `register` (it panics on duplicates);
        // here we spot-check lookups by both canonical name and alias.
        assert!(reg.find("fig3_reliability").is_some());
        assert!(reg.find("fig3").is_some());
        assert!(reg.find("fig4").is_some());
        assert!(reg.find("fig5").is_some());
        assert!(reg.find("explicit_paths_baseline").is_some());
        assert!(reg.find("strategy_sweep").is_some());
        assert!(reg.find("strategies").is_some());
        assert!(reg.find("nope").is_none());
    }
}
