//! Extension: reliability under *node* failures (router outages) rather
//! than link failures — pairs involving the failed router are excluded;
//! the question is whether survivors stay connected.
//!
//! ```text
//! splice-lab run node_failures
//! ```

use crate::banner;
use splice_core::slices::SplicingConfig;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::node_failures::{node_failure_experiment, NodeFailureConfig};
use splice_sim::output::Artifact;

/// Reliability curves under router (node) outages.
pub struct NodeFailures;

impl Experiment for NodeFailures {
    fn name(&self) -> &'static str {
        "node_failures"
    }

    fn describe(&self) -> &'static str {
        "Extension: reliability under node (router) failures"
    }

    fn default_trials(&self) -> usize {
        200
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "Extension — node-failure reliability, {} topology, {} trials",
            ctx.topology.name, ctx.config.trials
        ));

        let cfg = NodeFailureConfig {
            ks: vec![1, 2, 3, 5, 10],
            ps: (1..=10).map(|i| i as f64 * 0.01).collect(),
            trials: ctx.config.trials,
            splicing: SplicingConfig::degree_based(10, 0.0, 3.0),
            semantics: ctx.config.splice_semantics(),
            seed: ctx.config.seed,
        };
        let out = node_failure_experiment(&g, &cfg);

        let mut series = out.curves.clone();
        series.push(out.best_possible.clone());

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::series(
                format!("node_failures_{}.csv", ctx.topology.name),
                "p",
                2,
                false,
                series,
            )],
            notes: Vec::new(),
        })
    }
}
