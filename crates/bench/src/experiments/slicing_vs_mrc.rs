//! §5 extension: random perturbations vs engineered backup
//! configurations (MRC, the paper's citation \[11\]). MRC guarantees
//! single-failure recovery by isolating every link in some
//! configuration; splicing gets diversity for free from randomness. Who
//! gives more reliability per slice?
//!
//! ```text
//! splice-lab run slicing_vs_mrc
//! ```

use crate::banner;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_core::mrc::{build_mrc, mrc_assignment, protected_fraction};
use splice_core::prelude::*;
use splice_core::slices::SplicingConfig;
use splice_graph::EdgeMask;
use splice_sim::failure::FailureModel;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;

/// Random slicing vs engineered MRC backup configurations.
pub struct SlicingVsMrc;

impl Experiment for SlicingVsMrc {
    fn name(&self) -> &'static str {
        "slicing_vs_mrc"
    }

    fn describe(&self) -> &'static str {
        "§5: random slices vs engineered MRC backup configurations"
    }

    fn default_trials(&self) -> usize {
        250
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "Ablation — random slicing vs MRC configurations, {} topology, {} trials",
            ctx.topology.name, ctx.config.trials
        ));

        let n = g.node_count();
        let pairs = (n * (n - 1)) as f64;
        let mut rng = StdRng::seed_from_u64(ctx.config.seed);
        let nr = NetworkRecovery::default();

        let mut rows = Vec::new();
        for k in [3usize, 5, 8] {
            let protected = protected_fraction(&mrc_assignment(&g, k - 1));
            let mrc = build_mrc(&g, k);

            // Single-failure recovery coverage: fraction of (pair, failed
            // link on the pair's default path) cases deflection delivers.
            let coverage = |sp: &Splicing, rng: &mut StdRng| -> f64 {
                let (mut cases, mut ok) = (0usize, 0usize);
                for e in g.edge_ids() {
                    let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
                    for t in g.nodes() {
                        for s in g.nodes() {
                            if s == t {
                                continue;
                            }
                            // Does the default path use e?
                            let mut at = s;
                            let mut uses = false;
                            while at != t {
                                let Some((next, pe)) = sp.next_hop(0, at, t) else {
                                    break;
                                };
                                if pe == e {
                                    uses = true;
                                    break;
                                }
                                at = next;
                            }
                            if !uses {
                                continue;
                            }
                            cases += 1;
                            if nr.forward(sp, &mask, s, t, 0, rng).is_delivered() {
                                ok += 1;
                            }
                        }
                    }
                }
                ok as f64 / cases.max(1) as f64
            };

            // Multi-failure reliability (union semantics), p = 0.05, common
            // random failures.
            let reliability = |sp: &Splicing| -> f64 {
                let mut total = 0.0;
                for trial in 0..ctx.config.trials as u64 {
                    let mut r = StdRng::seed_from_u64(ctx.config.seed + trial);
                    let mask = FailureModel::IidLinks { p: 0.05 }.sample(&g, &mut r);
                    total += sp.union_disconnected_pairs(k, &mask) as f64 / pairs;
                }
                total / ctx.config.trials as f64
            };

            for (name, sp) in [
                (
                    "random degree(0,3)",
                    Splicing::build(
                        &g,
                        &SplicingConfig::degree_based(k, 0.0, 3.0),
                        ctx.config.seed,
                    ),
                ),
                ("MRC configs", mrc),
            ] {
                rows.push(vec![
                    k.to_string(),
                    name.to_string(),
                    if name == "MRC configs" {
                        format!("{:.0}%", 100.0 * protected)
                    } else {
                        "-".to_string()
                    },
                    format!("{:.1}%", 100.0 * coverage(&sp, &mut rng)),
                    format!("{:.4}", reliability(&sp)),
                ]);
            }
        }

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("slicing_vs_mrc_{}.txt", ctx.topology.name),
                &[
                    "k",
                    "construction",
                    "links protected",
                    "single-failure recovery",
                    "disc @ p=.05 (union)",
                ],
                rows,
            )],
            notes: vec![
                "engineered configurations dominate per slice once k is large enough to protect"
                    .to_string(),
                "every link — exactly the §5 conjecture that coverage-conscious schemes 'achieve"
                    .to_string(),
                "more reliability with fewer slices'. What random perturbation buys instead is"
                    .to_string(),
                "zero computation, zero coordination, and per-pair path diversity beyond what"
                    .to_string(),
                "failure protection needs (multipath, load spreading).".to_string(),
            ],
        })
    }
}
