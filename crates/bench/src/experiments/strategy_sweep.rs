//! Cross-strategy sweep: every slice-construction strategy measured on
//! the same topology and seed — reliability curves, per-slice stretch,
//! recovery loop rates, path diversity, and routing state — so the
//! trade-off each strategy makes (state vs stretch vs diversity) sits in
//! one table.
//!
//! ```text
//! splice-lab run strategy_sweep
//! splice-lab run strategies --topology abilene --trials 40
//! ```

use crate::banner;
use splice_core::slices::SplicingConfig;
use splice_core::strategy::StrategyKind;
use splice_sim::diversity::state_vs_diversity;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::loops::{loop_experiment, LoopConfig};
use splice_sim::output::Artifact;
use splice_sim::reliability::{reliability_experiment, ReliabilityConfig};
use splice_sim::stats::Series;
use splice_sim::stretch_exp::slice_stretch_experiment;

/// Slice count every strategy is compared at.
const K: usize = 5;

/// Every strategy under the same instruments.
pub struct StrategySweep;

impl Experiment for StrategySweep {
    fn name(&self) -> &'static str {
        "strategy_sweep"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["strategies"]
    }

    fn describe(&self) -> &'static str {
        "slice strategies compared: reliability, stretch, loops, diversity, state"
    }

    fn default_trials(&self) -> usize {
        40
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        let latencies = ctx.topology.latencies();
        banner(&format!(
            "strategy sweep — {} ({} nodes / {} links), k={K}, {} trials per point",
            ctx.topology.name,
            ctx.topology.node_count(),
            ctx.topology.link_count(),
            ctx.config.trials
        ));

        let mut curves: Vec<Series> = Vec::new();
        let mut rows: Vec<Vec<String>> = Vec::new();
        for kind in StrategyKind::ALL {
            let template = SplicingConfig::degree_based(K, 0.0, 3.0).with_strategy(kind);

            // Reliability: the fig3 sweep at k = K only.
            let mut rcfg = ReliabilityConfig::figure3(ctx.config.trials, ctx.config.seed);
            rcfg.ks = vec![K];
            rcfg.splicing = rcfg.splicing.with_strategy(kind);
            rcfg.semantics = ctx.config.splice_semantics();
            let rel = reliability_experiment(&g, &rcfg);
            let curve = rel.for_k(K).expect("k evaluated").clone();
            let rel_at = |p: f64| curve.y_at(p).unwrap_or(f64::NAN);
            curves.push(Series::new(
                format!("{} k={K}", kind.name()),
                curve.points.clone(),
            ));

            // Stretch: distribution across all K slices, a few seeds.
            let seeds: Vec<u64> = (0..3).map(|i| ctx.config.seed + i).collect();
            let stretch = slice_stretch_experiment(&g, &latencies, &template, &seeds);
            let mean_stretch = stretch.iter().map(|s| s.mean).sum::<f64>() / stretch.len() as f64;
            let worst_p99 = stretch.iter().map(|s| s.p99).fold(f64::MIN, f64::max);

            // Loops: §4.4 recovery-header loop frequency.
            let mut lcfg = LoopConfig::paper(vec![K], ctx.config.trials, ctx.config.seed);
            lcfg.splicing = lcfg.splicing.with_strategy(kind);
            let loops = loop_experiment(&g, &lcfg);
            let loop_rate = loops[0].two_hop_rate() + loops[0].longer_rate();

            // Diversity + state: header-sampled distinct paths, plus the
            // physical arena and the strategy's logical routing state.
            let pts =
                state_vs_diversity(&g, &template, &[K], ctx.config.trials, 40, ctx.config.seed);
            let sp = ctx.deployment(&g, &template, ctx.config.seed);

            rows.push(vec![
                kind.name().to_string(),
                format!("{:.4}", rel_at(0.02)),
                format!("{:.4}", rel_at(0.05)),
                format!("{:.3}", mean_stretch),
                format!("{:.3}", worst_p99),
                format!("{:.4}", loop_rate),
                format!("{:.2}", pts[0].distinct_paths),
                sp.state_bytes().to_string(),
                sp.logical_state_bytes().to_string(),
            ]);
        }

        Ok(ExperimentOutput {
            artifacts: vec![
                Artifact::series(
                    format!(
                        "strategy_sweep_reliability_{}_{}.csv",
                        ctx.topology.name, ctx.config.semantics
                    ),
                    "p",
                    3,
                    true,
                    curves,
                ),
                Artifact::table(
                    format!("strategy_sweep_{}.txt", ctx.topology.name),
                    &[
                        "strategy",
                        "disc@0.02",
                        "disc@0.05",
                        "mean stretch",
                        "worst p99",
                        "loop rate",
                        "paths/pair",
                        "arena bytes",
                        "logical bytes",
                    ],
                    rows,
                ),
            ],
            notes: vec![format!(
                "all strategies measured at k={K}, topology {}, seed {}",
                ctx.topology.name, ctx.config.seed
            )],
        })
    }
}
