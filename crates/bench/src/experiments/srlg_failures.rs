//! Extension: shared-risk link groups. Real outages are correlated — a
//! conduit cut at a PoP takes every fiber leaving it. We model one SRLG
//! per PoP (its incident links) and compare splicing's reliability under
//! correlated failures against independent failures with the *same
//! expected number of failed links*.
//!
//! ```text
//! splice-lab run srlg_failures
//! ```

use crate::banner;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_core::slices::SplicingConfig;
use splice_sim::failure::FailureModel;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;

/// Correlated (SRLG) vs independent failure reliability.
pub struct SrlgFailures;

impl Experiment for SrlgFailures {
    fn name(&self) -> &'static str {
        "srlg_failures"
    }

    fn describe(&self) -> &'static str {
        "Extension: correlated SRLG (PoP conduit) vs independent failures"
    }

    fn default_trials(&self) -> usize {
        300
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "Extension — correlated (SRLG) vs independent failures, {} topology, {} trials",
            ctx.topology.name, ctx.config.trials
        ));

        // One SRLG per PoP: all its incident links share the conduit.
        let groups: Vec<Vec<splice_graph::EdgeId>> = g
            .nodes()
            .map(|n| g.neighbors(n).iter().map(|&(_, e)| e).collect())
            .collect();
        // A group failure downs deg(n) links; match expected failed links:
        // E[iid] = p_link * m; E[srlg] ≈ p_group * sum(deg) = p_group * 2m
        // (links counted by both endpoint groups overlap, so this slightly
        // overshoots; the comparison is qualitative).
        let n = g.node_count();
        let pairs = (n * (n - 1)) as f64;
        let splicing = ctx.deployment(
            &g,
            &SplicingConfig::degree_based(10, 0.0, 3.0),
            ctx.config.seed,
        );

        let mut rows = Vec::new();
        for &p_link in &[0.02f64, 0.05, 0.08] {
            let p_group = p_link / 2.0;
            let mut acc = [[0.0f64; 3]; 2]; // [model][k index] for k in {1,5,10}
            for trial in 0..ctx.config.trials as u64 {
                let mut rng = StdRng::seed_from_u64(ctx.config.seed + trial);
                let iid = FailureModel::IidLinks { p: p_link }.sample(&g, &mut rng);
                let srlg = FailureModel::Srlg {
                    groups: groups.clone(),
                    p: p_group,
                }
                .sample(&g, &mut rng);
                for (mi, mask) in [&iid, &srlg].into_iter().enumerate() {
                    for (ki, &k) in [1usize, 5, 10].iter().enumerate() {
                        acc[mi][ki] += splicing.union_disconnected_pairs(k, mask) as f64 / pairs;
                    }
                }
            }
            let t = ctx.config.trials as f64;
            for (mi, name) in ["independent", "SRLG (PoP conduits)"].iter().enumerate() {
                rows.push(vec![
                    format!("{p_link}"),
                    name.to_string(),
                    format!("{:.4}", acc[mi][0] / t),
                    format!("{:.4}", acc[mi][1] / t),
                    format!("{:.4}", acc[mi][2] / t),
                ]);
            }
        }

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("srlg_failures_{}.txt", ctx.topology.name),
                &["p (link-equivalent)", "failure model", "k=1", "k=5", "k=10"],
                rows,
            )],
            notes: vec![
                "correlated conduit cuts behave like node failures: splicing still closes most"
                    .to_string(),
                "of the k=1 shortfall, but the irreducible (cut-induced) floor sits higher."
                    .to_string(),
            ],
        })
    }
}
