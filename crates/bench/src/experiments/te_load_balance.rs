//! §5 extension: traffic-engineering interaction. Compares link-load
//! balance under single shortest-path routing, splicing's hash-spread
//! default, and explicit equal-split multipath — in steady state and
//! under every single-link failure.
//!
//! ```text
//! splice-lab run te_load_balance
//! ```

use crate::banner;
use splice_core::slices::SplicingConfig;
use splice_graph::EdgeMask;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;
use splice_traffic::load::{link_loads, RoutingMode};
use splice_traffic::matrix::TrafficMatrix;
use splice_traffic::shift::{single_link_failure_sweep, worst_case_shift};

/// Load balance and failure shifts across routing modes.
pub struct TeLoadBalance;

impl Experiment for TeLoadBalance {
    fn name(&self) -> &'static str {
        "te_load_balance"
    }

    fn describe(&self) -> &'static str {
        "§5: link-load balance and failure shifts across routing modes"
    }

    fn default_trials(&self) -> usize {
        0
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "§5 — load balance & failure shifts, {} topology, gravity traffic matrix",
            ctx.topology.name
        ));

        let splicing = ctx.deployment(
            &g,
            &SplicingConfig::degree_based(5, 0.0, 3.0),
            ctx.config.seed,
        );
        let tm = TrafficMatrix::gravity(&g, 1000.0, ctx.config.seed);
        let up = EdgeMask::all_up(g.edge_count());

        let modes = [
            ("shortest-path", RoutingMode::ShortestPath),
            ("hash-spread", RoutingMode::HashSpread),
            ("equal-split", RoutingMode::EqualSplit),
        ];
        let mut rows = Vec::new();
        for (name, mode) in modes {
            let report = link_loads(&splicing, &g, &tm, mode, &up);
            let sweep = single_link_failure_sweep(&splicing, &g, &tm, mode);
            let stranded: f64 =
                sweep.iter().map(|r| r.undelivered).sum::<f64>() / sweep.len() as f64;
            rows.push(vec![
                name.to_string(),
                format!("{:.1}", report.max()),
                format!("{:.1}", report.mean()),
                format!("{:.3}", report.cv()),
                format!("{:.3}", worst_case_shift(&sweep)),
                format!("{:.2}", stranded),
            ]);
        }

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("te_load_balance_{}.txt", ctx.topology.name),
                &[
                    "mode",
                    "peak load",
                    "mean load",
                    "cv",
                    "worst peak shift",
                    "avg stranded demand",
                ],
                rows,
            )],
            notes: vec![
                "reading: spreading across slices disperses flows but rides longer paths, so"
                    .to_string(),
                "total and peak load can rise on distance-weighted maps — the §5 trade-off the"
                    .to_string(),
                "paper flags for study; the failure columns show spreading's robustness payoff."
                    .to_string(),
            ],
        })
    }
}
