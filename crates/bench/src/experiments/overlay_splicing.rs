//! §5 extension: overlay splicing — "splicing RON with SOSR". A
//! RON-style overlay routes on one metric; splicing lets its members
//! switch among latency-, loss-, and hop-optimized trees with forwarding
//! bits. We measure overlay pair disconnection under underlay link
//! failures for each single metric and for their spliced combination.
//!
//! ```text
//! splice-lab run overlay_splicing
//! ```

use crate::banner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use splice_graph::EdgeMask;
use splice_overlay::{Metric, Overlay, OverlaySplicing};
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;

/// Overlay pair disconnection: single-metric trees vs their spliced union.
pub struct SplicedOverlay;

impl Experiment for SplicedOverlay {
    fn name(&self) -> &'static str {
        "overlay_splicing"
    }

    fn describe(&self) -> &'static str {
        "§5: splicing a RON-style overlay across latency/loss/hop metrics"
    }

    fn default_trials(&self) -> usize {
        300
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        let lat = ctx.topology.latencies();
        // Loss rates i.i.d. per link (congestion is not distance): this keeps
        // the loss metric genuinely independent of the latency metric.
        let mut loss_rng = StdRng::seed_from_u64(ctx.config.seed ^ 0x1055);
        let loss: Vec<f64> = (0..g.edge_count())
            .map(|_| loss_rng.gen_range(0.0..0.05))
            .collect();
        let members: Vec<_> = g.nodes().step_by(3).collect();
        banner(&format!(
            "§5 — overlay splicing over {} ({} members of {} PoPs), {} trials",
            ctx.topology.name,
            members.len(),
            g.node_count(),
            ctx.config.trials
        ));

        let overlay = Overlay::build(&g, &lat, &loss, members.clone(), 3, 1, ctx.config.seed);
        let m = members.len();
        let pairs = (m * (m - 1)) as f64;
        println!(
            "overlay mesh: {} links, each riding the underlay's latency-shortest path\n",
            overlay.links.len()
        );

        // Single-metric overlays and the spliced combination. Ordering the
        // metrics differently changes which is "slice 0" for k = 1 rows.
        let orders: Vec<(&str, Vec<Metric>)> = vec![
            ("latency only", vec![Metric::Latency]),
            ("loss only", vec![Metric::Loss]),
            ("hops only", vec![Metric::Hops]),
            (
                "spliced (latency+loss+hops)",
                vec![Metric::Latency, Metric::Loss, Metric::Hops],
            ),
        ];

        let ps = [0.02f64, 0.05, 0.08];
        let mut rows = Vec::new();
        for (name, metrics) in orders {
            let k = metrics.len();
            let os = OverlaySplicing::build(overlay.clone(), metrics);
            let mut cells = vec![name.to_string()];
            for &p in &ps {
                let mut total = 0.0;
                for trial in 0..ctx.config.trials as u64 {
                    let mut rng = StdRng::seed_from_u64(ctx.config.seed + trial);
                    let mut under = EdgeMask::all_up(g.edge_count());
                    for e in g.edge_ids() {
                        if rng.gen_bool(p) {
                            under.fail(e);
                        }
                    }
                    total += os.disconnected_pairs(k, &under) as f64 / pairs;
                }
                cells.push(format!("{:.4}", total / ctx.config.trials as f64));
            }
            rows.push(cells);
        }

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("overlay_splicing_{}.txt", ctx.topology.name),
                &[
                    "overlay routing",
                    "disc @ p=.02",
                    "disc @ p=.05",
                    "disc @ p=.08",
                ],
                rows,
            )],
            notes: vec![
                "the spliced overlay switches metric trees with forwarding bits, riding out"
                    .to_string(),
                "underlay failures that disconnect any single-metric overlay's tree.".to_string(),
            ],
        })
    }
}
