//! Ablation (§3.2 vs §5): header encodings. The per-hop `lg(k)`-bits
//! header carries explicit path control (20 hops × lg k bits); §5's
//! compressed encoding is a single counter any hop can act on. How much
//! recovery power does the compression give up, and what does each cost
//! on the wire?
//!
//! ```text
//! splice-lab run header_encoding_ablation
//! ```

use crate::banner;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_core::header::bits_per_hop;
use splice_core::prelude::*;
use splice_core::recovery::CounterRecovery;
use splice_core::slices::SplicingConfig;
use splice_sim::failure::FailureModel;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;

/// Per-hop bits header vs the §5 compressed counter header.
///
/// Builds a fresh deployment per trial (seeded `seed + trial`), so it
/// deliberately bypasses the shared deployment cache.
pub struct HeaderEncodingAblation;

impl Experiment for HeaderEncodingAblation {
    fn name(&self) -> &'static str {
        "header_encoding_ablation"
    }

    fn describe(&self) -> &'static str {
        "Ablation: per-hop bits header vs §5's compressed counter header"
    }

    fn default_trials(&self) -> usize {
        100
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "Ablation — header encodings, {} topology, k=5, {} trials",
            ctx.topology.name, ctx.config.trials
        ));

        let k = 5;
        let scfg = SplicingConfig::degree_based(k, 0.0, 3.0);
        let p = 0.05;
        let opts = ForwarderOptions::default();

        let (mut bits_attempts, mut bits_recovered, mut bits_trials) = (0usize, 0usize, 0usize);
        let (mut ctr_attempts, mut ctr_recovered, mut ctr_trials) = (0usize, 0usize, 0usize);

        for trial in 0..ctx.config.trials as u64 {
            let seed = ctx.config.seed + trial;
            let splicing = Splicing::build(&g, &scfg, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
            let mask = FailureModel::IidLinks { p }.sample(&g, &mut rng);
            let fwd = Forwarder::new(&splicing, &g, &mask);
            let es = EndSystemRecovery::default();
            let cr = CounterRecovery::default();
            for t in g.nodes() {
                for s in g.nodes() {
                    if s == t {
                        continue;
                    }
                    let default = fwd.forward(s, t, ForwardingBits::stay_in_slice(0, k), &opts);
                    if default.is_delivered() {
                        continue;
                    }
                    bits_attempts += 1;
                    let out = es.recover(&fwd, s, t, 0, &opts, &mut rng);
                    if out.recovered {
                        bits_recovered += 1;
                        bits_trials += out.trials;
                    }
                    ctr_attempts += 1;
                    let out = cr.recover(&fwd, s, t, &opts);
                    if out.recovered {
                        ctr_recovered += 1;
                        ctr_trials += out.trials;
                    }
                }
            }
        }

        let pct = |r: usize, a: usize| 100.0 * r as f64 / a.max(1) as f64;
        let avg = |tr: usize, r: usize| tr as f64 / r.max(1) as f64;
        let bits_size = 2 + 18; // shim: inner proto + reserved + 18-byte bits
        let ctr_size = 2 + 4; // inner proto + reserved + u32 counter
        let rows = vec![
            vec![
                "per-hop bits (20 x lg k)".to_string(),
                format!("{} bytes", bits_size),
                format!("{} bits/hop", bits_per_hop(k)),
                format!("{:.1}%", pct(bits_recovered, bits_attempts)),
                format!("{:.2}", avg(bits_trials, bits_recovered)),
            ],
            vec![
                "single counter (§5)".to_string(),
                format!("{} bytes", ctr_size),
                "0 (counter)".to_string(),
                format!("{:.1}%", pct(ctr_recovered, ctr_attempts)),
                format!("{:.2}", avg(ctr_trials, ctr_recovered)),
            ],
        ];

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("header_encoding_ablation_{}.txt", ctx.topology.name),
                &[
                    "encoding",
                    "shim size",
                    "per-hop state",
                    "recovered",
                    "avg trials",
                ],
                rows,
            )],
            notes: vec![
                "the counter header is 3.7x smaller yet recovers at least as well here: its"
                    .to_string(),
                "deflections concentrate on the first hops (like first-hop-biased flipping),"
                    .to_string(),
                "and its zero-counter baseline is the hash slice rather than slice 0, which"
                    .to_string(),
                "already dodges some failures. Its weakness is expressiveness: at most".to_string(),
                "max_trials fixed patterns vs the bits header's exponential path space."
                    .to_string(),
            ],
        })
    }
}
