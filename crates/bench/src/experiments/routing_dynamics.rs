//! §6 extension: transient downtime during protocol convergence, with
//! and without splicing. For every single-link failure we model
//! detection, LSA flooding at real link latencies, and staggered SPF
//! installs; pairs are walked over the mixed old/new tables and
//! pair-downtime (pair·ms) integrated over the episode.
//!
//! ```text
//! splice-lab run routing_dynamics
//! ```

use crate::banner;
use splice_core::slices::SplicingConfig;
use splice_routing::dynamics::DynamicsConfig;
use splice_sim::dynamics_exp::downtime_sweep;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;

/// Transient pair-downtime during convergence episodes.
pub struct RoutingDynamics;

impl Experiment for RoutingDynamics {
    fn name(&self) -> &'static str {
        "routing_dynamics"
    }

    fn describe(&self) -> &'static str {
        "§6: transient downtime during convergence, with and without splicing"
    }

    fn default_trials(&self) -> usize {
        0
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "§6 — transient downtime during convergence, {} topology",
            ctx.topology.name
        ));
        println!("timing: 50 ms detection, 100 ms SPF hold, LSAs at link latency + 1 ms/hop\n");

        let dyncfg = DynamicsConfig::default();
        let mut rows = Vec::new();
        for k in [1usize, 2, 3, 5, 10] {
            let sweep = downtime_sweep(
                &g,
                &ctx.topology.latencies(),
                &SplicingConfig::degree_based(k, 0.0, 3.0),
                &dyncfg,
                ctx.config.seed,
            );
            let plain: f64 = sweep.iter().map(|&(_, p, _)| p).sum::<f64>() / sweep.len() as f64;
            let spliced: f64 = sweep.iter().map(|&(_, _, s)| s).sum::<f64>() / sweep.len() as f64;
            let worst = sweep.iter().map(|&(_, _, s)| s).fold(0.0f64, f64::max);
            rows.push(vec![
                k.to_string(),
                format!("{:.0}", plain),
                format!("{:.0}", spliced),
                format!("{:.1}x", plain / spliced.max(1e-9)),
                format!("{:.0}", worst),
            ]);
        }

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("routing_dynamics_{}.txt", ctx.topology.name),
                &[
                    "k",
                    "downtime plain (pair*ms)",
                    "downtime spliced",
                    "reduction",
                    "worst link (spliced)",
                ],
                rows,
            )],
            notes: vec![
                "splicing deflects onto stale alternate slices during the window, cutting the"
                    .to_string(),
                "transient blackhole/micro-loop cost — §6's 'routing can react more slowly'."
                    .to_string(),
            ],
        })
    }
}
