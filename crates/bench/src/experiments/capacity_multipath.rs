//! §5 extension: multipath capacity. How much of the underlying graph's
//! s–t max-flow can an end host actually drive through the slices'
//! successor graphs, as k grows?
//!
//! ```text
//! splice-lab run capacity_multipath
//! ```

use crate::banner;
use splice_core::slices::SplicingConfig;
use splice_sim::lab::{Experiment, ExperimentOutput, LabError, RunContext};
use splice_sim::output::Artifact;
use splice_traffic::capacity::capacity_ratio_by_k;

/// Spliced multipath capacity vs the graph's max-flow, by k.
pub struct CapacityMultipath;

impl Experiment for CapacityMultipath {
    fn name(&self) -> &'static str {
        "capacity_multipath"
    }

    fn describe(&self) -> &'static str {
        "§5: spliced multipath capacity ratio vs k"
    }

    fn default_trials(&self) -> usize {
        0
    }

    fn run(&self, ctx: &mut RunContext<'_>) -> Result<ExperimentOutput, LabError> {
        let g = ctx.graph();
        banner(&format!(
            "§5 — multipath capacity ratio vs k, {} topology",
            ctx.topology.name
        ));

        let kmax = 10;
        let splicing = ctx.deployment(
            &g,
            &SplicingConfig::degree_based(kmax, 0.0, 3.0),
            ctx.config.seed,
        );
        let ratios = capacity_ratio_by_k(&splicing, &g);

        let rows: Vec<Vec<String>> = ratios
            .iter()
            .enumerate()
            .map(|(i, r)| vec![(i + 1).to_string(), format!("{:.3}", r)])
            .collect();

        Ok(ExperimentOutput {
            artifacts: vec![Artifact::table(
                format!("capacity_multipath_{}.txt", ctx.topology.name),
                &["k", "capacity ratio (spliced / full graph)"],
                rows,
            )],
            notes: vec![
                "claim: the ratio approaches 1 — splicing exposes the graph's multipath capacity"
                    .to_string(),
            ],
        })
    }
}
