//! Per-strategy headline numbers, written to `BENCH_strategy.json`.
//!
//! The `strategy_sweep` experiment plots the full curves; this module
//! produces the committed machine-readable summary: for every
//! [`StrategyKind`] at one k, the disconnected-pair fraction at two
//! failure rates, the mean per-slice latency stretch, and both state
//! accounts (the physical FIB arena and the strategy's logical routing
//! state). Everything here is deterministic in `(topology, k, seed)`, so
//! the document can live in the repository and regenerate byte-identically.

use splice_core::slices::{Splicing, SplicingConfig};
use splice_core::strategy::StrategyKind;
use splice_core::stretch::per_slice_stretch;
use splice_sim::lab::LabError;
use splice_sim::reliability::{reliability_experiment, ReliabilityConfig};
use splice_telemetry::{JsonArray, JsonObject};
use splice_topology::TopologyError;
use std::path::Path;

use crate::load_topology;

/// Failure probabilities the reliability column is read at.
pub const PS: &[f64] = &[0.02, 0.05];

/// Measured numbers for one strategy.
#[derive(Clone, Debug)]
pub struct StrategyBenchEntry {
    /// Strategy name (the `--strategy` token).
    pub strategy: &'static str,
    /// Fraction of ordered pairs disconnected at `PS[0]`.
    pub disconnected_p02: f64,
    /// Fraction of ordered pairs disconnected at `PS[1]`.
    pub disconnected_p05: f64,
    /// Mean latency stretch over all slices and routed pairs.
    pub mean_stretch: f64,
    /// Physical FIB arena footprint (k·2n² u16 cells).
    pub arena_bytes: usize,
    /// The strategy's logical routing state (trees: one parent arc per
    /// node; matrix strategies: the full arena).
    pub logical_bytes: usize,
}

/// Measure every strategy on `topology` at slice count `k`.
pub fn measure(
    topology: &str,
    k: usize,
    trials: usize,
    seed: u64,
) -> Result<Vec<StrategyBenchEntry>, TopologyError> {
    let topo = load_topology(topology)?;
    let g = topo.graph();
    let latencies = topo.latencies();
    let entries = StrategyKind::ALL
        .iter()
        .map(|&kind| {
            let template = SplicingConfig::degree_based(k, 0.0, 3.0).with_strategy(kind);
            let cfg = ReliabilityConfig {
                ks: vec![k],
                ps: PS.to_vec(),
                trials,
                splicing: template.clone(),
                semantics: Default::default(),
                seed,
            };
            let rel = reliability_experiment(&g, &cfg);
            let curve = rel.for_k(k).expect("k evaluated");
            let at = |p: f64| curve.y_at(p).unwrap_or(f64::NAN);

            let sp = Splicing::build(&g, &template, seed);
            let samples: Vec<f64> = per_slice_stretch(&sp, &g, &latencies)
                .into_iter()
                .flatten()
                .collect();
            let mean_stretch = samples.iter().sum::<f64>() / samples.len().max(1) as f64;

            StrategyBenchEntry {
                strategy: kind.name(),
                disconnected_p02: at(PS[0]),
                disconnected_p05: at(PS[1]),
                mean_stretch,
                arena_bytes: sp.state_bytes(),
                logical_bytes: sp.logical_state_bytes(),
            }
        })
        .collect();
    Ok(entries)
}

/// Schema version stamped into every `BENCH_strategy.json`. Bump when a
/// field is renamed, removed, or changes meaning; adding fields is
/// compatible.
pub const SCHEMA_VERSION: u64 = 1;

/// Render entries as the `BENCH_strategy.json` document.
///
/// Stable schema (version [`SCHEMA_VERSION`]):
///
/// ```json
/// {
///   "benchmark": "strategy",
///   "schema_version": 1,
///   "topology": "<name>",
///   "k": <usize>,
///   "trials": <usize>,
///   "seed": <u64>,
///   "entries": [ { one object per strategy, fields as in StrategyBenchEntry } ]
/// }
/// ```
pub fn render(
    topology: &str,
    k: usize,
    trials: usize,
    seed: u64,
    entries: &[StrategyBenchEntry],
) -> String {
    let mut arr = JsonArray::new();
    for e in entries {
        arr = arr.push_raw(
            &JsonObject::new()
                .field_str("strategy", e.strategy)
                .field_f64("disconnected_p02", e.disconnected_p02)
                .field_f64("disconnected_p05", e.disconnected_p05)
                .field_f64("mean_stretch", e.mean_stretch)
                .field_u64("arena_bytes", e.arena_bytes as u64)
                .field_u64("logical_bytes", e.logical_bytes as u64)
                .finish(),
        );
    }
    JsonObject::new()
        .field_str("benchmark", "strategy")
        .field_u64("schema_version", SCHEMA_VERSION)
        .field_str("topology", topology)
        .field_u64("k", k as u64)
        .field_u64("trials", trials as u64)
        .field_u64("seed", seed)
        .field_raw("entries", &arr.finish())
        .finish()
}

/// Measure on `topology` and write `BENCH_strategy.json` to `path`.
pub fn write_strategy_report(
    path: impl AsRef<Path>,
    topology: &str,
    k: usize,
    trials: usize,
    seed: u64,
) -> Result<(), LabError> {
    let entries = measure(topology, k, trials, seed)?;
    let mut text = render(topology, k, trials, seed, &entries);
    text.push('\n');
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, text)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_entries_cover_every_strategy() {
        let entries = measure("abilene", 3, 5, 7).unwrap();
        assert_eq!(entries.len(), StrategyKind::ALL.len());
        for e in &entries {
            assert!(e.disconnected_p02 >= 0.0 && e.disconnected_p02 <= 1.0);
            assert!(e.disconnected_p05 >= 0.0 && e.disconnected_p05 <= 1.0);
            assert!(
                e.mean_stretch >= 1.0 - 1e-9,
                "{}: {}",
                e.strategy,
                e.mean_stretch
            );
            assert!(e.arena_bytes > 0);
            assert!(e.logical_bytes > 0);
            assert!(e.logical_bytes <= e.arena_bytes);
        }
        // Tree strategies carry linear state; matrices the full arena.
        let by = |n: &str| entries.iter().find(|e| e.strategy == n).unwrap();
        assert_eq!(
            by("perturbed-spf").logical_bytes,
            by("perturbed-spf").arena_bytes
        );
        assert!(by("tree").logical_bytes < by("tree").arena_bytes);
    }

    #[test]
    fn measurement_is_deterministic() {
        let a = measure("abilene", 2, 5, 11).unwrap();
        let b = measure("abilene", 2, 5, 11).unwrap();
        assert_eq!(
            render("abilene", 2, 5, 11, &a),
            render("abilene", 2, 5, 11, &b)
        );
    }

    #[test]
    fn report_renders_and_writes() {
        let entries = measure("abilene", 2, 5, 7).unwrap();
        let json = render("abilene", 2, 5, 7, &entries);
        assert!(json.contains(r#""benchmark":"strategy""#));
        assert!(json.contains(r#""schema_version":1"#));
        assert!(json.contains(r#""strategy":"perturbed-spf""#));
        assert!(json.contains(r#""strategy":"arc""#));
        assert!(json.contains(r#""mean_stretch""#));
        assert!(json.contains(r#""logical_bytes""#));

        let dir = std::env::temp_dir().join("splice-bench-strategy-report");
        let path = dir.join("BENCH_strategy.json");
        write_strategy_report(&path, "abilene", 2, 5, 7).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains(r#""benchmark":"strategy""#));
        assert!(back.ends_with('\n'));
        std::fs::remove_dir_all(&dir).ok();
    }
}
