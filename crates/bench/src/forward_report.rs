//! Batched forwarding throughput under churn, written to
//! `BENCH_forward.json`.
//!
//! Four engines drain the *same* pre-generated seeded Zipf bursts over
//! the *same* rotating sequence of churn-repaired FIB snapshots:
//!
//! 1. **scalar** — the pre-existing one-packet-at-a-time path
//!    (`Forwarder::forward`, what `BENCH_fib.json`'s per-hop numbers
//!    and every figure before this report drove): a fresh trace
//!    allocation and a `HashSet` loop detector per packet. This is the
//!    baseline every `speedup_vs_scalar` is quoted against.
//! 2. **scalar_walk** — the allocation-light arena walk
//!    ([`splice_dataplane::scalar_walk`]) that mirrors it exactly, kept
//!    as its own row so the batch engine is not compared against a
//!    strawman: the distance between rows 1 and 2 is what leaner
//!    per-packet code buys, rows 2 to 3 what the batch layout buys.
//! 3. **batch** — one [`splice_dataplane::BatchForwarder`] draining
//!    whole bursts through struct-of-arrays lanes, allocation-free
//!    after warmup.
//! 4. **batch_sharded** — [`splice_dataplane::run_sharded`] workers on
//!    scoped threads, one engine per shard, fed by copies of the same
//!    pre-generated bursts.
//!
//! Every engine is timed the same way: bursts are generated *before*
//! any clock starts, and the measured quantity is the sum of per-burst
//! drain times — the forwarding path alone, with no flow generation,
//! checksum folding, or scheduling gaps inside it. `pps` is packets
//! over that sum, so the sharded row claims no parallelism credit the
//! machine didn't deliver: on a single core it lands at the batch row
//! minus worker overhead, on many cores its per-shard busy times are
//! what each core actually spent.
//!
//! Every engine folds its outcomes into the same per-shard FNV
//! checksums, and the report asserts all four merged checksums are
//! equal — a speedup that changes where packets go cannot ship. The
//! snapshots come from folding a [`splice_testkit::churn_schedule`]
//! through `repair_batch`, and bursts rotate across them, so the
//! numbers describe forwarding *under churn*, not a static FIB. The
//! run-wide failure mask is all-up: every snapshot's slices already
//! route around the failures they absorbed, so walks run their full
//! length instead of truncating at whatever the schedule's final
//! failure state happened to down. A final section replays the same
//! scenario — with its real evolving failure masks, so the `LinkDown`
//! path is exercised there — through the testkit's three-way forward
//! oracle (batch vs scalar vs naive walker) and records the flow count
//! it verified.

use splice_core::forwarding::{Forwarder, ForwarderOptions};
use splice_core::header::ForwardingBits;
use splice_core::slices::{Splicing, SplicingConfig};
use splice_dataplane::{
    fold_outcomes_checksum, merged_checksum, outcomes_checksum, run_sharded, scalar_walk,
    BatchForwarder, BatchStats, ForwardTelemetry, RotatingSnapshots, ShardReport, SnapshotSource,
    WalkOutcome,
};
use splice_graph::{EdgeMask, NodeId};
use splice_sim::lab::LabError;
use splice_telemetry::{Histogram, JsonArray, JsonObject, Registry};
use splice_testkit::{
    churn_schedule, forward_oracle, schedule_to_batches, BatchStep, ForwardOracleOptions,
    PerturbationSpec, Scenario, TopologySpec,
};
use splice_topology::TopologyError;
use splice_traffic::{FlowConfig, FlowGen};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::load_topology;

/// One in-flight packet: `(src, dst, header)`.
type Pkt = (u32, u32, ForwardingBits);

/// Workload shape shared by every engine in the sweep.
#[derive(Clone, Debug)]
pub struct ForwardBenchConfig {
    /// Topology name (built-ins or generator specs).
    pub topology: String,
    /// Slices.
    pub k: usize,
    /// Churn events folded into the snapshot rotation.
    pub schedule_len: usize,
    /// Repair events coalesced per `repair_batch` call.
    pub batch: usize,
    /// Worker shards for the sharded engine (and independent flow
    /// streams for all engines).
    pub shards: usize,
    /// Bursts per shard.
    pub bursts_per_shard: u64,
    /// Packets per burst.
    pub burst_size: usize,
    /// Seed for the deployment, the churn schedule, and the flows.
    pub seed: u64,
}

impl ForwardBenchConfig {
    /// The committed-report operating point: sprint at the paper's
    /// k = 5, one shard per available core (the sharding design is one
    /// worker per core; overcommitting a small machine only charges
    /// the workers' preemption gaps to each other's burst clocks),
    /// ~100k packets per engine.
    pub fn default_for(topology: &str, seed: u64) -> ForwardBenchConfig {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let shards = cores.clamp(1, 8);
        ForwardBenchConfig {
            topology: topology.to_string(),
            k: 5,
            schedule_len: 60,
            batch: 5,
            shards,
            bursts_per_shard: (400 / shards.max(1) as u64).max(1),
            burst_size: 256,
            seed,
        }
    }

    /// Total packets each engine walks.
    pub fn total_packets(&self) -> u64 {
        self.shards as u64 * self.bursts_per_shard * self.burst_size as u64
    }
}

/// Measured numbers for one engine.
#[derive(Clone, Debug)]
pub struct ForwardBenchEntry {
    /// `"scalar"`, `"scalar_walk"`, `"batch"`, or `"batch_sharded"`.
    pub engine: &'static str,
    /// Outcome-class counters over every packet.
    pub stats: BatchStats,
    /// Aggregate packets per second — the headline number. Packets over
    /// summed drain busy time, measured identically for every engine.
    pub pps: f64,
    /// Nanoseconds per hop (busy time / total hops).
    pub ns_per_hop: f64,
    /// Median per-burst drain time.
    pub burst_seconds_p50: f64,
    /// Tail per-burst drain time.
    pub burst_seconds_p99: f64,
    /// Worst per-burst drain time.
    pub burst_seconds_max: f64,
    /// Checksum-of-per-shard-checksums. Identical across engines, or
    /// the batch path is broken.
    pub checksum: u64,
    /// `pps` relative to the scalar entry.
    pub speedup_vs_scalar: f64,
}

/// What the three-way differential oracle verified alongside the
/// timings.
#[derive(Clone, Copy, Debug)]
pub struct ForwardOracleSummary {
    /// Packets walked through batch, scalar, and naive engines.
    pub flows_checked: u64,
    /// Churn checkpoints the flows were split across.
    pub checkpoints: u64,
    /// Always 0 in a written report — a divergence aborts the run.
    pub divergences: u64,
}

/// The full measured document.
#[derive(Clone, Debug)]
pub struct ForwardBenchReport {
    /// Workload shape.
    pub config: ForwardBenchConfig,
    /// Scalar / scalar_walk / batch / batch_sharded rows.
    pub engines: Vec<ForwardBenchEntry>,
    /// Differential-oracle coverage.
    pub oracle: ForwardOracleSummary,
}

/// Splicing handles a churn schedule walks through: the base deployment
/// plus the state after every repair batch. The run-wide mask is
/// all-up — each snapshot's slices already route around the failures
/// they absorbed, so outcomes stay meaningful while walks run their
/// full length (the oracle section replays the schedule with its real
/// evolving masks).
fn churn_snapshots(
    g: &splice_graph::Graph,
    base: &Splicing,
    schedule_len: usize,
    batch: usize,
    seed: u64,
) -> (Vec<Splicing>, EdgeMask) {
    let k = base.k();
    let weights: Vec<Vec<f64>> = (0..k).map(|s| base.weights(s).to_vec()).collect();
    let events = churn_schedule(g, k, schedule_len, seed);
    let steps = schedule_to_batches(g, &weights, &events, batch);
    let mut snapshots = vec![base.clone()];
    let mut sp = base.clone();
    for step in &steps {
        sp = match step {
            BatchStep::Repair(events) => sp.repair_batch(g, events),
            BatchStep::Rebuild { carry } => base.repair_batch(g, carry),
        };
        snapshots.push(sp.clone());
    }
    (snapshots, EdgeMask::all_up(g.edge_count()))
}

/// Generate every `(shard, burst)` packet buffer up front, so no
/// engine's timed region contains flow generation. Indexed
/// `shard * bursts_per_shard + burst`, matching the per-shard stream
/// split the workers use.
fn pregen_bursts(gen: &FlowGen, cfg: &ForwardBenchConfig) -> Vec<Vec<Pkt>> {
    let bps = cfg.bursts_per_shard as usize;
    let mut all = Vec::with_capacity(cfg.shards * bps);
    for shard in 0..cfg.shards {
        for burst in 0..bps {
            let mut buf = Vec::with_capacity(cfg.burst_size);
            gen.stream(shard * bps + burst)
                .fill_burst(cfg.burst_size, &mut buf);
            all.push(buf);
        }
    }
    all
}

/// Run one serial engine over the pre-generated bursts, visiting shards
/// and bursts in order. `drain` turns `(shard, burst)`'s packets into
/// outcomes (appended to `out`); only the `drain` call is timed, and
/// each shard's busy time is the sum of its burst drains — the same
/// quantity the sharded workers report in
/// [`ShardReport::busy_seconds`].
fn run_serial<F>(
    cfg: &ForwardBenchConfig,
    pre: &[Vec<Pkt>],
    hist: &Histogram,
    mut drain: F,
) -> Vec<ShardReport>
where
    F: FnMut(usize, u64, &[Pkt], &mut Vec<WalkOutcome>),
{
    let bps = cfg.bursts_per_shard as usize;
    let mut out: Vec<WalkOutcome> = Vec::new();
    let mut reports = Vec::with_capacity(cfg.shards);
    for shard in 0..cfg.shards {
        let mut checksum = outcomes_checksum(&[]);
        let mut stats = BatchStats::default();
        let mut busy = Duration::ZERO;
        for burst in 0..cfg.bursts_per_shard {
            let pkts = &pre[shard * bps + burst as usize];
            out.clear();
            let t0 = Instant::now();
            drain(shard, burst, pkts, &mut out);
            let elapsed = t0.elapsed();
            busy += elapsed;
            hist.record_duration(elapsed);
            checksum = fold_outcomes_checksum(checksum, &out);
            for o in &out {
                stats.record(o);
            }
        }
        reports.push(ShardReport {
            shard,
            stats,
            checksum,
            bursts: cfg.bursts_per_shard,
            busy_seconds: busy.as_secs_f64(),
        });
    }
    reports
}

fn entry_from(
    engine: &'static str,
    reports: &[ShardReport],
    hist: &Histogram,
) -> ForwardBenchEntry {
    let mut stats = BatchStats::default();
    let mut busy = 0.0;
    for r in reports {
        stats.merge(&r.stats);
        busy += r.busy_seconds;
    }
    let secs = busy.max(1e-12);
    let (p50, _, p99) = hist.quantiles();
    ForwardBenchEntry {
        engine,
        stats,
        pps: stats.packets as f64 / secs,
        ns_per_hop: secs * 1e9 / (stats.hops.max(1) as f64),
        burst_seconds_p50: p50,
        burst_seconds_p99: p99,
        burst_seconds_max: hist.max_scaled(),
        checksum: merged_checksum(reports),
        speedup_vs_scalar: 1.0,
    }
}

/// Measure all four engines on `cfg`'s workload, then run the
/// three-way differential oracle over the same scenario.
///
/// # Panics
/// Panics if the engines' merged checksums disagree or the oracle finds
/// a divergence — a forwarding bug must never ship inside a performance
/// number.
pub fn measure(cfg: &ForwardBenchConfig) -> Result<ForwardBenchReport, TopologyError> {
    let topo = load_topology(&cfg.topology)?;
    let g = topo.graph();
    let base = Splicing::build(&g, &SplicingConfig::degree_based(cfg.k, 0.0, 3.0), cfg.seed);
    let (splicings, mask) = churn_snapshots(&g, &base, cfg.schedule_len, cfg.batch, cfg.seed);
    let source = RotatingSnapshots(splicings.iter().map(|sp| Arc::clone(sp.arena())).collect());
    let gen = FlowGen::new(FlowConfig::new(g.node_count() as u32, cfg.k, cfg.seed));
    let pre = pregen_bursts(&gen, cfg);
    let opts = ForwarderOptions::default();

    // Engine 1: the pre-existing one-packet-at-a-time path, via the
    // same snapshot rotation as everyone else.
    let scalar_hist = Histogram::with_scale(1e-9);
    let scalar_reports = run_serial(cfg, &pre, &scalar_hist, |shard, burst, pkts, out| {
        let sp = &splicings[(shard as u64 + burst) as usize % splicings.len()];
        let fwd = Forwarder::new(sp, &g, &mask);
        for &(src, dst, bits) in pkts {
            out.push(WalkOutcome::from_outcome(&fwd.forward(
                NodeId(src),
                NodeId(dst),
                bits,
                &opts,
            )));
        }
    });

    // Engine 2: the allocation-light scalar arena walk.
    let walk_hist = Histogram::with_scale(1e-9);
    let walk_reports = run_serial(cfg, &pre, &walk_hist, |shard, burst, pkts, out| {
        let snap = source.snapshot(shard, burst);
        for &(src, dst, bits) in pkts {
            out.push(WalkOutcome::from_outcome(&scalar_walk(
                &snap,
                &mask,
                NodeId(src),
                NodeId(dst),
                bits,
                &opts,
            )));
        }
    });

    // Engine 3: one batch engine draining whole bursts.
    let batch_hist = Histogram::with_scale(1e-9);
    let mut engine = BatchForwarder::new(opts);
    let batch_reports = run_serial(cfg, &pre, &batch_hist, |shard, burst, pkts, out| {
        let snap = source.snapshot(shard, burst);
        out.extend_from_slice(engine.forward_burst(&snap, &mask, pkts));
    });

    // Engine 4: sharded batch workers on scoped threads, fed by copies
    // of the same pre-generated bursts.
    let registry = Registry::new();
    let sharded_tel = ForwardTelemetry::register(&registry);
    let bps = cfg.bursts_per_shard;
    let sharded_reports = run_sharded(
        cfg.shards,
        opts,
        &source,
        &mask,
        Some(&sharded_tel),
        |shard, burst, buf: &mut Vec<Pkt>| {
            if burst < bps {
                buf.extend_from_slice(&pre[shard * bps as usize + burst as usize]);
            }
        },
    );

    let mut engines = vec![
        entry_from("scalar", &scalar_reports, &scalar_hist),
        entry_from("scalar_walk", &walk_reports, &walk_hist),
        entry_from("batch", &batch_reports, &batch_hist),
        entry_from(
            "batch_sharded",
            &sharded_reports,
            &sharded_tel.burst_seconds,
        ),
    ];

    let expect = engines[0].checksum;
    for e in &engines {
        assert_eq!(
            e.checksum, expect,
            "engine {} diverged from the scalar reference",
            e.engine
        );
    }
    let scalar_pps = engines[0].pps.max(1e-12);
    for e in &mut engines {
        e.speedup_vs_scalar = e.pps / scalar_pps;
    }

    // The differential oracle over the same scenario: batch vs scalar
    // vs naive walker at every churn checkpoint.
    let sc = Scenario {
        topology: TopologySpec::Named(cfg.topology.clone()),
        k: cfg.k,
        perturbation: PerturbationSpec::DegreeBased,
        strategy: splice_core::strategy::StrategyKind::PerturbedSpf,
        build_seed: cfg.seed,
        events: churn_schedule(&g, cfg.k, cfg.schedule_len, cfg.seed),
    };
    let oracle_opts = ForwardOracleOptions {
        flows: 100_000,
        batch: cfg.batch,
        ..Default::default()
    };
    let oracle = match forward_oracle(&sc, &oracle_opts) {
        Ok(report) => ForwardOracleSummary {
            flows_checked: report.flows_checked as u64,
            checkpoints: report.checkpoints as u64,
            divergences: 0,
        },
        Err(div) => panic!("forward oracle diverged on {}: {div}", sc.spec()),
    };

    Ok(ForwardBenchReport {
        config: cfg.clone(),
        engines,
        oracle,
    })
}

/// Schema version stamped into every `BENCH_forward.json`. Bump when a
/// field is renamed, removed, or changes meaning; adding fields is
/// compatible.
pub const SCHEMA_VERSION: u64 = 1;

/// Render the report as the `BENCH_forward.json` document.
///
/// Stable schema (version [`SCHEMA_VERSION`]):
///
/// ```json
/// {
///   "benchmark": "forward",
///   "schema_version": 1,
///   "topology": "<name>", "seed": <u64>, "k": <usize>,
///   "schedule_len": <usize>, "batch": <usize>, "shards": <usize>,
///   "bursts_per_shard": <u64>, "burst_size": <usize>,
///   "engines": [ { one object per engine, fields as in ForwardBenchEntry } ],
///   "oracle": { "flows_checked", "checkpoints", "divergences" }
/// }
/// ```
pub fn render(report: &ForwardBenchReport) -> String {
    let cfg = &report.config;
    let mut arr = JsonArray::new();
    for e in &report.engines {
        arr = arr.push_raw(
            &JsonObject::new()
                .field_str("engine", e.engine)
                .field_u64("packets", e.stats.packets)
                .field_u64("hops", e.stats.hops)
                .field_f64("pps", e.pps)
                .field_f64("ns_per_hop", e.ns_per_hop)
                .field_f64("burst_seconds_p50", e.burst_seconds_p50)
                .field_f64("burst_seconds_p99", e.burst_seconds_p99)
                .field_f64("burst_seconds_max", e.burst_seconds_max)
                .field_u64("delivered", e.stats.delivered)
                .field_u64("dead_end", e.stats.dead_end)
                .field_u64("link_down", e.stats.link_down)
                .field_u64("persistent_loop", e.stats.persistent_loop)
                .field_u64("ttl_exceeded", e.stats.ttl_exceeded)
                .field_u64("checksum", e.checksum)
                .field_f64("speedup_vs_scalar", e.speedup_vs_scalar)
                .finish(),
        );
    }
    let oracle = JsonObject::new()
        .field_u64("flows_checked", report.oracle.flows_checked)
        .field_u64("checkpoints", report.oracle.checkpoints)
        .field_u64("divergences", report.oracle.divergences)
        .finish();
    JsonObject::new()
        .field_str("benchmark", "forward")
        .field_u64("schema_version", SCHEMA_VERSION)
        .field_str("topology", &cfg.topology)
        .field_u64("seed", cfg.seed)
        .field_u64("k", cfg.k as u64)
        .field_u64("schedule_len", cfg.schedule_len as u64)
        .field_u64("batch", cfg.batch as u64)
        .field_u64("shards", cfg.shards as u64)
        .field_u64("bursts_per_shard", cfg.bursts_per_shard)
        .field_u64("burst_size", cfg.burst_size as u64)
        .field_raw("engines", &arr.finish())
        .field_raw("oracle", &oracle)
        .finish()
}

/// Measure `cfg` and write `BENCH_forward.json` to `path`.
pub fn write_forward_report(
    path: impl AsRef<Path>,
    cfg: &ForwardBenchConfig,
) -> Result<(), LabError> {
    let report = measure(cfg)?;
    let mut text = render(&report);
    text.push('\n');
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, text)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ForwardBenchConfig {
        ForwardBenchConfig {
            topology: "abilene".into(),
            k: 3,
            schedule_len: 16,
            batch: 4,
            shards: 2,
            bursts_per_shard: 4,
            burst_size: 64,
            seed: 7,
        }
    }

    #[test]
    fn engines_agree_and_cover_the_workload() {
        let cfg = small_cfg();
        // measure() runs its own 100k-flow oracle; keep the unit test on
        // the engine sweep by driving the pieces directly.
        let topo = load_topology(&cfg.topology).unwrap();
        let g = topo.graph();
        let base = Splicing::build(&g, &SplicingConfig::degree_based(cfg.k, 0.0, 3.0), cfg.seed);
        let (splicings, mask) = churn_snapshots(&g, &base, cfg.schedule_len, cfg.batch, cfg.seed);
        assert!(splicings.len() > 1, "churn produced no snapshots");
        let source = RotatingSnapshots(splicings.iter().map(|sp| Arc::clone(sp.arena())).collect());
        let gen = FlowGen::new(FlowConfig::new(g.node_count() as u32, cfg.k, cfg.seed));
        let pre = pregen_bursts(&gen, &cfg);
        let opts = ForwarderOptions::default();

        let hist = Histogram::with_scale(1e-9);
        let scalar_reports = run_serial(&cfg, &pre, &hist, |shard, burst, pkts, out| {
            let sp = &splicings[(shard as u64 + burst) as usize % splicings.len()];
            let fwd = Forwarder::new(sp, &g, &mask);
            for &(src, dst, bits) in pkts {
                out.push(WalkOutcome::from_outcome(&fwd.forward(
                    NodeId(src),
                    NodeId(dst),
                    bits,
                    &opts,
                )));
            }
        });
        let walk_reports = run_serial(&cfg, &pre, &hist, |shard, burst, pkts, out| {
            let snap = source.snapshot(shard, burst);
            for &(src, dst, bits) in pkts {
                out.push(WalkOutcome::from_outcome(&scalar_walk(
                    &snap,
                    &mask,
                    NodeId(src),
                    NodeId(dst),
                    bits,
                    &opts,
                )));
            }
        });
        let mut engine = BatchForwarder::new(opts);
        let batch_reports = run_serial(&cfg, &pre, &hist, |shard, burst, pkts, out| {
            let snap = source.snapshot(shard, burst);
            out.extend_from_slice(engine.forward_burst(&snap, &mask, pkts));
        });
        let bps = cfg.bursts_per_shard;
        let sharded = run_sharded(
            cfg.shards,
            opts,
            &source,
            &mask,
            None,
            |shard, burst, buf: &mut Vec<Pkt>| {
                if burst < bps {
                    buf.extend_from_slice(&pre[shard * bps as usize + burst as usize]);
                }
            },
        );

        let expect = merged_checksum(&scalar_reports);
        assert_eq!(merged_checksum(&walk_reports), expect);
        assert_eq!(merged_checksum(&batch_reports), expect);
        assert_eq!(merged_checksum(&sharded), expect);
        let total: u64 = scalar_reports.iter().map(|r| r.stats.packets).sum();
        assert_eq!(total, cfg.total_packets());
        for r in &scalar_reports {
            assert!(r.busy_seconds > 0.0, "busy time must be measured");
        }
    }

    #[test]
    fn report_renders_and_writes() {
        let report = ForwardBenchReport {
            config: small_cfg(),
            engines: vec![ForwardBenchEntry {
                engine: "scalar",
                stats: BatchStats {
                    packets: 10,
                    hops: 30,
                    delivered: 10,
                    ..Default::default()
                },
                pps: 1e6,
                ns_per_hop: 33.0,
                burst_seconds_p50: 1e-6,
                burst_seconds_p99: 2e-6,
                burst_seconds_max: 3e-6,
                checksum: 0xdead,
                speedup_vs_scalar: 1.0,
            }],
            oracle: ForwardOracleSummary {
                flows_checked: 1000,
                checkpoints: 5,
                divergences: 0,
            },
        };
        let json = render(&report);
        assert!(json.contains(r#""benchmark":"forward""#));
        assert!(json.contains(r#""schema_version":1"#));
        assert!(json.contains(r#""pps""#));
        assert!(json.contains(r#""speedup_vs_scalar""#));
        assert!(json.contains(r#""divergences":0"#));

        let dir = std::env::temp_dir().join("splice-bench-forward-report");
        let path = dir.join("BENCH_forward.json");
        let mut text = json;
        text.push('\n');
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, &text).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains(r#""benchmark":"forward""#));
        assert!(back.ends_with('\n'));
        std::fs::remove_dir_all(&dir).ok();
    }
}
