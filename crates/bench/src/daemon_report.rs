//! Live-daemon throughput and latency, written to `BENCH_daemon.json`.
//!
//! `BENCH_churn.json` times the repair math in isolation — synchronous
//! `repair_batch` calls on one thread. This report measures the shape
//! the daemon actually ships: a [`run_event_loop`] on its own thread
//! consuming a churn stream over the control channel, coalescing
//! opportunistically, and publishing snapshots that live forwarding
//! workers ([`splice_dataplane::run_live`]) pick up mid-flight. The
//! headline numbers are sustained events/sec through the full
//! channel → ingest → publish path, the enqueue→FIB-visible latency
//! quantiles, and the forwarding rate sustained *under* that churn.
//!
//! The report is self-gating: after the run, the exact event stream is
//! replayed through a second control plane with a different batch
//! partition, and the measurement aborts unless both final FIB
//! checksums are bit-identical — `divergences` in a committed
//! `BENCH_daemon.json` is always zero, or the file does not exist.

use splice_core::control::{
    control_channel, fib_checksum, run_event_loop, ControlEvent, ControlPlane,
};
use splice_core::forwarding::ForwarderOptions;
use splice_core::slices::{Splicing, SplicingConfig};
use splice_dataplane::run_live;
use splice_graph::EdgeMask;
use splice_telemetry::{Histogram, JsonObject};
use splice_testkit::{churn_schedule, to_control_event};
use splice_topology::TopologyError;
use splice_traffic::{FlowConfig, FlowGen};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::load_topology;

/// Measured numbers for one daemon run.
#[derive(Clone, Debug)]
pub struct DaemonBenchReport {
    /// Churn events pushed through the control channel.
    pub events: usize,
    /// `events` / event-loop wall time — the headline number.
    pub events_per_sec: f64,
    /// Median enqueue→FIB-visible latency.
    pub event_visible_p50: f64,
    /// Tail enqueue→FIB-visible latency (p99).
    pub event_visible_p99: f64,
    /// Worst enqueue→FIB-visible latency.
    pub event_visible_max: f64,
    /// Coalesced repair passes the loop ran.
    pub repair_batches: u64,
    /// Rebuild-from-base passes (link recoveries).
    pub rebuilds: u64,
    /// Snapshots published to the hub.
    pub publishes: u64,
    /// Epoch of the final published snapshot.
    pub final_epoch: u64,
    /// Retired arenas recycled instead of freshly allocated.
    pub arenas_recycled: u64,
    /// Packets the subscribed workers forwarded during the churn.
    pub packets: u64,
    /// Bursts those packets arrived in.
    pub bursts: u64,
    /// `packets` / run wall time — forwarding throughput under churn.
    pub forward_pps: f64,
    /// Most distinct epochs any single worker observed.
    pub epochs_seen: u64,
    /// FNV-1a digest of the deployment the event loop ended on.
    pub fib_checksum: u64,
    /// Digest of the replay oracle's end state (different batch
    /// partition of the same stream). Always equals `fib_checksum` in a
    /// committed report.
    pub oracle_checksum: u64,
    /// Checksum mismatches (always 0 — `measure` errors otherwise).
    pub divergences: u64,
}

/// Run `schedule_len` churn events through a live event loop on
/// `topology` with `k` slices, `workers` subscribed forwarding workers
/// draining `burst`-packet bursts, and verify the end state against a
/// batch-partition-1 replay oracle.
pub fn measure(
    topology: &str,
    k: usize,
    schedule_len: usize,
    max_batch: usize,
    workers: usize,
    burst: usize,
    seed: u64,
) -> Result<DaemonBenchReport, TopologyError> {
    let topo = load_topology(topology)?;
    let g = topo.graph();
    let base = Splicing::build(&g, &SplicingConfig::degree_based(k, 0.0, 3.0), seed);
    let events: Vec<ControlEvent> = churn_schedule(&g, k, schedule_len, seed)
        .iter()
        .map(to_control_event)
        .collect();

    let latency = Arc::new(Histogram::with_scale(1e-9));
    let cp = ControlPlane::new(g.clone(), base.clone(), max_batch.max(1));
    let hub = Arc::clone(cp.hub());
    let (handle, rx) = control_channel();
    let stop = Arc::new(AtomicBool::new(false));

    let loop_latency = Arc::clone(&latency);
    let event_loop = std::thread::spawn(move || run_event_loop(cp, rx, Some(&loop_latency)));

    let worker_handle = {
        let hub = Arc::clone(&hub);
        let stop = Arc::clone(&stop);
        let mask = EdgeMask::all_up(g.edge_count());
        let n = g.node_count() as u32;
        std::thread::spawn(move || {
            let gen = FlowGen::new(FlowConfig::new(n, k, seed));
            run_live(
                workers.max(1),
                ForwarderOptions::default(),
                &hub,
                &mask,
                None,
                &stop,
                move |shard, burst_ix, buf| {
                    let stream = shard * (1 << 20) + (burst_ix as usize & ((1 << 20) - 1));
                    gen.stream(stream).fill_burst(burst.max(1), buf);
                },
            )
        })
    };

    let t0 = Instant::now();
    handle.events(events.iter().cloned());
    handle.shutdown();
    let (cp, report) = event_loop.join().expect("daemon event loop panicked");
    let loop_secs = t0.elapsed().as_secs_f64().max(1e-12);
    stop.store(true, Ordering::SeqCst);
    let shard_reports = worker_handle.join().expect("forwarding workers panicked");
    let wall_secs = t0.elapsed().as_secs_f64().max(1e-12);

    // Replay oracle: same stream, one event per repair pass. Any batch
    // partition must land on the same deployment.
    let mut oracle = ControlPlane::new(g.clone(), base, 1);
    for ev in &events {
        oracle.ingest(ev);
    }
    oracle.flush();
    let daemon_sum = fib_checksum(cp.graph(), cp.current());
    let oracle_sum = fib_checksum(oracle.graph(), oracle.current());
    assert_eq!(
        daemon_sum, oracle_sum,
        "live daemon diverged from the replay oracle — refusing to report throughput"
    );

    let packets: u64 = shard_reports.iter().map(|r| r.stats.packets).sum();
    let bursts: u64 = shard_reports.iter().map(|r| r.bursts).sum();
    let epochs_seen = shard_reports
        .iter()
        .map(|r| r.epochs_seen)
        .max()
        .unwrap_or(0);
    let (p50, _, p99) = latency.quantiles();
    let stats = report.stats;
    Ok(DaemonBenchReport {
        events: events.len(),
        events_per_sec: events.len() as f64 / loop_secs,
        event_visible_p50: p50,
        event_visible_p99: p99,
        event_visible_max: latency.max_scaled(),
        repair_batches: stats.repair_batches,
        rebuilds: stats.rebuilds,
        publishes: stats.publishes,
        final_epoch: report.final_epoch,
        arenas_recycled: stats.arenas_recycled,
        packets,
        bursts,
        forward_pps: packets as f64 / wall_secs,
        epochs_seen,
        fib_checksum: daemon_sum,
        oracle_checksum: oracle_sum,
        divergences: 0,
    })
}

/// Schema version stamped into every `BENCH_daemon.json`. Bump when a
/// field is renamed, removed, or changes meaning; adding fields is
/// compatible.
pub const SCHEMA_VERSION: u64 = 1;

/// Render the report as the `BENCH_daemon.json` document.
///
/// Stable schema (version [`SCHEMA_VERSION`]):
///
/// ```json
/// {
///   "benchmark": "daemon",
///   "schema_version": 1,
///   "topology": "<name>",
///   "seed": <u64>,
///   "k": <usize>,
///   "schedule_len": <usize>,
///   "max_batch": <usize>,
///   "workers": <usize>,
///   ... fields as in DaemonBenchReport ...
/// }
/// ```
#[allow(clippy::too_many_arguments)]
pub fn render(
    topology: &str,
    k: usize,
    schedule_len: usize,
    max_batch: usize,
    workers: usize,
    seed: u64,
    r: &DaemonBenchReport,
) -> String {
    JsonObject::new()
        .field_str("benchmark", "daemon")
        .field_u64("schema_version", SCHEMA_VERSION)
        .field_str("topology", topology)
        .field_u64("seed", seed)
        .field_u64("k", k as u64)
        .field_u64("schedule_len", schedule_len as u64)
        .field_u64("max_batch", max_batch as u64)
        .field_u64("workers", workers as u64)
        .field_u64("events", r.events as u64)
        .field_f64("events_per_sec", r.events_per_sec)
        .field_f64("event_visible_p50_seconds", r.event_visible_p50)
        .field_f64("event_visible_p99_seconds", r.event_visible_p99)
        .field_f64("event_visible_max_seconds", r.event_visible_max)
        .field_u64("repair_batches", r.repair_batches)
        .field_u64("rebuilds", r.rebuilds)
        .field_u64("publishes", r.publishes)
        .field_u64("final_epoch", r.final_epoch)
        .field_u64("arenas_recycled", r.arenas_recycled)
        .field_u64("packets_forwarded", r.packets)
        .field_u64("bursts", r.bursts)
        .field_f64("forward_pps", r.forward_pps)
        .field_u64("epochs_seen", r.epochs_seen)
        .field_u64("fib_checksum", r.fib_checksum)
        .field_u64("oracle_checksum", r.oracle_checksum)
        .field_u64("divergences", r.divergences)
        .finish()
}

/// Measure on `topology` and write `BENCH_daemon.json` to `path`.
#[allow(clippy::too_many_arguments)]
pub fn write_daemon_report(
    path: impl AsRef<Path>,
    topology: &str,
    k: usize,
    schedule_len: usize,
    max_batch: usize,
    workers: usize,
    burst: usize,
    seed: u64,
) -> Result<(), splice_sim::lab::LabError> {
    let r = measure(topology, k, schedule_len, max_batch, workers, burst, seed)?;
    let mut text = render(topology, k, schedule_len, max_batch, workers, seed, &r);
    text.push('\n');
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, text)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_run_is_divergence_free_and_live() {
        let r = measure("abilene", 3, 60, 8, 2, 64, 7).unwrap();
        assert_eq!(r.events, 60);
        assert_eq!(r.divergences, 0);
        assert_eq!(r.fib_checksum, r.oracle_checksum);
        assert!(r.events_per_sec > 0.0);
        assert!(r.repair_batches > 0);
        assert!(r.rebuilds > 0, "churn schedules include recoveries");
        assert!(r.publishes > 0);
        assert!(r.final_epoch > 0);
        assert!(r.packets > 0, "workers must forward during the churn");
        assert!(r.event_visible_p50 <= r.event_visible_p99);
        assert!(r.event_visible_p99 <= r.event_visible_max);
    }

    #[test]
    fn report_renders_and_writes() {
        let r = measure("abilene", 2, 24, 4, 1, 32, 7).unwrap();
        let json = render("abilene", 2, 24, 4, 1, 7, &r);
        assert!(json.contains(r#""benchmark":"daemon""#));
        assert!(json.contains(r#""schema_version":1"#));
        assert!(json.contains(r#""events_per_sec""#));
        assert!(json.contains(r#""divergences":0"#));

        let dir = std::env::temp_dir().join("splice-bench-daemon-report");
        let path = dir.join("BENCH_daemon.json");
        write_daemon_report(&path, "abilene", 2, 24, 4, 1, 32, 7).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains(r#""benchmark":"daemon""#));
        assert!(back.ends_with('\n'));
        std::fs::remove_dir_all(&dir).ok();
    }
}
