//! §6 extension: transient downtime during protocol convergence, with
//! and without splicing. For every single-link failure we model
//! detection, LSA flooding at real link latencies, and staggered SPF
//! installs; pairs are walked over the mixed old/new tables and
//! pair-downtime (pair·ms) integrated over the episode.
//!
//! ```text
//! cargo run --release -p splice-bench --bin routing_dynamics
//! ```

use splice_bench::{banner, BenchArgs};
use splice_core::slices::SplicingConfig;
use splice_routing::dynamics::DynamicsConfig;
use splice_sim::dynamics_exp::downtime_sweep;
use splice_sim::output::{render_table, write_text};

fn main() {
    let args = BenchArgs::parse(0);
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "§6 — transient downtime during convergence, {} topology",
        topo.name
    ));
    println!("timing: 50 ms detection, 100 ms SPF hold, LSAs at link latency + 1 ms/hop\n");

    let dyncfg = DynamicsConfig::default();
    let mut rows = Vec::new();
    for k in [1usize, 2, 3, 5, 10] {
        let sweep = downtime_sweep(
            &g,
            &topo.latencies(),
            &SplicingConfig::degree_based(k, 0.0, 3.0),
            &dyncfg,
            args.seed,
        );
        let plain: f64 = sweep.iter().map(|&(_, p, _)| p).sum::<f64>() / sweep.len() as f64;
        let spliced: f64 = sweep.iter().map(|&(_, _, s)| s).sum::<f64>() / sweep.len() as f64;
        let worst = sweep.iter().map(|&(_, _, s)| s).fold(0.0f64, f64::max);
        rows.push(vec![
            k.to_string(),
            format!("{:.0}", plain),
            format!("{:.0}", spliced),
            format!("{:.1}x", plain / spliced.max(1e-9)),
            format!("{:.0}", worst),
        ]);
    }
    let table = render_table(
        &[
            "k",
            "downtime plain (pair*ms)",
            "downtime spliced",
            "reduction",
            "worst link (spliced)",
        ],
        &rows,
    );
    println!("{table}");
    println!("splicing deflects onto stale alternate slices during the window, cutting the");
    println!("transient blackhole/micro-loop cost — §6's 'routing can react more slowly'.");

    let path = args.artifact(&format!("routing_dynamics_{}.txt", topo.name));
    write_text(&path, &table).expect("write table");
    println!("wrote {}", path.display());
}
