//! §4.3's stretch numbers: per-slice path-stretch distributions (the
//! paper: "in any particular slice, 99% of all paths in each tree have
//! stretch of less than 2.6") and recovered-path stretch (≈1.3× latency,
//! +50% hops for end-system recovery; ≈1.33× and +55% for network-based).
//!
//! ```text
//! cargo run --release -p splice-bench --bin stretch_stats
//! ```

use splice_bench::{banner, BenchArgs};
use splice_core::slices::SplicingConfig;
use splice_sim::output::{render_table, write_text};
use splice_sim::recovery::{recovery_experiment, RecoveryConfig};
use splice_sim::stretch_exp::{slice_stretch_experiment, worst_slice_p99};

fn main() {
    let args = BenchArgs::parse(60);
    let topo = args.topology();
    let g = topo.graph();
    let latencies = topo.latencies();

    banner(&format!(
        "§4.3 — per-slice stretch, {} topology, degree-based Weight(0,3)",
        topo.name
    ));
    let template = SplicingConfig::degree_based(10, 0.0, 3.0);
    let seeds: Vec<u64> = (0..10).map(|i| args.seed + i).collect();
    let stats = slice_stretch_experiment(&g, &latencies, &template, &seeds);
    let rows: Vec<Vec<String>> = stats
        .iter()
        .enumerate()
        .map(|(i, s)| {
            vec![
                if i == 0 {
                    "0 (base)".to_string()
                } else {
                    i.to_string()
                },
                format!("{:.3}", s.mean),
                format!("{:.3}", s.p50),
                format!("{:.3}", s.p95),
                format!("{:.3}", s.p99),
                format!("{:.3}", s.max),
            ]
        })
        .collect();
    let table = render_table(&["slice", "mean", "p50", "p95", "p99", "max"], &rows);
    println!("{table}");
    println!(
        "worst per-slice p99 stretch: {:.3}  (paper: < 2.6)",
        worst_slice_p99(&stats)
    );

    banner("§4.3 — recovered-path stretch");
    let es = recovery_experiment(
        &g,
        &latencies,
        &RecoveryConfig::figure4(args.trials, args.seed),
    );
    let nb = recovery_experiment(
        &g,
        &latencies,
        &RecoveryConfig::figure5(args.trials, args.seed),
    );
    let mut out = String::new();
    for (name, curves) in [("end-system", &es), ("network-based", &nb)] {
        for st in &curves.stats {
            let line = format!(
                "{name} k={}: avg trials {:.2} | latency stretch {:.3} (paper ~{}) | hop stretch {:.3} (paper ~{})\n",
                st.k,
                st.avg_trials,
                st.avg_latency_stretch,
                if name == "end-system" { "1.30" } else { "1.33" },
                st.avg_hop_stretch,
                if name == "end-system" { "1.50" } else { "1.55" },
            );
            print!("{line}");
            out.push_str(&line);
        }
    }

    out.push_str(&table);
    let path = args.artifact(&format!("stretch_stats_{}.txt", topo.name));
    write_text(&path, &out).expect("write stats");
    println!("wrote {}", path.display());
}
