//! §5 extension: traffic-engineering interaction. Compares link-load
//! balance under single shortest-path routing, splicing's hash-spread
//! default, and explicit equal-split multipath — in steady state and
//! under every single-link failure.
//!
//! ```text
//! cargo run --release -p splice-bench --bin te_load_balance
//! ```

use splice_bench::{banner, BenchArgs};
use splice_core::slices::{Splicing, SplicingConfig};
use splice_graph::EdgeMask;
use splice_sim::output::{render_table, write_text};
use splice_traffic::load::{link_loads, RoutingMode};
use splice_traffic::matrix::TrafficMatrix;
use splice_traffic::shift::{single_link_failure_sweep, worst_case_shift};

fn main() {
    let args = BenchArgs::parse(0);
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "§5 — load balance & failure shifts, {} topology, gravity traffic matrix",
        topo.name
    ));

    let splicing = Splicing::build(&g, &SplicingConfig::degree_based(5, 0.0, 3.0), args.seed);
    let tm = TrafficMatrix::gravity(&g, 1000.0, args.seed);
    let up = EdgeMask::all_up(g.edge_count());

    let modes = [
        ("shortest-path", RoutingMode::ShortestPath),
        ("hash-spread", RoutingMode::HashSpread),
        ("equal-split", RoutingMode::EqualSplit),
    ];
    let mut rows = Vec::new();
    for (name, mode) in modes {
        let report = link_loads(&splicing, &g, &tm, mode, &up);
        let sweep = single_link_failure_sweep(&splicing, &g, &tm, mode);
        let stranded: f64 = sweep.iter().map(|r| r.undelivered).sum::<f64>() / sweep.len() as f64;
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", report.max()),
            format!("{:.1}", report.mean()),
            format!("{:.3}", report.cv()),
            format!("{:.3}", worst_case_shift(&sweep)),
            format!("{:.2}", stranded),
        ]);
    }
    let table = render_table(
        &[
            "mode",
            "peak load",
            "mean load",
            "cv",
            "worst peak shift",
            "avg stranded demand",
        ],
        &rows,
    );
    println!("{table}");
    println!("reading: spreading across slices disperses flows but rides longer paths, so");
    println!("total and peak load can rise on distance-weighted maps — the §5 trade-off the");
    println!("paper flags for study; the failure columns show spreading's robustness payoff.");

    let path = args.artifact(&format!("te_load_balance_{}.txt", topo.name));
    write_text(&path, &table).expect("write table");
    println!("wrote {}", path.display());
}
