//! Extension: reliability under *node* failures (router outages) rather
//! than link failures — pairs involving the failed router are excluded;
//! the question is whether survivors stay connected.
//!
//! ```text
//! cargo run --release -p splice-bench --bin node_failures
//! ```

use splice_bench::{banner, BenchArgs};
use splice_core::slices::SplicingConfig;
use splice_sim::node_failures::{node_failure_experiment, NodeFailureConfig};
use splice_sim::output::{render_table, series_to_csv, write_text};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(200);
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "Extension — node-failure reliability, {} topology, {} trials",
        topo.name, args.trials
    ));

    let cfg = NodeFailureConfig {
        ks: vec![1, 2, 3, 5, 10],
        ps: (1..=10).map(|i| i as f64 * 0.01).collect(),
        trials: args.trials,
        splicing: SplicingConfig::degree_based(10, 0.0, 3.0),
        semantics: args.splice_semantics(),
        seed: args.seed,
    };
    let out = node_failure_experiment(&g, &cfg);

    let mut series = out.curves.clone();
    series.push(out.best_possible.clone());
    let headers: Vec<String> = std::iter::once("p".to_string())
        .chain(series.iter().map(|s| s.label.clone()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = series[0]
        .points
        .iter()
        .enumerate()
        .map(|(i, &(p, _))| {
            std::iter::once(format!("{p:.2}"))
                .chain(series.iter().map(|s| format!("{:.4}", s.points[i].1)))
                .collect()
        })
        .collect();
    println!("{}", render_table(&header_refs, &rows));

    let csv = series_to_csv(&series)?;
    let path = args.artifact(&format!("node_failures_{}.csv", topo.name));
    write_text(&path, &csv)?;
    println!("wrote {}", path.display());
    Ok(())
}
