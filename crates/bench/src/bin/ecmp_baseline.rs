//! Baseline: ECMP — the multipath deployed today. ECMP's diversity comes
//! from accidental weight ties in one weight setting; splicing's comes
//! from k deliberate trees. How far do ties get you on a real topology?
//!
//! ```text
//! cargo run --release -p splice-bench --bin ecmp_baseline
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_bench::{banner, BenchArgs};
use splice_core::slices::{Splicing, SplicingConfig};
use splice_routing::ecmp::{ecmp_disconnected_pairs, ecmp_sets};
use splice_sim::failure::FailureModel;
use splice_sim::output::{render_table, write_text};

fn main() {
    let args = BenchArgs::parse(300);
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "Baseline — ECMP vs splicing, {} topology, {} trials",
        topo.name, args.trials
    ));

    let n = g.node_count();
    let pairs = (n * (n - 1)) as f64;
    let w = g.base_weights();

    // How much tie-fanout does this topology even have?
    let fanout: f64 = g
        .nodes()
        .map(|t| ecmp_sets(&g, t, &w).mean_fanout())
        .sum::<f64>()
        / n as f64;
    println!("mean ECMP fan-out on base weights: {fanout:.3} next hops per (node, dst)\n");

    let splicing = Splicing::build(&g, &SplicingConfig::degree_based(10, 0.0, 3.0), args.seed);
    let ps = [0.02f64, 0.05, 0.08];
    let mut rows = Vec::new();
    for &p in &ps {
        let (mut single, mut ecmp, mut k2, mut k5) = (0.0, 0.0, 0.0, 0.0);
        for trial in 0..args.trials as u64 {
            let mut rng = StdRng::seed_from_u64(args.seed + trial);
            let mask = FailureModel::IidLinks { p }.sample(&g, &mut rng);
            single += splicing.disconnected_pairs(1, &mask) as f64 / pairs;
            ecmp += ecmp_disconnected_pairs(&g, &w, &mask) as f64 / pairs;
            k2 += splicing.disconnected_pairs(2, &mask) as f64 / pairs;
            k5 += splicing.disconnected_pairs(5, &mask) as f64 / pairs;
        }
        let t = args.trials as f64;
        rows.push(vec![
            format!("{p}"),
            format!("{:.4}", single / t),
            format!("{:.4}", ecmp / t),
            format!("{:.4}", k2 / t),
            format!("{:.4}", k5 / t),
        ]);
    }
    let table = render_table(
        &[
            "p",
            "single path",
            "ECMP (ties)",
            "splicing k=2",
            "splicing k=5",
        ],
        &rows,
    );
    println!("{table}");
    println!("(directed forwarding semantics throughout.) With distance-derived weights the");
    println!("topology has few exact ties, so ECMP barely improves on single-path — one");
    println!("deliberately perturbed slice beats all the accidental ties.");

    let path = args.artifact(&format!("ecmp_baseline_{}.txt", topo.name));
    write_text(&path, &table).expect("write table");
    println!("wrote {}", path.display());
}
