//! Theorem A.1's scaling claim: the slice count needed for near-optimal
//! connectivity grows like log n. We sweep three graph families of
//! growing size and report k* (the slices capturing 90% of the achievable
//! disconnection improvement) against log₂ n.
//!
//! ```text
//! cargo run --release -p splice-bench --bin scaling_lognslices
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_bench::{banner, BenchArgs};
use splice_sim::output::{render_table, write_text};
use splice_sim::scaling::{slices_needed, ScalingConfig};
use splice_topology::generators::{barabasi_albert, connected_erdos_renyi, waxman};

fn main() {
    let args = BenchArgs::parse(60);
    banner(&format!(
        "Theorem A.1 — slices needed vs n (90% of achievable improvement, p=0.05, {} trials)",
        args.trials
    ));

    let sizes = [16usize, 24, 32, 48, 64, 96];
    let mut rows = Vec::new();
    for &n in &sizes {
        let cfg = ScalingConfig {
            trials: args.trials,
            seed: args.seed,
            ..Default::default()
        };
        let er = connected_erdos_renyi(n, (4.0 / n as f64).min(0.9).max(6.0 / n as f64), args.seed);
        let ba = barabasi_albert(n, 2, &mut StdRng::seed_from_u64(args.seed + 1));
        let wx = waxman(n, 0.9, 0.35, &mut StdRng::seed_from_u64(args.seed + 2));
        let k_er = slices_needed(&er, &cfg);
        let k_ba = slices_needed(&ba, &cfg);
        let k_wx = slices_needed(&wx, &cfg);
        rows.push(vec![
            n.to_string(),
            format!("{:.2}", (n as f64).log2()),
            k_er.to_string(),
            k_ba.to_string(),
            k_wx.to_string(),
        ]);
    }
    let table = render_table(
        &["n", "log2(n)", "k* (ER)", "k* (BA m=2)", "k* (Waxman)"],
        &rows,
    );
    println!("{table}");
    println!("Theorem A.1 is an upper bound: c0·log n slices always suffice. Measured k*");
    println!("stays at or below a small constant multiple of log2(n) across families and");
    println!("sizes — on these constant-average-degree families it saturates around 3-5.");

    let path = args.artifact("scaling_lognslices.txt");
    write_text(&path, &table).expect("write table");
    println!("wrote {}", path.display());
}
