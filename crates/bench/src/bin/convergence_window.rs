//! §6 extension: the convergence window. When a link fails, how long is
//! the network blind (flood rounds, messages), and how many of the
//! affected pairs does splicing keep connected on *stale* state alone —
//! the evidence behind "splicing may permit dynamic routing to react
//! much more slowly to failures"?
//!
//! ```text
//! cargo run --release -p splice-bench --bin convergence_window
//! ```

use splice_bench::{banner, BenchArgs};
use splice_core::slices::SplicingConfig;
use splice_sim::convergence::{convergence_window_sweep, summarize};
use splice_sim::output::{render_table, write_text};

fn main() {
    let args = BenchArgs::parse(0);
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "§6 — convergence windows under single-link failures, {} topology",
        topo.name
    ));

    let mut rows = Vec::new();
    let mut out = String::new();
    for k in [1usize, 2, 3, 5, 10] {
        let cfg = SplicingConfig::degree_based(k, 0.0, 3.0);
        let results = convergence_window_sweep(&g, &cfg, args.seed);
        let s = summarize(&results);
        rows.push(vec![
            k.to_string(),
            s.worst_window_rounds.to_string(),
            s.total_affected.to_string(),
            s.total_rescued.to_string(),
            format!("{:.1}%", 100.0 * s.mean_rescue_rate),
        ]);
    }
    let table = render_table(
        &[
            "k",
            "worst window (flood rounds)",
            "affected pairs",
            "rescued by splicing",
            "mean rescue rate",
        ],
        &rows,
    );
    println!("{table}");
    println!(
        "pairs rescued ride out the window on stale FIBs — routing can afford to react slowly"
    );
    out.push_str(&table);

    let path = args.artifact(&format!("convergence_window_{}.txt", topo.name));
    write_text(&path, &out).expect("write table");
    println!("wrote {}", path.display());
}
