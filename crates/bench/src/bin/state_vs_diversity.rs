//! §4.2's scalability claim: control-plane cost (messages, LSDB, FIBs)
//! grows **linearly** in k, while path diversity grows much faster.
//! Costs are measured on the link-state substrate by actually flooding
//! and converging k instances.
//!
//! ```text
//! cargo run --release -p splice-bench --bin state_vs_diversity
//! ```

use splice_bench::{banner, BenchArgs};
use splice_core::slices::SplicingConfig;
use splice_sim::diversity::state_vs_diversity;
use splice_sim::output::{render_table, write_text};

fn main() {
    let args = BenchArgs::parse(50);
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "§4.2 — state/messages vs path diversity, {} topology",
        topo.name
    ));

    let ks = [1usize, 2, 3, 4, 5, 8, 10];
    let template = SplicingConfig::degree_based(10, 0.0, 3.0);
    let pts = state_vs_diversity(&g, &template, &ks, args.trials, 60, args.seed);

    let base_msgs = pts[0].messages as f64;
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.k.to_string(),
                p.messages.to_string(),
                format!("{:.1}x", p.messages as f64 / base_msgs),
                p.fib_entries.to_string(),
                p.lsdb_entries.to_string(),
                format!("{:.2}", p.distinct_paths),
                format!("{:.2}", p.succ_connectivity),
            ]
        })
        .collect();
    let table = render_table(
        &[
            "k",
            "LSA msgs",
            "msg growth",
            "FIB entries",
            "LSDB entries",
            "distinct paths/pair",
            "succ connectivity",
        ],
        &rows,
    );
    println!("{table}");
    println!(
        "claim: cost columns scale as k (linear); diversity columns grow super-linearly early"
    );

    let path = args.artifact(&format!("state_vs_diversity_{}.txt", topo.name));
    write_text(&path, &table).expect("write table");
    println!("wrote {}", path.display());
}
