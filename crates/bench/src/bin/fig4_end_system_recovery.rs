//! Figure 4: end-system recovery on Sprint. For every broken default
//! path, the end host retries with coin-toss-randomized forwarding bits
//! (20-hop header, switch probability 0.5), up to 5 trials.
//!
//! ```text
//! cargo run --release -p splice-bench --bin fig4_end_system_recovery
//! ```

use splice_bench::{banner, BenchArgs, RunManifest};
use splice_sim::output::{render_table, series_to_csv, write_text};
use splice_sim::recovery::{recovery_experiment_instrumented, RecoveryConfig};
use splice_sim::telemetry::ExperimentTelemetry;
use splice_telemetry::Registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(100);
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "Figure 4 — end-system recovery, {} topology, {} trials",
        topo.name, args.trials
    ));

    let mut cfg = RecoveryConfig::figure4(args.trials, args.seed);
    cfg.semantics = args.splice_semantics();
    let registry = Registry::new();
    let telemetry =
        ExperimentTelemetry::register(&registry).with_heartbeat((args.trials / 10).max(1) as u64);
    let mut manifest = RunManifest::start("fig4_end_system_recovery", &args);
    let out = recovery_experiment_instrumented(&g, &topo.latencies(), &cfg, Some(&telemetry));
    manifest.phase_done("experiment");

    let mut series = vec![out.no_splicing.clone()];
    for (rec, rel) in out.recovery.iter().zip(&out.reliability) {
        series.push(rec.clone());
        series.push(rel.clone());
    }

    let headers: Vec<String> = std::iter::once("p".to_string())
        .chain(series.iter().map(|s| s.label.clone()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = series[0]
        .points
        .iter()
        .enumerate()
        .map(|(i, &(p, _))| {
            std::iter::once(format!("{p:.3}"))
                .chain(series.iter().map(|s| format!("{:.4}", s.points[i].1)))
                .collect()
        })
        .collect();
    println!("{}", render_table(&header_refs, &rows));

    banner("§4.3 aggregates (end-system)");
    for st in &out.stats {
        println!(
            "k={}: attempts {} | recovered {} ({:.1}%) | avg trials {:.2} | latency stretch {:.2} | hop stretch {:.2} | loop fraction {:.4}",
            st.k,
            st.attempts,
            st.recovered,
            100.0 * st.recovered as f64 / st.attempts.max(1) as f64,
            st.avg_trials,
            st.avg_latency_stretch,
            st.avg_hop_stretch,
            st.loop_fraction,
        );
    }

    let csv = series_to_csv(&series)?;
    let path = args.artifact(&format!(
        "fig4_end_system_recovery_{}_{}.csv",
        topo.name, args.semantics
    ));
    write_text(&path, &csv)?;
    println!("wrote {}", path.display());

    manifest.phase_done("artifacts");
    let manifest_path = args.artifact(&format!(
        "fig4_end_system_recovery_{}_{}_manifest.json",
        topo.name, args.semantics
    ));
    manifest.write(&manifest_path, &registry)?;
    println!("wrote {}", manifest_path.display());
    Ok(())
}
