//! Table 1: the paper's summary of results, assembled from fresh runs of
//! the reliability, recovery, and loop experiments.
//!
//! ```text
//! cargo run --release -p splice-bench --bin table1
//! ```

use splice_bench::{banner, BenchArgs};
use splice_sim::loops::{loop_experiment, LoopConfig};
use splice_sim::output::write_text;
use splice_sim::recovery::{recovery_experiment, RecoveryConfig};
use splice_sim::reliability::{reliability_experiment, ReliabilityConfig};
use splice_sim::summary::Table1;

fn main() {
    let args = BenchArgs::parse(100);
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "Table 1 — summary of results, {} topology, {} trials per experiment",
        topo.name, args.trials
    ));

    let reliability =
        reliability_experiment(&g, &ReliabilityConfig::figure3(args.trials, args.seed));
    let recovery = recovery_experiment(
        &g,
        &topo.latencies(),
        &RecoveryConfig::figure4(args.trials, args.seed + 1),
    );
    let loops = loop_experiment(
        &g,
        &LoopConfig::paper(vec![2, 5, 10], args.trials, args.seed + 2),
    );

    let t1 = Table1::assemble(&reliability, &recovery, &loops);
    let rendered = t1.render();
    println!("{rendered}");

    let path = args.artifact(&format!("table1_{}.txt", topo.name));
    write_text(&path, &rendered).expect("write table");
    println!("wrote {}", path.display());
}
