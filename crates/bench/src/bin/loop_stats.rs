//! §4.4: forwarding-loop frequencies under random recovery headers —
//! roughly 1-in-100 trials see a two-hop loop at k = 2, up to 1-in-10 at
//! larger k; longer loops are extremely rare.
//!
//! ```text
//! cargo run --release -p splice-bench --bin loop_stats
//! ```

use splice_bench::{banner, BenchArgs};
use splice_sim::loops::{loop_experiment, LoopConfig};
use splice_sim::output::{render_table, write_text};

fn main() {
    let args = BenchArgs::parse(150);
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "§4.4 — forwarding-loop frequency, {} topology, Bernoulli(0.5) headers, {} trials",
        topo.name, args.trials
    ));

    let cfg = LoopConfig::paper(vec![2, 3, 5, 10], args.trials, args.seed);
    let out = loop_experiment(&g, &cfg);

    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|st| {
            vec![
                st.k.to_string(),
                st.attempts.to_string(),
                format!("{:.4}", st.two_hop_rate()),
                format!("{:.4}", st.longer_rate()),
                st.persistent.to_string(),
            ]
        })
        .collect();
    let table = render_table(
        &[
            "k",
            "recovery trials",
            "2-hop loop rate",
            ">2-hop loop rate",
            "persistent",
        ],
        &rows,
    );
    println!("{table}");
    println!(
        "paper: 2-hop ≈ 0.01/trial at k=2, ≈ 0.1/trial at larger k; longer loops extremely rare"
    );

    let path = args.artifact(&format!("loop_stats_{}.txt", topo.name));
    write_text(&path, &table).expect("write stats");
    println!("wrote {}", path.display());
}
