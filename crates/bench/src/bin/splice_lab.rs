//! `splice-lab`: the one binary behind every experiment.
//!
//! ```text
//! splice-lab list
//! splice-lab run fig3_reliability --topology abilene --trials 250
//! splice-lab run-all --out results
//! splice-lab resume --out results
//! ```
//!
//! All logic lives in [`splice_bench::lab_main`] so the dispatch is unit
//! tested; this shim only owns the process boundary.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(splice_bench::lab_main(&argv));
}
