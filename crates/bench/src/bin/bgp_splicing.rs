//! §5 extension: interdomain path splicing. BGP's decision process keeps
//! the k best valley-free routes per destination; the forwarding bits
//! select among them. We measure AS-level reliability under inter-AS link
//! failures, before any reconvergence.
//!
//! ```text
//! cargo run --release -p splice-bench --bin bgp_splicing
//! ```

use splice_bench::{banner, BenchArgs};
use splice_bgp::asgraph::{AsGraph, AsId};
use splice_bgp::splice_bgp::bgp_reliability;
use splice_sim::output::{render_table, write_text};

fn main() {
    let args = BenchArgs::parse(200);
    banner(&format!(
        "§5 — spliced BGP reliability, internet-like AS graph, {} trials",
        args.trials
    ));

    let g = AsGraph::internet_like(4, 12, 40, args.seed);
    println!(
        "AS graph: {} ASes, {} inter-AS links (4 tier-1, 12 mid, 40 stubs)",
        g.as_count(),
        g.link_count()
    );

    let ks = [1usize, 2, 3];
    let ps: Vec<f64> = (1..=5).map(|i| i as f64 * 0.02).collect();
    // Average over several destinations for stability.
    let dests = [AsId(0), AsId(6), AsId(30), AsId(50)];
    let mut rows = Vec::new();
    for &p in &ps {
        let mut cells = vec![format!("{p:.2}")];
        for &k in &ks {
            let mut acc = 0.0;
            for &d in &dests {
                let pts = bgp_reliability(&g, d, &[k], &[p], args.trials / dests.len(), args.seed);
                acc += pts[0].disconnected;
            }
            cells.push(format!("{:.4}", acc / dests.len() as f64));
        }
        rows.push(cells);
    }
    let table = render_table(&["p", "k=1", "k=2", "k=3"], &rows);
    println!("{table}");
    println!("claim: installing k best BGP routes sharply cuts AS-level disconnection");

    let path = args.artifact("bgp_splicing.txt");
    write_text(&path, &table).expect("write table");
    println!("wrote {}", path.display());
}
