//! §5 extension: coverage-aware slice construction vs. independent
//! random perturbation — does steering new slices onto uncovered edges
//! buy "more reliability with fewer slices", as the paper conjectures?
//!
//! ```text
//! cargo run --release -p splice-bench --bin coverage_ablation
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_bench::{banner, BenchArgs};
use splice_core::coverage::{build_coverage_aware, CoverageConfig};
use splice_core::slices::{Splicing, SplicingConfig};
use splice_sim::failure::FailureModel;
use splice_sim::output::{render_table, write_text};

fn main() {
    let args = BenchArgs::parse(200);
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "Ablation — coverage-aware vs independent slices, {} topology, {} trials",
        topo.name, args.trials
    ));

    let n = g.node_count();
    let pairs = (n * (n - 1)) as f64;
    let p = 0.05;
    let kmax = 10;

    // Mean disconnection (union semantics) per k for each construction.
    let mut disc_plain = vec![0.0; kmax];
    let mut disc_aware = vec![0.0; kmax];
    let mut cov_plain = vec![0.0; kmax];
    let mut cov_aware = vec![0.0; kmax];
    for trial in 0..args.trials as u64 {
        let seed = args.seed + trial;
        let plain = Splicing::build(&g, &SplicingConfig::degree_based(kmax, 0.0, 3.0), seed);
        let aware = build_coverage_aware(
            &g,
            &CoverageConfig {
                base: SplicingConfig::degree_based(kmax, 0.0, 3.0),
                penalty: 1.0,
            },
            seed,
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        let mask = FailureModel::IidLinks { p }.sample(&g, &mut rng);
        for k in 1..=kmax {
            disc_plain[k - 1] += plain.union_disconnected_pairs(k, &mask) as f64 / pairs;
            disc_aware[k - 1] += aware.union_disconnected_pairs(k, &mask) as f64 / pairs;
            // Mean distinct next hops per (node, destination) — the
            // diversity the penalty is supposed to manufacture.
            let diversity = |sp: &Splicing| {
                let total: usize = g.nodes().map(|t| sp.diversity_toward(t, k)).sum();
                total as f64 / (n * (n - 1)) as f64
            };
            cov_plain[k - 1] += diversity(&plain);
            cov_aware[k - 1] += diversity(&aware);
        }
    }
    let t = args.trials as f64;
    let rows: Vec<Vec<String>> = (1..=kmax)
        .map(|k| {
            vec![
                k.to_string(),
                format!("{:.4}", disc_plain[k - 1] / t),
                format!("{:.4}", disc_aware[k - 1] / t),
                format!("{:.3}", cov_plain[k - 1] / t),
                format!("{:.3}", cov_aware[k - 1] / t),
            ]
        })
        .collect();
    let table = render_table(
        &[
            "k",
            "disc (independent)",
            "disc (coverage-aware)",
            "next-hop diversity (ind)",
            "next-hop diversity (aware)",
        ],
        &rows,
    );
    println!("{table}");
    println!("disconnection at p = {p}, union semantics; the paper's §5 conjecture is that");
    println!("coverage awareness achieves a given reliability with fewer slices.");

    let path = args.artifact(&format!("coverage_ablation_{}.txt", topo.name));
    write_text(&path, &table).expect("write table");
    println!("wrote {}", path.display());
}
