//! §5 extension: splicing's automatic load balancing vs conventional
//! link-weight optimization — the comparison the paper says it was
//! running ("we are currently comparing the traffic balance that path
//! splicing achieves versus that which conventional link-weight
//! optimization achieves, both in the case of failures and in steady
//! state").
//!
//! ```text
//! cargo run --release -p splice-bench --bin te_vs_tuning
//! ```

use splice_bench::{banner, BenchArgs};
use splice_core::slices::{Splicing, SplicingConfig};
use splice_graph::EdgeMask;
use splice_sim::output::{render_table, write_text};
use splice_traffic::load::{link_loads_with_recovery, RoutingMode};
use splice_traffic::matrix::TrafficMatrix;
use splice_traffic::optimize::{max_utilization, optimize_weights};

fn main() {
    let args = BenchArgs::parse(800); // trials = optimizer move budget here
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "§5 — splicing vs tuned OSPF weights, {} topology, {} optimizer moves",
        topo.name, args.trials
    ));

    let capacity = 100.0;
    let tm = TrafficMatrix::gravity(&g, 1500.0, args.seed);

    // Tuned single-path baseline.
    let opt = optimize_weights(&g, &tm, capacity, args.trials, args.seed);
    println!(
        "weight search: cost {:.1} -> {:.1} over {} accepted moves\n",
        opt.initial_cost, opt.final_cost, opt.moves
    );
    let tuned = {
        use splice_core::slices::Slice;
        let tables = splice_routing::spf::spf_from_weights(&g, &opt.weights);
        Splicing::from_slices(vec![Slice {
            id: 0,
            weights: opt.weights.clone(),
            tables,
        }])
    };
    let base = Splicing::build(&g, &SplicingConfig::degree_based(1, 0.0, 3.0), args.seed);
    let spliced = Splicing::build(&g, &SplicingConfig::degree_based(5, 0.0, 3.0), args.seed);

    // Steady state.
    let steady = |sp: &Splicing, mode| max_utilization(sp, &g, &tm, mode, capacity);
    // Under failures: worst max-utilization over all single-link failures
    // with recovery re-routing.
    let worst_failure = |sp: &Splicing, mode| -> f64 {
        g.edge_ids()
            .map(|e| {
                let mask = EdgeMask::from_failed(g.edge_count(), &[e]);
                link_loads_with_recovery(sp, &g, &tm, mode, &mask).max() / capacity
            })
            .fold(0.0f64, f64::max)
    };

    let rows = [
        (
            "untuned OSPF (single path)",
            steady(&base, RoutingMode::ShortestPath),
            worst_failure(&base, RoutingMode::ShortestPath),
        ),
        (
            "tuned OSPF (Fortz-Thorup-style)",
            steady(&tuned, RoutingMode::ShortestPath),
            worst_failure(&tuned, RoutingMode::ShortestPath),
        ),
        (
            "splicing k=5, hash-spread",
            steady(&spliced, RoutingMode::HashSpread),
            worst_failure(&spliced, RoutingMode::HashSpread),
        ),
        (
            "splicing k=5, equal-split",
            steady(&spliced, RoutingMode::EqualSplit),
            worst_failure(&spliced, RoutingMode::EqualSplit),
        ),
    ];
    let table = render_table(
        &["routing", "max util (steady)", "max util (worst failure)"],
        &rows
            .iter()
            .map(|(n, s, f)| vec![n.to_string(), format!("{:.3}", s), format!("{:.3}", f)])
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    println!("splicing needs no per-matrix tuning; the question is how close its untuned");
    println!("spreading gets to the tuned baseline, and how each behaves under failures.");

    let path = args.artifact(&format!("te_vs_tuning_{}.txt", topo.name));
    write_text(&path, &table).expect("write table");
    println!("wrote {}", path.display());
}
