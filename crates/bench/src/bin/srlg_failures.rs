//! Extension: shared-risk link groups. Real outages are correlated — a
//! conduit cut at a PoP takes every fiber leaving it. We model one SRLG
//! per PoP (its incident links) and compare splicing's reliability under
//! correlated failures against independent failures with the *same
//! expected number of failed links*.
//!
//! ```text
//! cargo run --release -p splice-bench --bin srlg_failures
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use splice_bench::{banner, BenchArgs};
use splice_core::slices::{Splicing, SplicingConfig};
use splice_sim::failure::FailureModel;
use splice_sim::output::{render_table, write_text};

fn main() {
    let args = BenchArgs::parse(300);
    let topo = args.topology();
    let g = topo.graph();
    banner(&format!(
        "Extension — correlated (SRLG) vs independent failures, {} topology, {} trials",
        topo.name, args.trials
    ));

    // One SRLG per PoP: all its incident links share the conduit.
    let groups: Vec<Vec<splice_graph::EdgeId>> = g
        .nodes()
        .map(|n| g.neighbors(n).iter().map(|&(_, e)| e).collect())
        .collect();
    // A group failure downs deg(n) links; match expected failed links:
    // E[iid] = p_link * m; E[srlg] ≈ p_group * sum(deg) = p_group * 2m
    // (links counted by both endpoint groups overlap, so this slightly
    // overshoots; the comparison is qualitative).
    let n = g.node_count();
    let pairs = (n * (n - 1)) as f64;
    let splicing = Splicing::build(&g, &SplicingConfig::degree_based(10, 0.0, 3.0), args.seed);

    let mut rows = Vec::new();
    for &p_link in &[0.02f64, 0.05, 0.08] {
        let p_group = p_link / 2.0;
        let mut acc = [[0.0f64; 3]; 2]; // [model][k index] for k in {1,5,10}
        for trial in 0..args.trials as u64 {
            let mut rng = StdRng::seed_from_u64(args.seed + trial);
            let iid = FailureModel::IidLinks { p: p_link }.sample(&g, &mut rng);
            let srlg = FailureModel::Srlg {
                groups: groups.clone(),
                p: p_group,
            }
            .sample(&g, &mut rng);
            for (mi, mask) in [&iid, &srlg].into_iter().enumerate() {
                for (ki, &k) in [1usize, 5, 10].iter().enumerate() {
                    acc[mi][ki] += splicing.union_disconnected_pairs(k, mask) as f64 / pairs;
                }
            }
        }
        let t = args.trials as f64;
        for (mi, name) in ["independent", "SRLG (PoP conduits)"].iter().enumerate() {
            rows.push(vec![
                format!("{p_link}"),
                name.to_string(),
                format!("{:.4}", acc[mi][0] / t),
                format!("{:.4}", acc[mi][1] / t),
                format!("{:.4}", acc[mi][2] / t),
            ]);
        }
    }
    let table = render_table(
        &["p (link-equivalent)", "failure model", "k=1", "k=5", "k=10"],
        &rows,
    );
    println!("{table}");
    println!("correlated conduit cuts behave like node failures: splicing still closes most");
    println!("of the k=1 shortfall, but the irreducible (cut-induced) floor sits higher.");

    let path = args.artifact(&format!("srlg_failures_{}.txt", topo.name));
    write_text(&path, &table).expect("write table");
    println!("wrote {}", path.display());
}
