//! Standalone writer for the machine-readable bench summaries.
//!
//! `BENCH_fib.json` and `BENCH_spf_repair.json` used to exist only as a
//! side effect of running the criterion suites; this binary produces both
//! on demand — plus the per-strategy `BENCH_strategy.json` summary, the
//! batched-repair `BENCH_churn.json` sweep, the live-daemon
//! `BENCH_daemon.json` run, and the batched-forwarding
//! `BENCH_forward.json` engine comparison — by default into the
//! repository root, where CI and the §4.2 state-size discussion pick
//! them up — without pulling in criterion at all. The documents carry a
//! `schema_version` field (see
//! [`splice_bench::fib_report::SCHEMA_VERSION`],
//! [`splice_bench::repair_report::SCHEMA_VERSION`],
//! [`splice_bench::strategy_report::SCHEMA_VERSION`],
//! [`splice_bench::churn_report::SCHEMA_VERSION`] and
//! [`splice_bench::forward_report::SCHEMA_VERSION`]); consumers should
//! check it before parsing. Before writing, the repair and churn
//! summaries are sanity-checked: every quantile must sit at or below its
//! tracked max, so a committed BENCH file can never report p99 > max.
//! The forwarding summary carries its own built-in gates: the three
//! engines' merged outcome checksums must match, and its differential
//! oracle must report zero divergences, or the measurement aborts.
//!
//! ```text
//! cargo run -p splice-bench --bin bench_report -- [--topology NAME] [--seed N] [--out DIR]
//! ```

use std::path::PathBuf;

/// k values matched to the criterion suites so the JSON summaries and the
/// rigorous timings describe the same sweep.
const FIB_KS: &[usize] = &[1, 2, 5, 10];
const REPAIR_KS: &[usize] = &[1, 5, 10];

/// Slice count and Monte-Carlo depth for the per-strategy summary —
/// k = 5 is the paper's headline operating point.
const STRATEGY_K: usize = 5;
const STRATEGY_TRIALS: usize = 100;

/// Churn sweep: the paper's k = 5 operating point, a schedule long
/// enough for steady-state throughput, and the batch sizes CI compares.
const CHURN_K: usize = 5;
const CHURN_SCHEDULE_LEN: usize = 400;
const CHURN_BATCH_SIZES: &[usize] = &[1, 2, 4, 8, 16];

/// Live-daemon run: the same operating point pushed through the
/// event-loop thread with subscribed forwarding workers.
const DAEMON_SCHEDULE_LEN: usize = 400;
const DAEMON_MAX_BATCH: usize = 8;
const DAEMON_WORKERS: usize = 2;
const DAEMON_BURST: usize = 128;

fn main() {
    let mut topology = String::from("sprint");
    let mut seed = 42u64;
    let mut out = PathBuf::from(".");

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need_value = |i: usize| {
            argv.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value for {}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--topology" => {
                topology = need_value(i).clone();
                i += 2;
            }
            "--seed" => {
                seed = need_value(i).parse().unwrap_or_else(|e| {
                    eprintln!("bad --seed: {e}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--out" => {
                out = PathBuf::from(need_value(i));
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("usage: bench_report [--topology NAME] [--seed N] [--out DIR]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let fib_path = out.join("BENCH_fib.json");
    if let Err(e) = splice_bench::fib_report::write_fib_report(&fib_path, &topology, FIB_KS, seed) {
        eprintln!("writing {}: {e}", fib_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", fib_path.display());

    let repair_path = out.join("BENCH_spf_repair.json");
    let repair_entries = splice_bench::repair_report::measure(&topology, REPAIR_KS, seed)
        .unwrap_or_else(|e| {
            eprintln!("measuring spf repair: {e}");
            std::process::exit(1);
        });
    for e in &repair_entries {
        // A committed summary must never claim a tail above its own max.
        assert!(
            e.repair_seconds_p50 <= e.repair_seconds_p99
                && e.repair_seconds_p99 <= e.repair_seconds_max,
            "repair quantiles out of order at k={}: p50={} p99={} max={}",
            e.k,
            e.repair_seconds_p50,
            e.repair_seconds_p99,
            e.repair_seconds_max
        );
    }
    let mut repair_json = splice_bench::repair_report::render(&topology, seed, &repair_entries);
    repair_json.push('\n');
    if let Err(e) = std::fs::write(&repair_path, repair_json) {
        eprintln!("writing {}: {e}", repair_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", repair_path.display());

    let churn_path = out.join("BENCH_churn.json");
    let churn_entries = splice_bench::churn_report::measure(
        &topology,
        CHURN_K,
        CHURN_SCHEDULE_LEN,
        CHURN_BATCH_SIZES,
        seed,
    )
    .unwrap_or_else(|e| {
        eprintln!("measuring churn: {e}");
        std::process::exit(1);
    });
    for e in &churn_entries {
        assert!(
            e.repair_seconds_p50 <= e.repair_seconds_p99
                && e.repair_seconds_p99 <= e.repair_seconds_max,
            "churn quantiles out of order at batch={}: p50={} p99={} max={}",
            e.batch_size,
            e.repair_seconds_p50,
            e.repair_seconds_p99,
            e.repair_seconds_max
        );
    }
    let mut churn_json = splice_bench::churn_report::render(
        &topology,
        CHURN_K,
        CHURN_SCHEDULE_LEN,
        seed,
        &churn_entries,
    );
    churn_json.push('\n');
    if let Err(e) = std::fs::write(&churn_path, churn_json) {
        eprintln!("writing {}: {e}", churn_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", churn_path.display());

    let daemon_path = out.join("BENCH_daemon.json");
    if let Err(e) = splice_bench::daemon_report::write_daemon_report(
        &daemon_path,
        &topology,
        CHURN_K,
        DAEMON_SCHEDULE_LEN,
        DAEMON_MAX_BATCH,
        DAEMON_WORKERS,
        DAEMON_BURST,
        seed,
    ) {
        eprintln!("writing {}: {e}", daemon_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", daemon_path.display());

    let forward_path = out.join("BENCH_forward.json");
    let forward_cfg =
        splice_bench::forward_report::ForwardBenchConfig::default_for(&topology, seed);
    if let Err(e) = splice_bench::forward_report::write_forward_report(&forward_path, &forward_cfg)
    {
        eprintln!("writing {}: {e}", forward_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", forward_path.display());

    let strategy_path = out.join("BENCH_strategy.json");
    if let Err(e) = splice_bench::strategy_report::write_strategy_report(
        &strategy_path,
        &topology,
        STRATEGY_K,
        STRATEGY_TRIALS,
        seed,
    ) {
        eprintln!("writing {}: {e}", strategy_path.display());
        std::process::exit(1);
    }
    println!("wrote {}", strategy_path.display());
}
